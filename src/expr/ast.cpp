#include "expr/ast.hpp"

#include <cassert>
#include <stdexcept>

namespace sa::expr {

std::vector<std::string> Expr::variables() const {
  std::set<std::string> names;
  collect_variables(names);
  return {names.begin(), names.end()};
}

// --- factories --------------------------------------------------------------

ExprPtr constant(bool value) {
  static const ExprPtr kTrue = std::make_shared<ConstantExpr>(true);
  static const ExprPtr kFalse = std::make_shared<ConstantExpr>(false);
  return value ? kTrue : kFalse;
}

ExprPtr var(std::string name) {
  if (name.empty()) throw std::invalid_argument("variable name must be non-empty");
  return std::make_shared<VarExpr>(std::move(name));
}

ExprPtr negate(ExprPtr operand) {
  assert(operand);
  return std::make_shared<NotExpr>(std::move(operand));
}

namespace {

std::vector<ExprPtr> checked(std::vector<ExprPtr> operands, const char* what) {
  if (operands.empty()) throw std::invalid_argument(std::string(what) + " needs >= 1 operand");
  for (const auto& op : operands) {
    if (!op) throw std::invalid_argument(std::string(what) + " operand is null");
  }
  return operands;
}

}  // namespace

ExprPtr conjunction(std::vector<ExprPtr> operands) {
  operands = checked(std::move(operands), "conjunction");
  if (operands.size() == 1) return operands.front();
  return std::make_shared<AndExpr>(std::move(operands));
}

ExprPtr disjunction(std::vector<ExprPtr> operands) {
  operands = checked(std::move(operands), "disjunction");
  if (operands.size() == 1) return operands.front();
  return std::make_shared<OrExpr>(std::move(operands));
}

ExprPtr exclusive_or(std::vector<ExprPtr> operands) {
  operands = checked(std::move(operands), "exclusive_or");
  if (operands.size() == 1) return operands.front();
  return std::make_shared<XorExpr>(std::move(operands));
}

ExprPtr implies(ExprPtr antecedent, ExprPtr consequent) {
  assert(antecedent && consequent);
  return std::make_shared<ImpliesExpr>(std::move(antecedent), std::move(consequent));
}

ExprPtr exactly_one(std::vector<ExprPtr> operands) {
  operands = checked(std::move(operands), "exactly_one");
  return std::make_shared<ExactlyOneExpr>(std::move(operands));
}

// --- node behaviour ---------------------------------------------------------

bool NotExpr::evaluate(const Assignment& assignment) const { return !operand_->evaluate(assignment); }

std::string NotExpr::to_string() const { return "!(" + operand_->to_string() + ")"; }

void NotExpr::collect_variables(std::set<std::string>& out) const {
  operand_->collect_variables(out);
}

NaryExpr::NaryExpr(ExprKind kind, std::vector<ExprPtr> operands)
    : Expr(kind), operands_(std::move(operands)) {
  assert(!operands_.empty());
}

void NaryExpr::collect_variables(std::set<std::string>& out) const {
  for (const auto& op : operands_) op->collect_variables(out);
}

std::string NaryExpr::format(std::string_view op_token, std::string_view func_name) const {
  if (!func_name.empty()) {
    std::string out{func_name};
    out += '(';
    for (std::size_t i = 0; i < operands_.size(); ++i) {
      if (i != 0) out += ", ";
      out += operands_[i]->to_string();
    }
    out += ')';
    return out;
  }
  std::string out = "(";
  for (std::size_t i = 0; i < operands_.size(); ++i) {
    if (i != 0) {
      out += ' ';
      out += op_token;
      out += ' ';
    }
    out += operands_[i]->to_string();
  }
  out += ')';
  return out;
}

bool AndExpr::evaluate(const Assignment& assignment) const {
  for (const auto& op : operands()) {
    if (!op->evaluate(assignment)) return false;
  }
  return true;
}

std::string AndExpr::to_string() const { return format("&", ""); }

bool OrExpr::evaluate(const Assignment& assignment) const {
  for (const auto& op : operands()) {
    if (op->evaluate(assignment)) return true;
  }
  return false;
}

std::string OrExpr::to_string() const { return format("|", ""); }

bool XorExpr::evaluate(const Assignment& assignment) const {
  bool acc = false;
  for (const auto& op : operands()) acc ^= op->evaluate(assignment);
  return acc;
}

std::string XorExpr::to_string() const { return format("^", ""); }

bool ExactlyOneExpr::evaluate(const Assignment& assignment) const {
  int count = 0;
  for (const auto& op : operands()) {
    if (op->evaluate(assignment) && ++count > 1) return false;
  }
  return count == 1;
}

std::string ExactlyOneExpr::to_string() const { return format("", "one"); }

bool ImpliesExpr::evaluate(const Assignment& assignment) const {
  return !antecedent_->evaluate(assignment) || consequent_->evaluate(assignment);
}

std::string ImpliesExpr::to_string() const {
  return "(" + antecedent_->to_string() + " -> " + consequent_->to_string() + ")";
}

void ImpliesExpr::collect_variables(std::set<std::string>& out) const {
  antecedent_->collect_variables(out);
  consequent_->collect_variables(out);
}

}  // namespace sa::expr
