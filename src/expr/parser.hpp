// Recursive-descent parser for the dependency-expression language.
//
// Grammar (lowest to highest precedence; `->` is right-associative):
//
//   expr    := or ( "->" expr )?
//   or      := xor ( "|" xor )*
//   xor     := and ( "^" and )*
//   and     := unary ( "&" unary )*
//   unary   := "!" unary | primary
//   primary := "true" | "false" | ident | "(" expr ")"
//            | ("one" | "xor1") "(" expr ("," expr)* ")"
//   ident   := [A-Za-z_][A-Za-z0-9_]*
//
// `one(...)` is the paper's ⊗ operator: exactly one operand true.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "expr/ast.hpp"

namespace sa::expr {

/// Error thrown by parse(); `position()` is the byte offset of the offending
/// token in the input string.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " (at offset " + std::to_string(position) + ")"),
        position_(position) {}
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses `text` into an expression tree. Throws ParseError on malformed
/// input, including trailing garbage after a complete expression.
ExprPtr parse(std::string_view text);

}  // namespace sa::expr
