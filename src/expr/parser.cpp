#include "expr/parser.hpp"

#include <cctype>

namespace sa::expr {

namespace {

enum class TokenKind { Ident, LParen, RParen, Comma, Not, And, Or, Xor, Arrow, End };

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t position;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { advance(); }

  const Token& current() const { return current_; }

  void advance() {
    skip_whitespace();
    const std::size_t pos = offset_;
    if (offset_ >= input_.size()) {
      current_ = {TokenKind::End, "", pos};
      return;
    }
    const char c = input_[offset_];
    switch (c) {
      case '(': ++offset_; current_ = {TokenKind::LParen, "(", pos}; return;
      case ')': ++offset_; current_ = {TokenKind::RParen, ")", pos}; return;
      case ',': ++offset_; current_ = {TokenKind::Comma, ",", pos}; return;
      case '!': ++offset_; current_ = {TokenKind::Not, "!", pos}; return;
      case '&': ++offset_; current_ = {TokenKind::And, "&", pos}; return;
      case '|': ++offset_; current_ = {TokenKind::Or, "|", pos}; return;
      case '^': ++offset_; current_ = {TokenKind::Xor, "^", pos}; return;
      case '-':
        if (offset_ + 1 < input_.size() && input_[offset_ + 1] == '>') {
          offset_ += 2;
          current_ = {TokenKind::Arrow, "->", pos};
          return;
        }
        throw ParseError("unexpected '-'", pos);
      default: break;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = offset_;
      while (end < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[end])) || input_[end] == '_')) {
        ++end;
      }
      current_ = {TokenKind::Ident, std::string(input_.substr(offset_, end - offset_)), pos};
      offset_ = end;
      return;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", pos);
  }

 private:
  void skip_whitespace() {
    while (offset_ < input_.size() && std::isspace(static_cast<unsigned char>(input_[offset_]))) {
      ++offset_;
    }
  }

  std::string_view input_;
  std::size_t offset_ = 0;
  Token current_{TokenKind::End, "", 0};
};

class Parser {
 public:
  explicit Parser(std::string_view input) : lexer_(input) {}

  ExprPtr parse_full() {
    ExprPtr result = parse_expr();
    if (lexer_.current().kind != TokenKind::End) {
      throw ParseError("trailing input after expression", lexer_.current().position);
    }
    return result;
  }

 private:
  // expr := or ( "->" expr )?   -- right-associative implication
  ExprPtr parse_expr() {
    ExprPtr lhs = parse_or();
    if (lexer_.current().kind == TokenKind::Arrow) {
      lexer_.advance();
      return implies(std::move(lhs), parse_expr());
    }
    return lhs;
  }

  ExprPtr parse_or() {
    std::vector<ExprPtr> operands{parse_xor()};
    while (lexer_.current().kind == TokenKind::Or) {
      lexer_.advance();
      operands.push_back(parse_xor());
    }
    return disjunction(std::move(operands));
  }

  ExprPtr parse_xor() {
    std::vector<ExprPtr> operands{parse_and()};
    while (lexer_.current().kind == TokenKind::Xor) {
      lexer_.advance();
      operands.push_back(parse_and());
    }
    return exclusive_or(std::move(operands));
  }

  ExprPtr parse_and() {
    std::vector<ExprPtr> operands{parse_unary()};
    while (lexer_.current().kind == TokenKind::And) {
      lexer_.advance();
      operands.push_back(parse_unary());
    }
    return conjunction(std::move(operands));
  }

  ExprPtr parse_unary() {
    if (lexer_.current().kind == TokenKind::Not) {
      lexer_.advance();
      return negate(parse_unary());
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token token = lexer_.current();
    switch (token.kind) {
      case TokenKind::LParen: {
        lexer_.advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::RParen, "expected ')'");
        return inner;
      }
      case TokenKind::Ident: {
        lexer_.advance();
        if (token.text == "true") return constant(true);
        if (token.text == "false") return constant(false);
        if ((token.text == "one" || token.text == "xor1") &&
            lexer_.current().kind == TokenKind::LParen) {
          return parse_exactly_one();
        }
        return var(token.text);
      }
      default:
        throw ParseError("expected identifier, literal, '!' or '('", token.position);
    }
  }

  ExprPtr parse_exactly_one() {
    expect(TokenKind::LParen, "expected '(' after one");
    std::vector<ExprPtr> operands{parse_expr()};
    while (lexer_.current().kind == TokenKind::Comma) {
      lexer_.advance();
      operands.push_back(parse_expr());
    }
    expect(TokenKind::RParen, "expected ')' to close one(...)");
    return exactly_one(std::move(operands));
  }

  void expect(TokenKind kind, const char* message) {
    if (lexer_.current().kind != kind) {
      throw ParseError(message, lexer_.current().position);
    }
    lexer_.advance();
  }

  Lexer lexer_;
};

}  // namespace

ExprPtr parse(std::string_view text) { return Parser(text).parse_full(); }

}  // namespace sa::expr
