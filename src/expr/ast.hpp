// AST for dependency-relationship expressions (paper §3.1).
//
// The paper writes dependency relationships as logic expressions over
// components, e.g.
//
//   E1 -> (D1 | D2) & D4          (dependency invariant)
//   one(D1, D2, D3)               (structural invariant, the paper's "⊗":
//                                  exclusively select one from a set)
//
// An expression is evaluated against a configuration by assigning `true` to
// every component present in the configuration and `false` to every component
// absent from it.  Expressions are immutable and shared; building blocks are
// cheap to compose and safe to reuse across invariant sets.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace sa::expr {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  Constant,   // true / false
  Var,        // component reference
  Not,        // !a
  And,        // a & b  (n-ary)
  Or,         // a | b  (n-ary)
  Xor,        // a ^ b  (n-ary: true iff an odd number of operands are true)
  Implies,    // a -> b
  ExactlyOne  // one(a, b, ...): the paper's ⊗, true iff exactly one operand is true
};

/// Truth assignment for variables, keyed by component name.
using Assignment = std::function<bool(const std::string&)>;

class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Evaluates under `assignment` (total: must return a value for any name).
  virtual bool evaluate(const Assignment& assignment) const = 0;

  /// Canonical text form, parseable by sa::expr::parse.
  virtual std::string to_string() const = 0;

  /// Adds every variable name referenced by this expression to `out`.
  virtual void collect_variables(std::set<std::string>& out) const = 0;

  /// All variable names referenced, sorted.
  std::vector<std::string> variables() const;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

// --- Factory functions (the only way to build nodes) -----------------------

ExprPtr constant(bool value);
ExprPtr var(std::string name);
ExprPtr negate(ExprPtr operand);
ExprPtr conjunction(std::vector<ExprPtr> operands);
ExprPtr disjunction(std::vector<ExprPtr> operands);
ExprPtr exclusive_or(std::vector<ExprPtr> operands);
ExprPtr implies(ExprPtr antecedent, ExprPtr consequent);
ExprPtr exactly_one(std::vector<ExprPtr> operands);

// NOTE: deliberately NO operator overloads on ExprPtr — ExprPtr is a
// shared_ptr alias, and overloading !, && or || on it would silently hijack
// null checks and boolean tests throughout the namespace. Compose with the
// named factories above (or parse a string).

// --- Node classes (exposed for visitors/tests) -----------------------------

class ConstantExpr final : public Expr {
 public:
  explicit ConstantExpr(bool value) : Expr(ExprKind::Constant), value_(value) {}
  bool value() const { return value_; }
  bool evaluate(const Assignment&) const override { return value_; }
  std::string to_string() const override { return value_ ? "true" : "false"; }
  void collect_variables(std::set<std::string>&) const override {}

 private:
  bool value_;
};

class VarExpr final : public Expr {
 public:
  explicit VarExpr(std::string name) : Expr(ExprKind::Var), name_(std::move(name)) {}
  const std::string& name() const { return name_; }
  bool evaluate(const Assignment& assignment) const override { return assignment(name_); }
  std::string to_string() const override { return name_; }
  void collect_variables(std::set<std::string>& out) const override { out.insert(name_); }

 private:
  std::string name_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : Expr(ExprKind::Not), operand_(std::move(operand)) {}
  const ExprPtr& operand() const { return operand_; }
  bool evaluate(const Assignment& assignment) const override;
  std::string to_string() const override;
  void collect_variables(std::set<std::string>& out) const override;

 private:
  ExprPtr operand_;
};

/// Common base for the n-ary operators (And / Or / Xor / ExactlyOne).
class NaryExpr : public Expr {
 public:
  const std::vector<ExprPtr>& operands() const { return operands_; }
  void collect_variables(std::set<std::string>& out) const override;

 protected:
  NaryExpr(ExprKind kind, std::vector<ExprPtr> operands);
  std::string format(std::string_view op_token, std::string_view func_name) const;

 private:
  std::vector<ExprPtr> operands_;
};

class AndExpr final : public NaryExpr {
 public:
  explicit AndExpr(std::vector<ExprPtr> operands) : NaryExpr(ExprKind::And, std::move(operands)) {}
  bool evaluate(const Assignment& assignment) const override;
  std::string to_string() const override;
};

class OrExpr final : public NaryExpr {
 public:
  explicit OrExpr(std::vector<ExprPtr> operands) : NaryExpr(ExprKind::Or, std::move(operands)) {}
  bool evaluate(const Assignment& assignment) const override;
  std::string to_string() const override;
};

class XorExpr final : public NaryExpr {
 public:
  explicit XorExpr(std::vector<ExprPtr> operands) : NaryExpr(ExprKind::Xor, std::move(operands)) {}
  bool evaluate(const Assignment& assignment) const override;
  std::string to_string() const override;
};

class ExactlyOneExpr final : public NaryExpr {
 public:
  explicit ExactlyOneExpr(std::vector<ExprPtr> operands)
      : NaryExpr(ExprKind::ExactlyOne, std::move(operands)) {}
  bool evaluate(const Assignment& assignment) const override;
  std::string to_string() const override;
};

class ImpliesExpr final : public Expr {
 public:
  ImpliesExpr(ExprPtr antecedent, ExprPtr consequent)
      : Expr(ExprKind::Implies),
        antecedent_(std::move(antecedent)),
        consequent_(std::move(consequent)) {}
  const ExprPtr& antecedent() const { return antecedent_; }
  const ExprPtr& consequent() const { return consequent_; }
  bool evaluate(const Assignment& assignment) const override;
  std::string to_string() const override;
  void collect_variables(std::set<std::string>& out) const override;

 private:
  ExprPtr antecedent_;
  ExprPtr consequent_;
};

}  // namespace sa::expr
