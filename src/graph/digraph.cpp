#include "graph/digraph.hpp"

#include <sstream>
#include <stdexcept>

namespace sa::graph {

Digraph::Digraph(std::size_t node_count) : out_edges_(node_count) {}

NodeId Digraph::add_nodes(std::size_t count) {
  const NodeId first = static_cast<NodeId>(out_edges_.size());
  out_edges_.resize(out_edges_.size() + count);
  return first;
}

EdgeId Digraph::add_edge(NodeId from, NodeId to, double cost, std::int64_t label) {
  if (from >= node_count() || to >= node_count()) {
    throw std::out_of_range("Digraph::add_edge: node id out of range");
  }
  if (cost < 0.0) {
    throw std::invalid_argument("Digraph::add_edge: negative cost");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, cost, label});
  out_edges_[from].push_back(id);
  return id;
}

std::span<const EdgeId> Digraph::out_edges(NodeId node) const {
  return out_edges_.at(node);
}

std::string Digraph::describe() const {
  std::ostringstream out;
  out << node_count() << " nodes, " << edge_count() << " edges\n";
  for (const Edge& e : edges_) {
    out << "  " << e.from << " -> " << e.to << " [cost=" << e.cost << ", label=" << e.label
        << "]\n";
  }
  return out.str();
}

}  // namespace sa::graph
