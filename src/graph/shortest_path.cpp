#include "graph/shortest_path.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <set>
#include <tuple>

namespace sa::graph {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

bool is_banned(const std::vector<bool>& banned, std::size_t index) {
  return index < banned.size() && banned[index];
}

Path reconstruct(const Digraph& graph, NodeId source, NodeId target,
                 const std::vector<EdgeId>& parent_edge, double cost) {
  Path path;
  path.cost = cost;
  NodeId node = target;
  while (node != source) {
    const EdgeId eid = parent_edge[node];
    assert(eid != kNoEdge);
    path.edges.push_back(eid);
    path.nodes.push_back(node);
    node = graph.edge(eid).from;
  }
  path.nodes.push_back(source);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

}  // namespace

std::optional<Path> dijkstra_filtered(const Digraph& graph, NodeId source, NodeId target,
                                      const std::vector<bool>& banned_edges,
                                      const std::vector<bool>& banned_nodes) {
  const std::size_t n = graph.node_count();
  if (source >= n || target >= n) return std::nullopt;
  if (is_banned(banned_nodes, source) || is_banned(banned_nodes, target)) return std::nullopt;

  std::vector<double> dist(n, kInf);
  std::vector<EdgeId> parent_edge(n, kNoEdge);
  std::vector<bool> settled(n, false);

  // (cost, tie-break edge id, node): the edge-id tie-break makes equal-cost
  // path selection deterministic, which keeps SAG goldens stable.
  using Entry = std::tuple<double, EdgeId, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[source] = 0.0;
  queue.emplace(0.0, kNoEdge, source);

  while (!queue.empty()) {
    const auto [cost, via, node] = queue.top();
    queue.pop();
    if (settled[node]) continue;
    settled[node] = true;
    if (node == target) break;
    for (const EdgeId eid : graph.out_edges(node)) {
      if (is_banned(banned_edges, eid)) continue;
      const Edge& e = graph.edge(eid);
      if (settled[e.to] || is_banned(banned_nodes, e.to)) continue;
      const double next_cost = cost + e.cost;
      if (next_cost < dist[e.to] ||
          (next_cost == dist[e.to] && parent_edge[e.to] != kNoEdge && eid < parent_edge[e.to])) {
        dist[e.to] = next_cost;
        parent_edge[e.to] = eid;
        queue.emplace(next_cost, eid, e.to);
      }
    }
  }

  if (dist[target] == kInf) return std::nullopt;
  return reconstruct(graph, source, target, parent_edge, dist[target]);
}

std::optional<Path> dijkstra(const Digraph& graph, NodeId source, NodeId target) {
  return dijkstra_filtered(graph, source, target, {}, {});
}

std::optional<Path> bellman_ford(const Digraph& graph, NodeId source, NodeId target) {
  const std::size_t n = graph.node_count();
  if (source >= n || target >= n) return std::nullopt;
  std::vector<double> dist(n, kInf);
  std::vector<EdgeId> parent_edge(n, kNoEdge);
  dist[source] = 0.0;
  for (std::size_t round = 0; round + 1 < std::max<std::size_t>(n, 1); ++round) {
    bool changed = false;
    for (EdgeId eid = 0; eid < graph.edge_count(); ++eid) {
      const Edge& e = graph.edge(eid);
      if (dist[e.from] == kInf) continue;
      const double next_cost = dist[e.from] + e.cost;
      if (next_cost < dist[e.to]) {
        dist[e.to] = next_cost;
        parent_edge[e.to] = eid;
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (dist[target] == kInf) return std::nullopt;
  return reconstruct(graph, source, target, parent_edge, dist[target]);
}

std::vector<Path> k_shortest_paths(const Digraph& graph, NodeId source, NodeId target,
                                   std::size_t k) {
  std::vector<Path> result;
  if (k == 0) return result;
  auto first = dijkstra(graph, source, target);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate pool ordered by (cost, node sequence) for determinism.
  auto cmp = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    if (a.nodes != b.nodes) return a.nodes < b.nodes;
    return a.edges < b.edges;
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  std::vector<bool> banned_edges(graph.edge_count(), false);
  std::vector<bool> banned_nodes(graph.node_count(), false);

  while (result.size() < k) {
    const Path& previous = result.back();
    // Each node of the previous path (except the last) is a spur candidate.
    for (std::size_t i = 0; i + 1 < previous.nodes.size(); ++i) {
      const NodeId spur_node = previous.nodes[i];
      const std::span root_edges(previous.edges.data(), i);

      std::fill(banned_edges.begin(), banned_edges.end(), false);
      std::fill(banned_nodes.begin(), banned_nodes.end(), false);

      // Ban the next edge of every accepted path sharing this root.
      for (const Path& accepted : result) {
        if (accepted.edges.size() < i) continue;
        bool same_root = true;
        for (std::size_t j = 0; j < i; ++j) {
          if (accepted.edges[j] != root_edges[j]) {
            same_root = false;
            break;
          }
        }
        if (same_root && accepted.edges.size() > i) banned_edges[accepted.edges[i]] = true;
      }
      // Ban root nodes (except the spur node) to keep paths loopless.
      for (std::size_t j = 0; j < i; ++j) banned_nodes[previous.nodes[j]] = true;

      auto spur = dijkstra_filtered(graph, spur_node, target, banned_edges, banned_nodes);
      if (!spur) continue;

      Path total;
      total.nodes.assign(previous.nodes.begin(), previous.nodes.begin() + i);
      total.edges.assign(previous.edges.begin(), previous.edges.begin() + i);
      double root_cost = 0.0;
      for (const EdgeId eid : total.edges) root_cost += graph.edge(eid).cost;
      total.nodes.insert(total.nodes.end(), spur->nodes.begin(), spur->nodes.end());
      total.edges.insert(total.edges.end(), spur->edges.begin(), spur->edges.end());
      total.cost = root_cost + spur->cost;
      candidates.insert(std::move(total));
    }

    // Pop the cheapest candidate not yet accepted.
    bool advanced = false;
    while (!candidates.empty()) {
      Path next = *candidates.begin();
      candidates.erase(candidates.begin());
      if (std::find(result.begin(), result.end(), next) == result.end()) {
        result.push_back(std::move(next));
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // candidate pool exhausted
  }
  return result;
}

}  // namespace sa::graph
