// Shortest-path algorithms over Digraph.
//
// The detection-and-setup phase of the paper (§4.2 step 3) applies Dijkstra's
// algorithm to the SAG to find the minimum adaptation path (MAP).  The failure
// handling strategy (§4.4) then needs the *second* minimum path, the third,
// and so on — provided here by Yen's k-shortest loopless paths algorithm.
// Bellman–Ford is included as an independent oracle for property tests.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace sa::graph {

struct Path {
  std::vector<NodeId> nodes;    ///< node sequence, size = edges.size() + 1
  std::vector<EdgeId> edges;    ///< edge sequence
  double cost = 0.0;

  bool operator==(const Path&) const = default;
};

/// Single-source Dijkstra; returns the min-cost path from `source` to
/// `target`, or nullopt if unreachable. Ties are broken deterministically by
/// preferring smaller edge ids so goldens are stable across runs.
std::optional<Path> dijkstra(const Digraph& graph, NodeId source, NodeId target);

/// Dijkstra that ignores `banned_edges[e]`/`banned_nodes[n]` entries set to
/// true (vectors may be shorter than the graph; missing entries = allowed).
/// Used as the subroutine of Yen's algorithm.
std::optional<Path> dijkstra_filtered(const Digraph& graph, NodeId source, NodeId target,
                                      const std::vector<bool>& banned_edges,
                                      const std::vector<bool>& banned_nodes);

/// Bellman–Ford oracle (O(V*E)); same tie-breaking contract as dijkstra().
std::optional<Path> bellman_ford(const Digraph& graph, NodeId source, NodeId target);

/// Yen's algorithm: up to `k` shortest *loopless* paths in nondecreasing cost
/// order. Returns fewer than `k` paths if the graph has fewer distinct ones.
std::vector<Path> k_shortest_paths(const Digraph& graph, NodeId source, NodeId target,
                                   std::size_t k);

}  // namespace sa::graph
