// Directed weighted multigraph used for the safe adaptation graph (SAG).
//
// Nodes are dense indices (0..node_count-1); each edge carries a non-negative
// cost and an opaque user label (the adaptive-action id in the SAG).  Parallel
// edges are allowed — the paper's action table often offers several actions
// between the same two configurations (e.g. a single-component action vs. a
// combined pair action), and path planning must pick the cheapest.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sa::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  double cost = 0.0;
  std::int64_t label = 0;  ///< opaque user payload (action id in the SAG)
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count);

  /// Adds `count` new nodes, returning the id of the first one.
  NodeId add_nodes(std::size_t count = 1);

  /// Adds an edge; cost must be >= 0 (shortest-path algorithms assume it).
  EdgeId add_edge(NodeId from, NodeId to, double cost, std::int64_t label = 0);

  std::size_t node_count() const { return out_edges_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Edge& edge(EdgeId id) const { return edges_[id]; }
  std::span<const EdgeId> out_edges(NodeId node) const;
  std::span<const Edge> edges() const { return edges_; }

  /// Multi-line "from -> to [cost, label]" dump for debugging and goldens.
  std::string describe() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
};

}  // namespace sa::graph
