// Experiment E5 — the §5.2 walkthrough on the live video testbed: run the
// 64-bit -> 128-bit hardening on a streaming system and measure the packet
// delay each adaptation step induces, contrasting the MAP's single-component
// actions (~10 ms class) with the combined sender+receiver actions the paper
// prices at ~100 ms (A6-A9 "the server has to be blocked until the last
// packet processed by the encoder has been decoded by the decoder(s)").
//
// Expected shape (Table 2): pair actions cost roughly an order of magnitude
// more packet delay than single-component actions; the MAP avoids them.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "util/log.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "core/video_testbed.hpp"
#include "sim/network.hpp"

namespace {

using namespace sa;

sim::Time max_delay_of(const components::FilterChain& chain) {
  return chain.stats().max_delay;
}

void run_map_on_live_stream() {
  core::TestbedConfig config;
  core::VideoTestbed testbed(config);
  testbed.server().chain().set_delay_logging(true);
  testbed.handheld().chain().set_delay_logging(true);
  testbed.laptop().chain().set_delay_logging(true);

  testbed.start_stream();
  testbed.run_for(sim::ms(300));

  std::optional<proto::AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const proto::AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));

  std::printf("=== Section 5.2: safe adaptation of the live video stream ===\n");
  if (!result) {
    std::printf("adaptation did not terminate -> FAIL\n");
    return;
  }
  std::printf("outcome: %s; steps: %zu; virtual duration %.1f ms\n",
              std::string(proto::to_string(result->outcome)).c_str(), result->steps_committed,
              (result->finished - result->started) / 1000.0);
  std::printf("stream integrity: intact=%llu corrupted=%llu undecodable=%llu missing=%llu\n",
              static_cast<unsigned long long>(testbed.total_intact()),
              static_cast<unsigned long long>(testbed.total_corrupted()),
              static_cast<unsigned long long>(testbed.total_undecodable()),
              static_cast<unsigned long long>(
                  testbed.handheld().sink().missing(testbed.server().packets_emitted()) +
                  testbed.laptop().sink().missing(testbed.server().packets_emitted())));
  std::printf("max packet delay: server %.2f ms, hand-held %.2f ms, laptop %.2f ms\n",
              max_delay_of(testbed.server().chain()) / 1000.0,
              max_delay_of(testbed.handheld().chain()) / 1000.0,
              max_delay_of(testbed.laptop().chain()) / 1000.0);
  std::printf("player max inter-arrival gap: hand-held %.2f ms, laptop %.2f ms\n",
              testbed.handheld().player_stats().max_interarrival_gap / 1000.0,
              testbed.laptop().player_stats().max_interarrival_gap / 1000.0);
  const bool pass = result->outcome == proto::AdaptationOutcome::Success &&
                    testbed.total_corrupted() == 0 && testbed.total_undecodable() == 0;
  std::printf("paper's claim (no corruption, bounded delay via cheap singles) -> %s\n\n",
              pass ? "PASS" : "FAIL");
}

/// Measures the packet-delay cost of the single-action MAP against a forced
/// combined (pair/triple) action, reproducing Table 2's 10 ms vs 100/150 ms
/// tiers: combined sender+receiver actions block the server until the last
/// old-scheme packet has drained through the clients.
void compare_single_vs_pair_action() {
  struct Run {
    const char* label;
    core::PaperActionSet action_set;
    sim::Time server_delay = 0;
    sim::Time handheld_delay = 0;
    double adaptation_ms = 0;
    std::string path;
    bool clean = false;
  } runs[] = {
      {"singles (MAP avoids pair actions)", core::PaperActionSet::SinglesOnly, 0, 0, 0, "", false},
      {"forced combined pair action (A6-A15 tier)", core::PaperActionSet::CombinedOnly, 0, 0, 0, "",
       false},
  };

  // Target {D5,D2,E2}: reachable via A2,A17,A1,A16 (4 x 10 ms) with singles,
  // or via the triple action A13 alone when only combined actions exist.
  for (Run& run : runs) {
    core::TestbedConfig config;
    config.action_set = run.action_set;
    core::VideoTestbed testbed(config);
    const auto target =
        config::Configuration::of(testbed.system().registry(), {"D5", "D2", "E2"});

    testbed.start_stream();
    testbed.run_for(sim::ms(300));
    std::optional<proto::AdaptationResult> result;
    testbed.system().request_adaptation(
        target, [&result](const proto::AdaptationResult& r) { result = r; });
    testbed.run_for(sim::seconds(5));
    testbed.stop_stream();
    testbed.run_for(sim::seconds(1));

    run.server_delay = max_delay_of(testbed.server().chain());
    run.handheld_delay = max_delay_of(testbed.handheld().chain());
    if (result) {
      run.adaptation_ms = (result->finished - result->started) / 1000.0;
      run.clean = result->outcome == proto::AdaptationOutcome::Success &&
                  testbed.total_corrupted() == 0 && testbed.total_undecodable() == 0;
      std::string names;
      for (const auto& record : testbed.system().manager().step_log()) {
        if (!names.empty()) names += ", ";
        names += record.action_name;
      }
      run.path = names;
    }
  }

  std::printf("=== Table 2 cost tiers on the live stream (to {D5,D2,E2}) ===\n");
  std::printf("%-38s %-22s %-16s %-18s %-12s %s\n", "strategy", "path", "server max (ms)",
              "hand-held max (ms)", "total (ms)", "intact?");
  for (const Run& run : runs) {
    std::printf("%-38s %-22s %-16.2f %-18.2f %-12.2f %s\n", run.label, run.path.c_str(),
                run.server_delay / 1000.0, run.handheld_delay / 1000.0, run.adaptation_ms,
                run.clean ? "yes" : "NO");
  }
  std::printf("expected shape: the combined action blocks the server for the drain window, "
              "costing roughly an order of magnitude more server-side packet delay.\n\n");
}

void BM_LiveAdaptationEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    core::VideoTestbed testbed;
    testbed.start_stream();
    testbed.run_for(sim::ms(100));
    std::optional<proto::AdaptationResult> result;
    testbed.system().request_adaptation(
        testbed.target(), [&result](const proto::AdaptationResult& r) { result = r; });
    testbed.run_for(sim::seconds(3));
    testbed.stop_stream();
    if (!result || result->outcome != proto::AdaptationOutcome::Success) {
      state.SkipWithError("adaptation failed");
      return;
    }
    benchmark::DoNotOptimize(testbed.total_intact());
  }
}
BENCHMARK(BM_LiveAdaptationEndToEnd)->Unit(benchmark::kMillisecond);

void BM_SteadyStateStreaming(benchmark::State& state) {
  // Cost of simulating one second of steady-state video (no adaptation) —
  // the workload floor under every experiment.
  for (auto _ : state) {
    core::VideoTestbed testbed;
    testbed.start_stream();
    testbed.run_for(sim::seconds(1));
    testbed.stop_stream();
    benchmark::DoNotOptimize(testbed.total_intact());
  }
}
BENCHMARK(BM_SteadyStateStreaming)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sa::util::set_log_level(sa::util::LogLevel::Off);
  run_map_on_live_stream();
  compare_single_vs_pair_action();
  return sa::benchio::run_and_report(argc, argv, "video_adaptation");
}
