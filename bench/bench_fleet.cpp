// Experiment X4 — fleet-scale hierarchical adaptation: the §7 manager tree
// with epoch-batched group commit, driven from 8 clusters up to tens of
// thousands of simulated agents.
//
// The acceptance signal is FLATNESS: mean §4.3 blocked time per process must
// not grow with fleet size, because regions adapt independently and, inside a
// region, disjoint lanes commit concurrently under one root epoch. The sweep
// table and the BM_FleetMassAdaptation counters (exported to BENCH_fleet.json
// by the TeeReporter) both carry blocked_us_per_process so CI can gate on it.
//
// The preamble also runs the ThreadedRuntime storm: ~a thousand short-lived
// submitter threads race submit_adaptation against 32 regions' roots on the
// real-thread backend — group commit under genuine preemption.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/composite.hpp"
#include "core/fleet.hpp"
#include "obs/trace_analysis.hpp"
#include "util/log.hpp"

namespace {

using namespace sa;

core::FleetSpec spec_for(std::size_t clusters) {
  core::FleetSpec spec;
  spec.clusters = clusters;
  spec.threads = std::max(1U, std::thread::hardware_concurrency());
  return spec;
}

void print_fleet_sweep() {
  std::printf("=== Fleet mass adaptation: blocked time stays flat (Section 7) ===\n");
  std::printf("%-10s %-10s %-8s %-8s %-8s %-8s %-20s %-12s\n", "clusters", "agents",
              "regions", "coords", "depth", "epochs", "blocked_us/process", "virtual_ms");
  for (const std::size_t clusters : {8UL, 64UL, 512UL, 4096UL, 10000UL}) {
    const core::FleetReport report = core::run_fleet(spec_for(clusters));
    std::printf("%-10zu %-10zu %-8zu %-8zu %-8zu %-8llu %-20.1f %-12.1f%s\n", clusters,
                clusters, report.regions.size(), report.coordinators, report.depth,
                static_cast<unsigned long long>(report.epochs), report.blocked_us_per_process,
                report.virtual_time / 1000.0, report.success ? "" : "  FAILURE");
  }
  std::printf("expected: blocked time per process is independent of fleet size; only the\n"
              "tree gets deeper (log fanout) and the epoch count grows with regions.\n\n");
}

void print_threaded_storm() {
  core::ThreadedCampaignSpec spec;
  spec.regions = 32;
  spec.clusters_per_region = 32;
  spec.submitters_per_region = 32;  // 1024 submitter threads over 1024 clusters
  spec.runtime_workers = std::max(2U, std::thread::hardware_concurrency());
  const core::ThreadedCampaignReport report = core::run_threaded_campaign(spec);
  std::printf("=== ThreadedRuntime group-commit storm ===\n");
  std::printf("%zu submitter threads over %zu clusters: %llu/%zu tickets done, "
              "%llu root epochs -> %s\n",
              report.threads, report.clusters,
              static_cast<unsigned long long>(report.tickets), report.threads,
              static_cast<unsigned long long>(report.epochs),
              report.success ? "PASS" : "FAIL");
  for (const std::string& failure : report.failures) {
    std::printf("  %s\n", failure.c_str());
  }
  std::printf("\n");
}

/// One full fleet campaign per iteration; counters feed BENCH_fleet.json.
void BM_FleetMassAdaptation(benchmark::State& state) {
  const auto spec = spec_for(static_cast<std::size_t>(state.range(0)));
  bool success = true;
  core::FleetReport report;
  for (auto _ : state) {
    report = core::run_fleet(spec);
    success = success && report.success;
    benchmark::DoNotOptimize(report.digest);
  }
  if (!success) state.SkipWithError("fleet campaign failed");
  state.counters["clusters"] = static_cast<double>(spec.clusters);
  state.counters["regions"] = static_cast<double>(report.regions.size());
  state.counters["depth"] = static_cast<double>(report.depth);
  state.counters["epochs"] = static_cast<double>(report.epochs);
  state.counters["blocked_us_per_process"] = report.blocked_us_per_process;
  state.counters["virtual_ms"] = report.virtual_time / 1000.0;
}
BENCHMARK(BM_FleetMassAdaptation)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// The same campaign with the causal flight recorder on: measures the
/// recorder's wall-clock overhead against a back-to-back untraced run and
/// feeds the trace through the critical-path analysis, so BENCH_fleet.json
/// carries both the tracing cost and the attribution results. CI gates
/// tracing_overhead_pct at 5%.
void BM_FleetTracedAdaptation(benchmark::State& state) {
  const auto plain_spec = spec_for(static_cast<std::size_t>(state.range(0)));
  auto record_spec = plain_spec;
  record_spec.trace = true;
  record_spec.trace_export = false;  // arm the recorder, skip the export
  auto export_spec = plain_spec;
  export_spec.trace = true;

  using clock = std::chrono::steady_clock;
  double traced_s = 1e30;
  double plain_s = 1e30;
  bool success = true;
  core::FleetReport report;
  for (auto _ : state) {
    // The 5% gate covers the always-on recording path; the JSONL export is
    // an on-demand operation, so it runs once outside the timed pairs. One
    // untimed warmup plus min-of-3 interleaved pairs keeps first-touch page
    // faults and CPU frequency ramp out of the overhead ratio.
    const core::FleetReport warmup = core::run_fleet(plain_spec);
    core::FleetReport recorded;
    core::FleetReport plain;
    for (int pair = 0; pair < 3; ++pair) {
      const auto t0 = clock::now();
      recorded = core::run_fleet(record_spec);
      const auto t1 = clock::now();
      plain = core::run_fleet(plain_spec);
      const auto t2 = clock::now();
      traced_s = std::min(traced_s, std::chrono::duration<double>(t1 - t0).count());
      plain_s = std::min(plain_s, std::chrono::duration<double>(t2 - t1).count());
    }
    report = core::run_fleet(export_spec);
    success = success && report.success && plain.success && recorded.success &&
              warmup.success && report.digest == plain.digest &&
              recorded.digest == plain.digest && warmup.digest == plain.digest;
    benchmark::DoNotOptimize(report.digest);
  }
  if (!success) state.SkipWithError("traced fleet campaign failed or diverged");

  // Critical-path attribution over the recorded trace (same code path as
  // `sa_trace`), including the telescoping invariant.
  std::vector<obs::TraceLine> lines;
  for (const core::RegionReport& region : report.regions) {
    std::istringstream stream(region.trace_jsonl);
    std::string line;
    while (std::getline(stream, line)) {
      if (auto parsed = obs::parse_trace_line(line)) lines.push_back(std::move(*parsed));
    }
  }
  const obs::TraceAnalysis analysis = obs::analyze(lines);
  std::size_t verified = 0;
  double path_nodes = 0;
  for (const obs::EpochCriticalPath& epoch : analysis.epochs) {
    runtime::Time sum = 0;
    for (const obs::CriticalPathNode& node : epoch.path) sum += node.contribution;
    verified += sum == epoch.latency ? 1 : 0;
    path_nodes += static_cast<double>(epoch.path.size());
  }
  if (verified != analysis.epochs.size()) {
    state.SkipWithError("critical paths do not sum to root epoch latency");
  }

  state.counters["clusters"] = static_cast<double>(plain_spec.clusters);
  state.counters["trace_events"] = static_cast<double>(report.trace_events);
  state.counters["trace_dropped"] = static_cast<double>(report.trace_dropped);
  state.counters["tracing_overhead_pct"] =
      plain_s > 0 ? (traced_s / plain_s - 1.0) * 100.0 : 0.0;
  state.counters["recorded_ms"] = traced_s * 1e3;
  state.counters["plain_ms"] = plain_s * 1e3;
  state.counters["root_epochs"] = static_cast<double>(analysis.epochs.size());
  state.counters["critical_paths_verified"] = static_cast<double>(verified);
  state.counters["critical_path_nodes_mean"] =
      analysis.epochs.empty() ? 0.0 : path_nodes / static_cast<double>(analysis.epochs.size());
  state.counters["root_epoch_p99_us"] =
      static_cast<double>(analysis.latencies.at("root_epoch").p99);
  state.counters["blocked_us_total"] = analysis.blocked_us_total;
}
BENCHMARK(BM_FleetTracedAdaptation)
    ->Arg(512)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

struct StormProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

/// Group-commit coalescing on the simulator: `range(0)` submissions land
/// inside one root epoch window; same-shard targets coalesce so the pipeline
/// runs far fewer epochs than tickets.
void BM_GroupCommitCoalescing(benchmark::State& state) {
  const std::size_t tickets = static_cast<std::size_t>(state.range(0));
  const std::size_t clusters = 16;
  std::uint64_t epochs = 0;
  for (auto _ : state) {
    core::CompositeConfig config;
    config.control_channel = runtime::ChannelConfig{runtime::ms(2), 0, 0.0, true};
    config.topology.lanes_per_leaf = 4;
    config.topology.fanout = 4;
    core::CompositeAdaptationSystem system(config);
    std::vector<std::unique_ptr<StormProcess>> processes;
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::string s = std::to_string(c);
      system.registry().add("X" + s, static_cast<config::ProcessId>(c));
      system.registry().add("Y" + s, static_cast<config::ProcessId>(c));
    }
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::string s = std::to_string(c);
      system.add_invariant("one" + s, "one(X" + s + ", Y" + s + ")");
      system.add_action("swap" + s, {"X" + s}, {"Y" + s}, 10);
    }
    for (std::size_t c = 0; c < clusters; ++c) {
      processes.push_back(std::make_unique<StormProcess>());
      system.attach_process(static_cast<config::ProcessId>(c), *processes.back(), 0);
    }
    system.finalize();
    config::Configuration source, target;
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::string s = std::to_string(c);
      source = source.with(system.registry().require("X" + s));
      target = target.with(system.registry().require("Y" + s));
    }
    system.set_current_configuration(source);

    std::size_t done = 0;
    for (std::size_t t = 0; t < tickets; ++t) {
      system.submit_adaptation(target, [&done](const core::CompositeResult&) { ++done; });
    }
    system.runtime().wait_until([&] { return done == tickets; });
    epochs = system.root_coordinator().epochs_completed();
    benchmark::DoNotOptimize(done);
  }
  state.counters["tickets"] = static_cast<double>(tickets);
  state.counters["epochs"] = static_cast<double>(epochs);
}
BENCHMARK(BM_GroupCommitCoalescing)->Arg(1)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sa::util::set_log_level(sa::util::LogLevel::Off);
  print_fleet_sweep();
  print_threaded_storm();
  return sa::benchio::run_and_report(argc, argv, "fleet");
}
