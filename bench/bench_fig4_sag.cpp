// Experiment T2/F4 — reproduces Table 2 (adaptive action roster and costs)
// and Figure 4 (the safe adaptation graph and the minimum adaptation path).
//
// Output: the action table, the SAG edge list, the MAP with its cost, and a
// PASS/FAIL line against the paper's published path "A2, A17, A1, A16, A4"
// at 50 ms, followed by timings of SAG construction and path planning.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "util/log.hpp"

#include <cstdio>

#include "actions/planner.hpp"
#include "config/enumerate.hpp"
#include "core/paper_scenario.hpp"

namespace {

using namespace sa;

void print_table2_and_fig4() {
  const core::PaperScenario scenario = core::make_paper_scenario();

  std::printf("=== Table 2: adaptive actions and costs ===\n");
  std::printf("%-6s %-28s %-10s %s\n", "action", "operation", "cost (ms)", "description");
  for (const auto& action : scenario.actions->actions()) {
    std::printf("%-6s %-28s %-10.0f %s\n", action.name.c_str(),
                action.operation_text(*scenario.registry).c_str(), action.cost,
                action.description.c_str());
  }

  const auto safe = config::enumerate_safe_pruned(*scenario.invariants);
  const actions::SafeAdaptationGraph sag(*scenario.actions, safe);
  std::printf("\n=== Figure 4: safe adaptation graph ===\n%s", sag.describe().c_str());

  const actions::PathPlanner planner(sag);
  const auto plan = planner.minimum_path(scenario.source, scenario.target);
  std::printf("\n=== Minimum adaptation path ===\n");
  if (plan) {
    std::printf("MAP: %s (cost %.0f ms)\n", plan->action_names(*scenario.actions).c_str(),
                plan->total_cost);
    const bool pass = plan->action_names(*scenario.actions) == "A2, A17, A1, A16, A4" &&
                      plan->total_cost == 50.0;
    std::printf("paper reports: A2, A17, A1, A16, A4 (cost 50 ms) -> %s\n",
                pass ? "PASS (exact match)" : "FAIL");
    std::printf("\nranked alternatives (failure-handling strategy 2):\n");
    const auto ranked = planner.ranked_paths(scenario.source, scenario.target, 4);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      std::printf("  #%zu: %s (cost %.0f ms)\n", i + 1,
                  ranked[i].action_names(*scenario.actions).c_str(), ranked[i].total_cost);
    }
  } else {
    std::printf("NO PATH FOUND -> FAIL\n");
  }
  std::printf("\n");
}

void BM_BuildSag(benchmark::State& state) {
  const core::PaperScenario scenario = core::make_paper_scenario();
  const auto safe = config::enumerate_safe_pruned(*scenario.invariants);
  for (auto _ : state) {
    actions::SafeAdaptationGraph sag(*scenario.actions, safe);
    benchmark::DoNotOptimize(sag.edge_count());
  }
}
BENCHMARK(BM_BuildSag);

void BM_DijkstraMap(benchmark::State& state) {
  const core::PaperScenario scenario = core::make_paper_scenario();
  const auto safe = config::enumerate_safe_pruned(*scenario.invariants);
  const actions::SafeAdaptationGraph sag(*scenario.actions, safe);
  const actions::PathPlanner planner(sag);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.minimum_path(scenario.source, scenario.target));
  }
}
BENCHMARK(BM_DijkstraMap);

void BM_RankedPaths(benchmark::State& state) {
  const core::PaperScenario scenario = core::make_paper_scenario();
  const auto safe = config::enumerate_safe_pruned(*scenario.invariants);
  const actions::SafeAdaptationGraph sag(*scenario.actions, safe);
  const actions::PathPlanner planner(sag);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        planner.ranked_paths(scenario.source, scenario.target, state.range(0)));
  }
}
BENCHMARK(BM_RankedPaths)->Arg(2)->Arg(4)->Arg(8);

void BM_EndToEndDetectionAndSetupPhase(benchmark::State& state) {
  // The full §4.2 pipeline: enumerate safe set + build SAG + find MAP.
  const core::PaperScenario scenario = core::make_paper_scenario();
  for (auto _ : state) {
    const auto safe = config::enumerate_safe_pruned(*scenario.invariants);
    const actions::SafeAdaptationGraph sag(*scenario.actions, safe);
    const actions::PathPlanner planner(sag);
    benchmark::DoNotOptimize(planner.minimum_path(scenario.source, scenario.target));
  }
}
BENCHMARK(BM_EndToEndDetectionAndSetupPhase);

}  // namespace

int main(int argc, char** argv) {
  sa::util::set_log_level(sa::util::LogLevel::Off);
  print_table2_and_fig4();
  return sa::benchio::run_and_report(argc, argv, "fig4_sag");
}
