// Throughput benchmarks for the model-checking engine (src/check/engine.hpp).
//
// Three groups:
//
//   * CheckSeedStyleDfs — a faithful re-implementation of the original
//     recursive explorer (per-node std::vector<Choice> allocation, full Model
//     copy per child plus a second full copy per leaf, std::unordered_set
//     dedup, transition recording left on). This is the live baseline the
//     engine's speedup is computed against.
//   * CheckEngineDfs/<t> — the frontier engine on the same exhaustive tiny
//     search at t worker threads. Counters: states_per_sec and
//     speedup_vs_seed_style (baseline wall-clock / engine wall-clock, both
//     measured in-process in the same build).
//   * CheckModelFork — microbenchmark of the hot-path fork (copy + apply) at
//     a mid-search state, with transition recording on (seed default) and
//     off (engine setting), isolating the per-edge cost the engine pays.
//   * CheckReductionSweep/<scenario>/<dpor>/<symmetry> — the state-space
//     reductions (sleep-set DPOR, symmetry canonicalization) separately and
//     combined, on the exhaustive tiny search and a bounded pair search.
//     Counters: edges (choice applications), states_explored (distinct
//     states retained after dedup), reduction_ratio (unreduced edges at the
//     same bound / this row's edges), wall_seconds.
//
// The exhaustive tiny search visits ~286k distinct states / ~723k edges, so
// one iteration is meaningful; Google Benchmark picks the repetition count. EXPERIMENTS.md additionally records the end-to-end
// speedup against the pre-optimization seed binary, which this bench cannot
// reproduce (the Model itself was reworked in the same change).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "check/explorer.hpp"
#include "check/model.hpp"
#include "check/scenario.hpp"

namespace {

using namespace sa;

check::ExploreOptions tiny_exhaustive_options() {
  check::ExploreOptions options;
  options.max_depth = 100;
  options.max_states = 1'000'000;
  return options;
}

// ---------------------------------------------------------------------------
// Seed-style reference explorer: the exact algorithm shipped before the
// engine existed. Kept here (not in src/) so the production tree has one
// search implementation; the bench needs it live to measure speedup on the
// machine it runs on.

struct SeedDfsContext {
  const check::ExploreOptions* options = nullptr;
  std::unordered_set<std::uint64_t> visited;
  std::size_t states_explored = 0;
  std::size_t states_deduped = 0;
  std::size_t runs_completed = 0;
  bool stop = false;
};

void seed_style_record_leaf(const check::Model& model, SeedDfsContext& ctx) {
  check::Model leaf = model;  // the seed finalized a second full copy
  leaf.finalize();
  if (!leaf.violations().empty()) {
    ctx.stop = true;
    return;
  }
  ++ctx.runs_completed;
}

void seed_style_dfs(const check::Model& model, int depth, SeedDfsContext& ctx) {
  const std::vector<check::Choice> choices = model.choices();
  if (choices.empty()) {
    seed_style_record_leaf(model, ctx);
    return;
  }
  if (depth >= ctx.options->max_depth) return;
  for (const check::Choice& choice : choices) {
    check::Model next = model;
    next.apply(choice);
    ++ctx.states_explored;
    if (!next.violations().empty()) {
      ctx.stop = true;
      return;
    }
    if (!ctx.visited.insert(next.fingerprint()).second) {
      ++ctx.states_deduped;
      continue;
    }
    if (ctx.visited.size() >= ctx.options->max_states) {
      ctx.stop = true;
      return;
    }
    seed_style_dfs(next, depth + 1, ctx);
    if (ctx.stop) return;
  }
}

SeedDfsContext run_seed_style(const check::Scenario& scenario,
                              const check::ExploreOptions& options) {
  SeedDfsContext ctx;
  ctx.options = &options;
  const check::Model root = check::make_model(scenario, options);
  ctx.visited.insert(root.fingerprint());
  seed_style_dfs(root, 0, ctx);
  return ctx;
}

/// Baseline wall-clock, measured once and reused for every engine speedup
/// counter so all entries in one report divide by the same number.
double seed_style_baseline_seconds() {
  static const double seconds = [] {
    const check::Scenario scenario = check::make_scenario("tiny");
    const check::ExploreOptions options = tiny_exhaustive_options();
    const auto start = std::chrono::steady_clock::now();
    const SeedDfsContext ctx = run_seed_style(scenario, options);
    const auto stop = std::chrono::steady_clock::now();
    if (ctx.stop) throw std::runtime_error("seed-style baseline hit a budget");
    return std::chrono::duration<double>(stop - start).count();
  }();
  return seconds;
}

void BM_CheckSeedStyleDfs(benchmark::State& state) {
  const check::Scenario scenario = check::make_scenario("tiny");
  const check::ExploreOptions options = tiny_exhaustive_options();
  std::size_t explored = 0;
  for (auto _ : state) {
    const SeedDfsContext ctx = run_seed_style(scenario, options);
    explored = ctx.states_explored;
    benchmark::DoNotOptimize(ctx.runs_completed);
  }
  state.counters["states_explored"] = static_cast<double>(explored);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(explored * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckSeedStyleDfs)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Engine thread sweep.

void BM_CheckEngineDfs(benchmark::State& state) {
  const check::Scenario scenario = check::make_scenario("tiny");
  check::ExploreOptions options = tiny_exhaustive_options();
  options.threads = static_cast<int>(state.range(0));
  const double baseline = seed_style_baseline_seconds();
  std::size_t explored = 0;
  double total_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const check::ExploreResult result = check::explore_dfs(scenario, options);
    const auto stop = std::chrono::steady_clock::now();
    total_seconds += std::chrono::duration<double>(stop - start).count();
    if (!result.complete) state.SkipWithError("engine search hit a budget");
    explored = result.stats.states_explored;
    benchmark::DoNotOptimize(result.stats.runs_completed);
  }
  const double mean_seconds =
      total_seconds / static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  state.counters["states_explored"] = static_cast<double>(explored);
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(explored * state.iterations()), benchmark::Counter::kIsRate);
  state.counters["speedup_vs_seed_style"] =
      mean_seconds > 0.0 ? baseline / mean_seconds : 0.0;
}
BENCHMARK(BM_CheckEngineDfs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    // Workers run outside the main thread, so per-second counters must use
    // wall-clock, not main-thread CPU time.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fork microbenchmark: cost of one copy + apply at a representative state a
// few steps into the tiny scenario.

check::Model mid_search_state(bool record_transitions) {
  const check::Scenario scenario = check::make_scenario("tiny");
  check::ExploreOptions options = tiny_exhaustive_options();
  check::Model model = check::make_model(scenario, options);
  model.set_record_transitions(record_transitions);
  for (int i = 0; i < 6; ++i) {
    const std::vector<check::Choice> choices = model.choices();
    if (choices.empty()) break;
    model.apply(choices.front());
  }
  return model;
}

void BM_CheckModelFork(benchmark::State& state) {
  const bool record = state.range(0) != 0;
  const check::Model parent = mid_search_state(record);
  const std::vector<check::Choice> choices = parent.choices();
  if (choices.empty()) {
    state.SkipWithError("mid-search state is quiescent");
    return;
  }
  for (auto _ : state) {
    check::Model child = parent;
    child.apply(choices.front());
    benchmark::DoNotOptimize(child.fingerprint());
  }
  state.counters["forks_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckModelFork)
    ->Arg(1)  // transition recording on: the seed explorer's setting
    ->Arg(0)  // transition recording off: the engine's setting
    ->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// Reduction sweep: DPOR sleep sets and symmetry canonicalization, separately
// and combined. Tiny runs exhaustively; pair runs at a bounded depth because
// the unreduced pair search does not terminate in bench-budget time (the
// reduced searches do — see EXPERIMENTS.md for the unbounded numbers).

struct SweepConfig {
  const char* scenario;
  int max_depth;
};

constexpr SweepConfig kSweepConfigs[] = {
    {"tiny", 100},
    {"pair", 18},
};

check::ExploreOptions sweep_options(const SweepConfig& config, bool dpor, bool symmetry) {
  check::ExploreOptions options;
  options.max_depth = config.max_depth;
  options.max_states = 60'000'000;
  options.threads = 0;  // all cores; the counters are thread-count independent
  options.dpor = dpor;
  options.symmetry = symmetry;
  return options;
}

double& sweep_baseline_slot(std::size_t config_index) {
  static double cache[std::size(kSweepConfigs)] = {};
  return cache[config_index];
}

/// Unreduced edge count per scenario at the sweep bound, shared by every row
/// so all reduction_ratio entries in one report divide by the same number.
/// The off row stores its own measurement here; this only runs a search when
/// a --benchmark_filter skipped that row.
double sweep_baseline_edges(std::size_t config_index) {
  double& slot = sweep_baseline_slot(config_index);
  if (slot == 0.0) {
    const SweepConfig& config = kSweepConfigs[config_index];
    const check::ExploreResult result = check::explore_dfs(
        check::make_scenario(config.scenario), sweep_options(config, false, false));
    slot = static_cast<double>(result.stats.states_explored);
  }
  return slot;
}

void BM_CheckReductionSweep(benchmark::State& state) {
  const auto config_index = static_cast<std::size_t>(state.range(0));
  const SweepConfig& config = kSweepConfigs[config_index];
  const bool dpor = state.range(1) != 0;
  const bool symmetry = state.range(2) != 0;
  const check::Scenario scenario = check::make_scenario(config.scenario);
  const check::ExploreOptions options = sweep_options(config, dpor, symmetry);
  check::ExploreStats stats;
  double total_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const check::ExploreResult result = check::explore_dfs(scenario, options);
    const auto stop = std::chrono::steady_clock::now();
    total_seconds += std::chrono::duration<double>(stop - start).count();
    if (result.counterexample) state.SkipWithError("reduction sweep found a violation");
    stats = result.stats;
  }
  const double edges = static_cast<double>(stats.states_explored);
  if (!dpor && !symmetry && sweep_baseline_slot(config_index) == 0.0) {
    sweep_baseline_slot(config_index) = edges;
  }
  const double mean_seconds =
      total_seconds / static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  state.counters["edges"] = edges;
  state.counters["states_explored"] =
      static_cast<double>(stats.states_explored - stats.states_deduped);
  state.counters["sleep_pruned"] = static_cast<double>(stats.sleep_pruned);
  state.counters["runs_completed"] = static_cast<double>(stats.runs_completed);
  state.counters["reduction_ratio"] =
      edges > 0.0 ? sweep_baseline_edges(config_index) / edges : 0.0;
  state.counters["wall_seconds"] = mean_seconds;
}
BENCHMARK(BM_CheckReductionSweep)
    ->ArgNames({"scenario", "dpor", "symmetry"})
    // tiny: off, dpor, symmetry, both
    ->Args({0, 0, 0})
    ->Args({0, 1, 0})
    ->Args({0, 0, 1})
    ->Args({0, 1, 1})
    // pair: off, dpor, symmetry, both
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({1, 0, 1})
    ->Args({1, 1, 1})
    // The searches are deterministic; one iteration per row keeps the
    // unreduced pair run (the slowest row by far) from repeating.
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sa::benchio::run_and_report(argc, argv, "check");
}
