// Experiment X1 — the safety claim of §3.3 made measurable: adapt the live
// video stream from DES-64 to DES-128 with three different mechanisms and
// count what each one does to the stream.
//
//   safe protocol      — the paper's contribution: planned path, staged
//                        quiescence, per-step blocking of involved processes
//   naive hot-swap     — swap components the moment commands arrive
//   global quiescence  — Kramer/Magee-style: block every process, swap, resume
//
// Expected shape: naive corrupts/loses packets; both safe mechanisms deliver
// every packet intact, but global quiescence blocks uninvolved processes and
// produces a larger worst-case player gap than the staged safe protocol.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "util/log.hpp"

#include <cstdio>
#include <optional>

#include "baselines/naive.hpp"
#include "baselines/quiescence.hpp"
#include "core/video_testbed.hpp"
#include "sim/network.hpp"

namespace {

using namespace sa;

struct Outcome {
  const char* mechanism = "";
  std::uint64_t intact = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t undecodable = 0;
  std::uint64_t missing = 0;
  double handheld_gap_ms = 0;
  double laptop_gap_ms = 0;
  bool reached_target = false;
};

std::map<config::ProcessId, baselines::ProcessBinding> bindings_of(core::VideoTestbed& testbed) {
  const auto factory = core::paper_filter_factory();
  return {
      {core::kServerProcess, {&testbed.server().chain(), factory, 0}},
      {core::kHandheldProcess, {&testbed.handheld().chain(), factory, 1}},
      {core::kLaptopProcess, {&testbed.laptop().chain(), factory, 1}},
  };
}

Outcome finish(core::VideoTestbed& testbed, const char* mechanism) {
  testbed.run_for(sim::seconds(2));
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));
  Outcome outcome;
  outcome.mechanism = mechanism;
  outcome.intact = testbed.total_intact();
  outcome.corrupted = testbed.total_corrupted();
  outcome.undecodable = testbed.total_undecodable();
  outcome.missing = testbed.handheld().sink().missing(testbed.server().packets_emitted()) +
                    testbed.laptop().sink().missing(testbed.server().packets_emitted());
  outcome.handheld_gap_ms = testbed.handheld().player_stats().max_interarrival_gap / 1000.0;
  outcome.laptop_gap_ms = testbed.laptop().player_stats().max_interarrival_gap / 1000.0;
  outcome.reached_target = testbed.installed_configuration() == testbed.target();
  return outcome;
}

Outcome run_safe_protocol() {
  core::VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(500));
  std::optional<proto::AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const proto::AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));
  return finish(testbed, "safe adaptation (paper)");
}

// X1 under load: same safe protocol, but the stream runs at 4000 packets/s
// (250 fps x 16 packets/frame) instead of the default 100 packets/s, so the
// adaptation's blocked windows land while packets are genuinely in flight.
Outcome run_safe_protocol_loaded() {
  core::TestbedConfig config;
  config.stream.frames_per_second = 250;
  config.stream.packets_per_frame = 16;
  core::VideoTestbed testbed(config);
  testbed.start_stream();
  testbed.run_for(sim::ms(500));
  std::optional<proto::AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const proto::AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));
  return finish(testbed, "safe adaptation (loaded)");
}

Outcome run_naive() {
  core::VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(500));
  // Uncoordinated rollout: each process swaps 20 ms after the previous one.
  baselines::NaiveHotSwapAdapter naive(testbed.simulator(), testbed.system().registry(),
                                       bindings_of(testbed), sim::ms(20));
  naive.adapt(testbed.source(), testbed.target());
  return finish(testbed, "naive hot-swap");
}

Outcome run_global_quiescence() {
  core::VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(500));
  baselines::GlobalQuiescenceAdapter gq(testbed.simulator(), testbed.system().registry(),
                                        bindings_of(testbed), sim::ms(50));
  gq.adapt(testbed.source(), testbed.target(), nullptr);
  return finish(testbed, "global quiescence");
}

void print_comparison() {
  const Outcome outcomes[] = {run_safe_protocol(), run_safe_protocol_loaded(), run_naive(),
                              run_global_quiescence()};
  std::printf("=== Safety under live traffic: safe protocol vs baselines ===\n");
  std::printf("%-26s %-8s %-10s %-12s %-8s %-16s %-14s %s\n", "mechanism", "intact",
              "corrupted", "undecodable", "missing", "handheld gap(ms)", "laptop gap(ms)",
              "target?");
  for (const Outcome& o : outcomes) {
    std::printf("%-26s %-8llu %-10llu %-12llu %-8llu %-16.2f %-14.2f %s\n", o.mechanism,
                static_cast<unsigned long long>(o.intact),
                static_cast<unsigned long long>(o.corrupted),
                static_cast<unsigned long long>(o.undecodable),
                static_cast<unsigned long long>(o.missing), o.handheld_gap_ms, o.laptop_gap_ms,
                o.reached_target ? "yes" : "no");
  }
  const bool pass = outcomes[0].corrupted + outcomes[0].undecodable == 0 &&
                    outcomes[1].corrupted + outcomes[1].undecodable == 0 &&
                    outcomes[2].corrupted + outcomes[2].undecodable > 0 &&
                    outcomes[3].corrupted + outcomes[3].undecodable == 0;
  std::printf("expected: only the naive baseline disrupts the stream, idle or loaded -> %s\n\n",
              pass ? "PASS" : "FAIL");
}

void BM_SafeProtocolRun(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_safe_protocol());
}
BENCHMARK(BM_SafeProtocolRun)->Unit(benchmark::kMillisecond);

void BM_SafeProtocolLoadedRun(benchmark::State& state) {
  Outcome outcome;
  for (auto _ : state) {
    outcome = run_safe_protocol_loaded();
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["intact"] = static_cast<double>(outcome.intact);
  state.counters["corrupted"] = static_cast<double>(outcome.corrupted);
  state.counters["undecodable"] = static_cast<double>(outcome.undecodable);
  state.counters["missing"] = static_cast<double>(outcome.missing);
  state.counters["handheld_gap_ms"] = outcome.handheld_gap_ms;
  state.counters["laptop_gap_ms"] = outcome.laptop_gap_ms;
  state.counters["reached_target"] = outcome.reached_target ? 1.0 : 0.0;
}
BENCHMARK(BM_SafeProtocolLoadedRun)->Unit(benchmark::kMillisecond);

void BM_NaiveRun(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_naive());
}
BENCHMARK(BM_NaiveRun)->Unit(benchmark::kMillisecond);

void BM_GlobalQuiescenceRun(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_global_quiescence());
}
BENCHMARK(BM_GlobalQuiescenceRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sa::util::set_log_level(sa::util::LogLevel::Off);
  print_comparison();
  return sa::benchio::run_and_report(argc, argv, "safety_vs_baselines");
}
