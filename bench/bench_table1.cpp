// Experiment T1 — reproduces Table 1: the safe configuration set of the
// video streaming case study, derived from the paper's invariants.
//
// Output: the eight safe configurations (bit vector + component list) and a
// PASS/FAIL line against the published table, followed by google-benchmark
// timings of the three enumeration strategies.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "util/log.hpp"

#include <cstdio>
#include <set>
#include <string>

#include "config/enumerate.hpp"
#include "core/paper_scenario.hpp"

namespace {

using namespace sa;

void print_table1() {
  const core::PaperScenario scenario = core::make_paper_scenario();
  const auto safe = config::enumerate_safe_exhaustive(*scenario.invariants);

  std::printf("=== Table 1: safe configuration set ===\n");
  std::printf("%-10s %s\n", "bit vector", "configuration");
  for (const auto& config : safe) {
    std::printf("%-10s %s\n", config.to_bit_string(scenario.registry->size()).c_str(),
                config.describe(*scenario.registry).c_str());
  }

  const std::set<std::string> expected{"0100101", "1100101", "1101001", "1101010",
                                       "1110010", "0101001", "1001010", "1010010"};
  std::set<std::string> actual;
  for (const auto& config : safe) actual.insert(config.to_bit_string(7));
  std::printf("paper reports 8 safe configurations; reproduced %zu -> %s\n\n", safe.size(),
              actual == expected ? "PASS (exact match)" : "FAIL");
}

void BM_EnumerateExhaustive(benchmark::State& state) {
  const core::PaperScenario scenario = core::make_paper_scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::enumerate_safe_exhaustive(*scenario.invariants));
  }
}
BENCHMARK(BM_EnumerateExhaustive);

void BM_EnumeratePruned(benchmark::State& state) {
  const core::PaperScenario scenario = core::make_paper_scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::enumerate_safe_pruned(*scenario.invariants));
  }
}
BENCHMARK(BM_EnumeratePruned);

void BM_EnumerateDecomposed(benchmark::State& state) {
  const core::PaperScenario scenario = core::make_paper_scenario();
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::enumerate_safe_decomposed(*scenario.invariants));
  }
}
BENCHMARK(BM_EnumerateDecomposed);

void BM_InvariantCheckSingleConfiguration(benchmark::State& state) {
  const core::PaperScenario scenario = core::make_paper_scenario();
  const auto config = scenario.source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario.invariants->satisfied(config));
  }
}
BENCHMARK(BM_InvariantCheckSingleConfiguration);

}  // namespace

int main(int argc, char** argv) {
  sa::util::set_log_level(sa::util::LogLevel::Off);
  print_table1();
  return sa::benchio::run_and_report(argc, argv, "table1");
}
