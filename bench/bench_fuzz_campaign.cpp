// Throughput of the fault-injection campaign (src/inject/campaign.hpp): how
// many full-stack runs per second the harness sustains, and how the worker
// pool scales with threads. Each run builds a fresh SimRuntime + fault
// decorators + SafeAdaptationSystem, drives the paper scenario to termination
// under a generated fault plan, and evaluates every oracle — so runs_per_sec
// here is the budget CI has to spend when sizing nightly seed ranges.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdint>

#include "inject/campaign.hpp"

namespace {

using namespace sa;

// One complete campaign run: plan generation, stack construction, fault
// scheduling, protocol execution, oracle evaluation. No shrinking (clean
// stack; nothing fails).
void BM_FuzzSingleRun(benchmark::State& state) {
  inject::CampaignOptions options;
  options.scenario = "paper";
  std::uint64_t seed = 0;
  std::uint64_t violations = 0;
  for (auto _ : state) {
    const inject::FaultPlan plan = inject::plan_for_seed(options.scenario, seed);
    const inject::RunResult result = inject::run_one(options.scenario, seed, plan, options);
    violations += result.violations.size();
    ++seed;
  }
  if (violations != 0) state.SkipWithError("oracle violation on a correct stack");
  state.counters["runs_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuzzSingleRun)->Unit(benchmark::kMillisecond);

// Campaign fan-out across the worker pool; range(0) is the thread count.
// Every thread count computes the identical result set — the interesting
// number is how runs_per_sec scales.
void BM_FuzzCampaign(benchmark::State& state) {
  inject::CampaignOptions options;
  options.scenario = "paper";
  options.seed_begin = 0;
  options.seed_end = 64;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const inject::CampaignSummary summary = inject::run_campaign(options);
    if (!summary.failures.empty()) {
      state.SkipWithError("oracle violation on a correct stack");
      break;
    }
    runs += summary.runs;
  }
  state.counters["runs_per_sec"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuzzCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    // Workers run outside the main thread, so per-second counters must use
    // wall-clock, not main-thread CPU time.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The video scenario carries the full Fig. 3 testbed (stream traffic, codec
// filters, per-packet integrity checks) — the heavyweight end of the scale.
void BM_FuzzVideoRun(benchmark::State& state) {
  inject::CampaignOptions options;
  options.scenario = "video";
  std::uint64_t seed = 0;
  std::uint64_t violations = 0;
  for (auto _ : state) {
    const inject::FaultPlan plan = inject::plan_for_seed(options.scenario, seed);
    violations += inject::run_one(options.scenario, seed, plan, options).violations.size();
    ++seed;
  }
  if (violations != 0) state.SkipWithError("oracle violation on a correct stack");
  state.counters["runs_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuzzVideoRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sa::benchio::run_and_report(argc, argv, "fuzz_campaign");
}
