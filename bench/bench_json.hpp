// Shared machine-readable output for the benchmark executables.
//
// Every bench calls run_and_report(argc, argv, "<name>") instead of the
// Initialize + RunSpecifiedBenchmarks pair. Benchmarks still print the usual
// console table, and every run is additionally written to BENCH_<name>.json
// in the working directory: one entry per benchmark with its full name
// (including parameter suffixes like "/10"), iteration count, real/cpu
// wall-clock, and any user counters the bench attached (derived metrics such
// as retries per run). CI runs the benches with a small repetition budget and
// uploads these files as artifacts so regressions are diffable across
// commits.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace sa::benchio {

namespace detail {

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Prints the normal console table and keeps a copy of every run for the
/// JSON file written after the run completes.
class TeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    collected_.insert(collected_.end(), runs.begin(), runs.end());
  }
  const std::vector<Run>& collected() const { return collected_; }

 private:
  std::vector<Run> collected_;
};

}  // namespace detail

inline int run_and_report(int argc, char** argv, const std::string& name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  detail::TeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"name\": \"" << detail::json_escape(name) << "\",\n  \"benchmarks\": [";
  bool first = true;
  for (const auto& run : reporter.collected()) {
    out << (first ? "" : ",") << "\n    {\"name\": \""
        << detail::json_escape(run.benchmark_name()) << "\""
        << ", \"iterations\": " << run.iterations
        << ", \"real_time\": " << run.GetAdjustedRealTime()
        << ", \"cpu_time\": " << run.GetAdjustedCPUTime()
        << ", \"time_unit\": \"" << benchmark::GetTimeUnitString(run.time_unit) << "\"";
    if (!run.counters.empty()) {
      out << ", \"counters\": {";
      bool first_counter = true;
      for (const auto& [counter_name, counter] : run.counters) {
        out << (first_counter ? "" : ", ") << "\"" << detail::json_escape(counter_name)
            << "\": " << static_cast<double>(counter);
        first_counter = false;
      }
      out << "}";
    }
    out << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "benchmark report: %s\n", path.c_str());
  return 0;
}

}  // namespace sa::benchio
