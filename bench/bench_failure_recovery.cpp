// Experiment X2 — §4.4 failure handling: loss-of-message and fail-to-reset
// failures injected at increasing severity, reporting how the manager's
// strategy chain (retransmit -> rollback -> retry -> alternate path -> return
// to source -> user) resolves each run and at what cost.
//
// Expected shape: retransmissions absorb moderate control-channel loss with
// only elapsed-time cost; a transiently stuck process costs one rollback and
// a retry; a permanently stuck process ends in a non-Success outcome with the
// system parked at a safe configuration.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "util/log.hpp"

#include <cstdio>
#include <optional>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "sim/network.hpp"

namespace {

using namespace sa;

struct NullProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

struct Harness {
  core::SafeAdaptationSystem system;
  NullProcess server, handheld, laptop;

  explicit Harness(core::SystemConfig config = {}) : system(config) {
    core::configure_paper_system(system);
    system.attach_process(core::kServerProcess, server, 0);
    system.attach_process(core::kHandheldProcess, handheld, 1);
    system.attach_process(core::kLaptopProcess, laptop, 1);
    system.finalize();
    system.set_current_configuration(core::paper_source(system.registry()));
  }
};

void print_loss_sweep() {
  std::printf("=== Loss-of-message failures: control-channel loss sweep ===\n");
  std::printf("%-10s %-10s %-12s %-14s %-16s %s\n", "loss %", "runs", "successes",
              "retries/run", "rollbacks/run", "mean duration (ms)");
  for (const int loss_percent : {0, 5, 10, 20, 30, 40}) {
    const int runs = 20;
    int successes = 0;
    std::uint64_t retries = 0, rollbacks = 0;
    double total_ms = 0;
    for (int run = 0; run < runs; ++run) {
      core::SystemConfig config;
      config.seed = 7000 + static_cast<std::uint64_t>(loss_percent) * 100 + run;
      config.control_channel.loss_probability = loss_percent / 100.0;
      config.manager.message_retries = 5;
      Harness harness(config);
      const auto result =
          harness.system.adapt_and_wait(core::paper_target(harness.system.registry()));
      successes += result.outcome == proto::AdaptationOutcome::Success;
      retries += result.message_retries;
      rollbacks += result.step_failures;
      total_ms += (result.finished - result.started) / 1000.0;
    }
    std::printf("%-10d %-10d %-12d %-14.2f %-16.2f %.2f\n", loss_percent, runs, successes,
                static_cast<double>(retries) / runs, static_cast<double>(rollbacks) / runs,
                total_ms / runs);
  }
  std::printf("expected: success holds through moderate loss at the price of "
              "retransmissions and elapsed time.\n\n");
}

void print_fail_to_reset_outcomes() {
  std::printf("=== Fail-to-reset failures ===\n");

  {  // transient: stuck until after the first rollback, then healthy
    Harness harness;
    harness.system.agent(core::kHandheldProcess).set_fail_to_reset(true);
    std::optional<proto::AdaptationResult> result;
    harness.system.request_adaptation(
        core::paper_target(harness.system.registry()),
        [&result](const proto::AdaptationResult& r) { result = r; });
    std::size_t events = 0;
    while (!result && events < 1'000'000 && harness.system.simulator().step()) {
      ++events;
      if (!harness.system.manager().step_log().empty() &&
          harness.system.manager().step_log().front().rolled_back) {
        harness.system.agent(core::kHandheldProcess).set_fail_to_reset(false);
      }
    }
    if (result) {
      std::printf("transient stuck process: outcome=%s, step failures=%zu, duration=%.1f ms\n",
                  std::string(proto::to_string(result->outcome)).c_str(),
                  result->step_failures, (result->finished - result->started) / 1000.0);
    }
  }

  {  // permanent: never reaches a safe state
    Harness harness;
    harness.system.agent(core::kHandheldProcess).set_fail_to_reset(true);
    const auto result =
        harness.system.adapt_and_wait(core::paper_target(harness.system.registry()), 5'000'000);
    const bool parked_safe = harness.system.invariants().satisfied(result.final_config);
    std::printf("permanent stuck process: outcome=%s, plans tried=%zu, parked at %s (%s)\n",
                std::string(proto::to_string(result.outcome)).c_str(), result.plans_tried,
                result.final_config.describe(harness.system.registry()).c_str(),
                parked_safe ? "safe" : "UNSAFE");
    std::printf("expected: non-success outcome, parked configuration safe -> %s\n",
                result.outcome != proto::AdaptationOutcome::Success && parked_safe ? "PASS"
                                                                                   : "FAIL");
  }

  {  // unreachable agent from the start
    Harness harness;
    harness.system.network().partition_pair(
        harness.system.manager_node(), harness.system.agent_node(core::kHandheldProcess), true);
    const auto result =
        harness.system.adapt_and_wait(core::paper_target(harness.system.registry()), 5'000'000);
    std::printf("partitioned agent: outcome=%s\n\n",
                std::string(proto::to_string(result.outcome)).c_str());
  }
}

void BM_AdaptationWithTransientFailure(benchmark::State& state) {
  for (auto _ : state) {
    Harness harness;
    harness.system.agent(core::kHandheldProcess).set_fail_to_reset(true);
    std::optional<proto::AdaptationResult> result;
    harness.system.request_adaptation(
        core::paper_target(harness.system.registry()),
        [&result](const proto::AdaptationResult& r) { result = r; });
    std::size_t events = 0;
    while (!result && events < 1'000'000 && harness.system.simulator().step()) {
      ++events;
      if (!harness.system.manager().step_log().empty() &&
          harness.system.manager().step_log().front().rolled_back) {
        harness.system.agent(core::kHandheldProcess).set_fail_to_reset(false);
      }
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AdaptationWithTransientFailure)->Unit(benchmark::kMillisecond);

void BM_ExhaustedStrategyChain(benchmark::State& state) {
  for (auto _ : state) {
    Harness harness;
    harness.system.agent(core::kHandheldProcess).set_fail_to_reset(true);
    benchmark::DoNotOptimize(
        harness.system.adapt_and_wait(core::paper_target(harness.system.registry()), 5'000'000));
  }
}
BENCHMARK(BM_ExhaustedStrategyChain)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sa::util::set_log_level(sa::util::LogLevel::Off);
  print_loss_sweep();
  print_fail_to_reset_outcomes();
  return sa::benchio::run_and_report(argc, argv, "failure_recovery");
}
