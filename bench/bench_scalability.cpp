// Experiment X3 — §7 scalability: safe-configuration enumeration and SAG
// construction as the component count grows, with and without the paper's
// proposed collaborative-set decomposition.
//
// Workload: k independent "collaborative sets", each a 4-component cluster
// shaped like the case study (one(A,B) encoder pair, one(C,D) decoder pair,
// A -> C, B -> D) — invariants never straddle clusters, which is exactly the
// structure §7 proposes to exploit.
//
// Expected shape: exhaustive enumeration is exponential in the total
// component count (2^n); pruned DFS helps by a constant-ish factor; the
// decomposed strategy is exponential only in the largest cluster and thus
// near-linear in the number of clusters.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "util/log.hpp"

#include <cstdio>
#include <memory>

#include "actions/lazy_planner.hpp"
#include "actions/sag.hpp"
#include "config/enumerate.hpp"
#include "core/composite.hpp"
#include "core/system.hpp"

namespace {

using namespace sa;

struct Workload {
  config::ComponentRegistry registry;
  std::unique_ptr<config::InvariantSet> invariants;

  explicit Workload(std::size_t clusters) {
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::string suffix = std::to_string(c);
      registry.add("A" + suffix, static_cast<config::ProcessId>(c));
      registry.add("B" + suffix, static_cast<config::ProcessId>(c));
      registry.add("C" + suffix, static_cast<config::ProcessId>(c));
      registry.add("D" + suffix, static_cast<config::ProcessId>(c));
    }
    invariants = std::make_unique<config::InvariantSet>(registry);
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::string s = std::to_string(c);
      invariants->add("enc" + s, "one(A" + s + ", B" + s + ")");
      invariants->add("dec" + s, "one(C" + s + ", D" + s + ")");
      invariants->add("depA" + s, "A" + s + " -> C" + s);
      invariants->add("depB" + s, "B" + s + " -> D" + s);
    }
  }
};

void print_scaling_table() {
  std::printf("=== Scalability of safe-configuration enumeration (Section 7) ===\n");
  std::printf("%-12s %-12s %-12s %-18s %-18s\n", "components", "safe cfgs", "collab sets",
              "exhaustive checks", "decomposed checks");
  for (std::size_t clusters = 1; clusters <= 5; ++clusters) {
    const Workload workload(clusters);
    const auto safe = config::enumerate_safe_exhaustive(*workload.invariants);
    const auto sets = config::collaborative_sets(*workload.invariants);
    const std::size_t n = workload.registry.size();
    // Work proxies: exhaustive evaluates all 2^n configurations; decomposed
    // evaluates 2^|set| per set.
    const double exhaustive_checks = static_cast<double>(1ULL << n);
    double decomposed_checks = 0;
    for (const auto& members : sets) {
      decomposed_checks += static_cast<double>(1ULL << members.size());
    }
    std::printf("%-12zu %-12zu %-12zu %-18.0f %-18.0f\n", n, safe.size(), sets.size(),
                exhaustive_checks, decomposed_checks);
  }
  std::printf("expected: decomposed work grows linearly with cluster count, "
              "exhaustive work exponentially.\n\n");
}

void BM_EnumerateExhaustive(benchmark::State& state) {
  const Workload workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::enumerate_safe_exhaustive(*workload.invariants));
  }
  state.counters["components"] = static_cast<double>(workload.registry.size());
}
BENCHMARK(BM_EnumerateExhaustive)->DenseRange(1, 4);

void BM_EnumeratePruned(benchmark::State& state) {
  const Workload workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::enumerate_safe_pruned(*workload.invariants));
  }
  state.counters["components"] = static_cast<double>(workload.registry.size());
}
BENCHMARK(BM_EnumeratePruned)->DenseRange(1, 5);

void BM_EnumerateDecomposed(benchmark::State& state) {
  const Workload workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::enumerate_safe_decomposed(*workload.invariants));
  }
  state.counters["components"] = static_cast<double>(workload.registry.size());
}
BENCHMARK(BM_EnumerateDecomposed)->DenseRange(1, 5);

void BM_CountDecomposedOnly(benchmark::State& state) {
  // Count without materializing the cartesian product — the planner only
  // needs the safe set reachable around source/target, so counting shows the
  // pure enumeration cost at scale (up to 10 clusters = 40 components).
  const Workload workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::count_safe_decomposed(*workload.invariants));
  }
  state.counters["components"] = static_cast<double>(workload.registry.size());
}
BENCHMARK(BM_CountDecomposedOnly)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_SagConstructionScaling(benchmark::State& state) {
  // SAG over the safe set of k clusters with one swap action per cluster
  // (A->B together with C->D), labelled with unit cost.
  const std::size_t clusters = static_cast<std::size_t>(state.range(0));
  const Workload workload(clusters);
  actions::ActionTable table(workload.registry);
  for (std::size_t c = 0; c < clusters; ++c) {
    const std::string s = std::to_string(c);
    table.add("swap" + s, {"A" + s, "C" + s}, {"B" + s, "D" + s}, 10);
    table.add("back" + s, {"B" + s, "D" + s}, {"A" + s, "C" + s}, 10);
  }
  const auto safe = config::enumerate_safe_decomposed(*workload.invariants);
  for (auto _ : state) {
    actions::SafeAdaptationGraph sag(table, safe);
    benchmark::DoNotOptimize(sag.edge_count());
  }
  state.counters["nodes"] = static_cast<double>(safe.size());
}
BENCHMARK(BM_SagConstructionScaling)->DenseRange(1, 6);

namespace planning {

/// Action table with one forward/backward swap per cluster, reused by the
/// eager-vs-lazy planning comparison.
actions::ActionTable swap_table(const Workload& workload, std::size_t clusters) {
  actions::ActionTable table(workload.registry);
  for (std::size_t c = 0; c < clusters; ++c) {
    const std::string s = std::to_string(c);
    table.add("swap" + s, {"A" + s, "C" + s}, {"B" + s, "D" + s}, 10);
    table.add("back" + s, {"B" + s, "D" + s}, {"A" + s, "C" + s}, 10);
  }
  return table;
}

config::Configuration all_a_side(const Workload& workload, std::size_t clusters) {
  config::Configuration config;
  for (std::size_t c = 0; c < clusters; ++c) {
    const std::string s = std::to_string(c);
    config = config.with(workload.registry.require("A" + s))
                 .with(workload.registry.require("C" + s));
  }
  return config;
}

/// Target: flip ONE cluster only — the localized adaptation §7 motivates.
config::Configuration one_cluster_flipped(const Workload& workload,
                                          const config::Configuration& source) {
  return source.without(workload.registry.require("A0"))
      .without(workload.registry.require("C0"))
      .with(workload.registry.require("B0"))
      .with(workload.registry.require("D0"));
}

}  // namespace planning

void BM_EagerPlanFullSag(benchmark::State& state) {
  // Full §4.2 pipeline: enumerate, build the whole SAG, run Dijkstra.
  const std::size_t clusters = static_cast<std::size_t>(state.range(0));
  const Workload workload(clusters);
  const auto table = planning::swap_table(workload, clusters);
  const auto source = planning::all_a_side(workload, clusters);
  const auto target = planning::one_cluster_flipped(workload, source);
  for (auto _ : state) {
    const auto safe = config::enumerate_safe_pruned(*workload.invariants);
    const actions::SafeAdaptationGraph sag(table, safe);
    const actions::PathPlanner planner(sag);
    benchmark::DoNotOptimize(planner.minimum_path(source, target));
  }
  state.counters["safe_cfgs"] = static_cast<double>(1ULL << clusters);
}
BENCHMARK(BM_EagerPlanFullSag)->DenseRange(1, 8);

void BM_LazyPlanPartialExploration(benchmark::State& state) {
  // §7's proposal: A* over configurations, generating only the visited region.
  const std::size_t clusters = static_cast<std::size_t>(state.range(0));
  const Workload workload(clusters);
  const auto table = planning::swap_table(workload, clusters);
  const auto source = planning::all_a_side(workload, clusters);
  const auto target = planning::one_cluster_flipped(workload, source);
  const actions::LazyPathPlanner planner(table, *workload.invariants);
  std::size_t expanded = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.minimum_path(source, target));
    expanded = planner.last_stats().expanded;
  }
  state.counters["expanded"] = static_cast<double>(expanded);
}
BENCHMARK(BM_LazyPlanPartialExploration)->DenseRange(1, 8)->Arg(12);

}  // namespace

namespace {

struct NullProcess : sa::proto::AdaptableProcess {
  bool prepare(const sa::proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const sa::proto::LocalCommand&) override { return true; }
  bool undo(const sa::proto::LocalCommand&) override { return true; }
  void resume() override {}
};

/// Realization wall-clock (virtual time) for adapting k independent
/// 2-component clusters at once: a single manager executes 2k plan steps in
/// sequence; the §7 composite system runs one manager per cluster, and since
/// each cluster lives on its own process, all k single-step adaptations
/// overlap on the timeline.
void print_composite_realization() {
  std::printf("=== Collaborative-set sharding: realization time (Section 7) ===\n");
  std::printf("%-10s %-26s %-26s\n", "clusters", "single manager (ms)", "composite (ms)");
  // The composite column runs to 32 clusters — the full 64-bit Configuration
  // width (beyond that the fleet shards into regions; see bench_fleet). The
  // single manager realizes 2k steps sequentially, so it is capped at 8.
  for (std::size_t k = 1; k <= 32; k *= 2) {
    const auto build_components = [k](auto& system) {
      for (std::size_t c = 0; c < k; ++c) {
        const std::string s = std::to_string(c);
        system.registry().add("X" + s, static_cast<config::ProcessId>(c));
        system.registry().add("Y" + s, static_cast<config::ProcessId>(c));
      }
      for (std::size_t c = 0; c < k; ++c) {
        const std::string s = std::to_string(c);
        system.add_invariant("one" + s, "one(X" + s + ", Y" + s + ")");
        system.add_action("swap" + s, {"X" + s}, {"Y" + s}, 10);
      }
    };
    const auto endpoints = [k](const config::ComponentRegistry& registry) {
      config::Configuration source, target;
      for (std::size_t c = 0; c < k; ++c) {
        source = source.with(registry.require("X" + std::to_string(c)));
        target = target.with(registry.require("Y" + std::to_string(c)));
      }
      return std::make_pair(source, target);
    };

    double single_ms = 0;
    if (k <= 8) {
      core::SafeAdaptationSystem system;
      build_components(system);
      std::vector<std::unique_ptr<NullProcess>> processes;
      for (std::size_t c = 0; c < k; ++c) {
        processes.push_back(std::make_unique<NullProcess>());
        system.attach_process(static_cast<config::ProcessId>(c), *processes.back(), 0);
      }
      system.finalize();
      const auto [source, target] = endpoints(system.registry());
      system.set_current_configuration(source);
      const auto result = system.adapt_and_wait(target);
      single_ms = (result.finished - result.started) / 1000.0;
    }

    double composite_ms = 0;
    {
      core::CompositeAdaptationSystem system;
      build_components(system);
      std::vector<std::unique_ptr<NullProcess>> processes;
      for (std::size_t c = 0; c < k; ++c) {
        processes.push_back(std::make_unique<NullProcess>());
        system.attach_process(static_cast<config::ProcessId>(c), *processes.back(), 0);
      }
      system.finalize();
      const auto [source, target] = endpoints(system.registry());
      system.set_current_configuration(source);
      const auto result = system.adapt_and_wait(target);
      composite_ms = (result.finished - result.started) / 1000.0;
    }
    if (k <= 8) {
      std::printf("%-10zu %-26.2f %-26.2f\n", k, single_ms, composite_ms);
    } else {
      std::printf("%-10zu %-26s %-26.2f\n", k, "-", composite_ms);
    }
  }
  std::printf("expected: the single manager's realization grows linearly with the cluster "
              "count; the composite stays flat (disjoint lanes adapt concurrently under "
              "the coordinator tree).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  sa::util::set_log_level(sa::util::LogLevel::Off);
  print_scaling_table();
  print_composite_realization();
  return sa::benchio::run_and_report(argc, argv, "scalability");
}
