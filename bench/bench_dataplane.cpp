// Data-plane throughput: seed per-packet path vs the zero-copy batched plane.
//
// Rows:
//   * SeedPerPacketSingleStream — the repository's original data plane,
//     faithfully: one owning Packet per payload (heap vector), per-packet
//     filter invocation, and the bit-by-bit reference DES. This is the
//     baseline the batched plane is measured against.
//   * BatchedSingleStream — arena packets + span filters + table-driven DES
//     through FilterChain::process_batch, single thread. The `speedup_vs_*`
//     gate in CI compares this row's pps against the seed row's.
//   * PumpMultiStream/N — N concurrent streams, each with a producer thread
//     and a pump thread (lock-free SPSC hand-off); reports aggregate
//     packets/sec and p99 batch delay.
//   * LoadedAdaptation — ≥1M packets across 2 streams while lane 0 is
//     hardened DES-64 → DES-128 through the §5.2 per-chain quiescence
//     handshake mid-run; the CI gate requires zero corrupted packets.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "components/arena.hpp"
#include "components/filter_chain.hpp"
#include "crypto/codec_filters.hpp"
#include "crypto/des.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "video/pump.hpp"

namespace {

using namespace sa;

constexpr std::size_t kPayloadBytes = 256;

// Measured by BM_SeedPerPacketSingleStream; BM_BatchedSingleStream divides by
// it so the speedup gate is paired within a single process run.
double g_seed_pps = 0.0;

components::Payload random_payload(util::Rng& rng, std::size_t n) {
  components::Payload payload(n);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  return payload;
}

// --- seed path: per-packet vectors + reference DES ----------------------------

crypto::Bytes encrypt_reference(const crypto::Bytes& plaintext,
                                const crypto::DesKeySchedule& schedule) {
  crypto::Bytes padded = plaintext;
  const std::size_t pad = 8 - plaintext.size() % 8;
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));
  crypto::Bytes out(padded.size());
  for (std::size_t offset = 0; offset < padded.size(); offset += 8) {
    std::uint64_t block = 0;
    for (std::size_t i = 0; i < 8; ++i) block = (block << 8) | padded[offset + i];
    block = crypto::des_encrypt_block_reference(block, schedule);
    for (std::size_t i = 0; i < 8; ++i) {
      out[offset + i] = static_cast<std::uint8_t>(block >> (56 - 8 * i));
    }
  }
  return out;
}

crypto::Bytes decrypt_reference(const crypto::Bytes& ciphertext,
                                const crypto::DesKeySchedule& schedule) {
  crypto::Bytes out(ciphertext.size());
  for (std::size_t offset = 0; offset < ciphertext.size(); offset += 8) {
    std::uint64_t block = 0;
    for (std::size_t i = 0; i < 8; ++i) block = (block << 8) | ciphertext[offset + i];
    block = crypto::des_decrypt_block_reference(block, schedule);
    for (std::size_t i = 0; i < 8; ++i) {
      out[offset + i] = static_cast<std::uint8_t>(block >> (56 - 8 * i));
    }
  }
  const std::uint8_t pad = out.empty() ? 0 : out.back();
  if (pad >= 1 && pad <= 8 && pad <= out.size()) out.resize(out.size() - pad);
  return out;
}

void BM_SeedPerPacketSingleStream(benchmark::State& state) {
  const auto schedule = crypto::des_key_schedule(crypto::kDefaultKey64);
  util::Rng rng(11);
  const components::Payload payload = random_payload(rng, kPayloadBytes);
  std::uint64_t packets = 0, intact = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    // One packet end to end, exactly as the seed plane worked: owning Packet,
    // payload copied at the encoder and again at the decoder.
    components::Packet packet = components::Packet::make(1, packets, payload);
    packet.payload = encrypt_reference(packet.payload, schedule);
    packet.encoding_stack.push_back(crypto::kTagDes64);
    packet.payload = decrypt_reference(packet.payload, schedule);
    packet.encoding_stack.pop_back();
    intact += packet.intact() ? 1 : 0;
    ++packets;
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  if (intact != packets) state.SkipWithError("seed path corrupted packets");
  if (elapsed.count() > 0) g_seed_pps = static_cast<double>(packets) / elapsed.count();
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SeedPerPacketSingleStream);

void BM_BatchedSingleStream(benchmark::State& state) {
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  components::FilterChain encode(simulator, "encode");
  components::FilterChain decode(simulator, "decode");
  encode.append_filter(crypto::make_encoder_e1());
  decode.append_filter(crypto::make_decoder("D1", true, false));

  util::Rng rng(12);
  const components::Payload payload = random_payload(rng, kPayloadBytes);
  components::PacketArena arena(256 * 1024);
  std::vector<components::PacketRef> batch, mid, out;
  std::uint64_t packets = 0, intact = 0, sequence = 0;

  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    batch.clear();
    for (std::size_t i = 0; i < batch_size; ++i) {
      components::PacketRef ref = arena.make_blank(1, sequence++, payload.size());
      std::copy(payload.begin(), payload.end(), ref.data());
      ref.set_plaintext_checksum(components::payload_checksum(ref.data(), ref.size()));
      batch.push_back(ref);
    }
    mid.clear();
    components::VectorSink mid_sink(arena, mid);
    encode.process_batch(batch, mid_sink);
    out.clear();
    components::VectorSink out_sink(arena, out);
    decode.process_batch(mid, out_sink);
    for (const components::PacketRef& ref : out) intact += ref.intact() ? 1 : 0;
    packets += out.size();
    arena.reset();
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  if (intact != packets) state.SkipWithError("batched path corrupted packets");
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(packets), benchmark::Counter::kIsRate);
  state.counters["arena_chunk_allocs"] =
      static_cast<double>(arena.stats().chunk_allocs);
  if (g_seed_pps > 0 && elapsed.count() > 0) {
    state.counters["speedup_vs_seed"] =
        (static_cast<double>(packets) / elapsed.count()) / g_seed_pps;
  }
}
BENCHMARK(BM_BatchedSingleStream)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_PumpMultiStream(benchmark::State& state) {
  const std::size_t streams = static_cast<std::size_t>(state.range(0));
  std::uint64_t delivered = 0, intact = 0;
  double p99 = 0, pps = 0;
  for (auto _ : state) {
    video::PumpConfig config;
    config.streams = streams;
    config.batch_size = 64;
    config.payload_bytes = kPayloadBytes;
    config.packets_per_stream = 200'000 / streams;
    video::DataPlanePump pump(config);
    pump.start();
    pump.run_to_completion();
    const video::LaneReport total = pump.total_report();
    delivered += total.delivered;
    intact += total.intact;
    p99 = std::max(p99, total.p99_delay_us);
    pps = std::max(pps, total.pps);
  }
  if (intact != delivered) state.SkipWithError("pump corrupted packets");
  state.counters["pps"] = pps;  // aggregate across lanes, best run
  state.counters["p99_delay_us"] = p99;
  state.counters["packets"] = static_cast<double>(delivered);
}
BENCHMARK(BM_PumpMultiStream)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_LoadedAdaptation(benchmark::State& state) {
  std::uint64_t delivered = 0, intact = 0, corrupted = 0, undecodable = 0;
  std::uint64_t blocked_windows = 0;
  double blocked_us = 0, p99 = 0, pps = 0;
  for (auto _ : state) {
    video::PumpConfig config;
    config.streams = 2;
    config.batch_size = 64;
    config.payload_bytes = kPayloadBytes;
    config.packets_per_stream = 500'000;  // 1M packets total per iteration
    video::DataPlanePump pump(config);
    pump.start();
    // Harden lane 0 mid-stream: widen the decoder, then switch the encoder —
    // the paper's safe order — through the §5.2 per-chain handshake.
    pump.adapt_lane(0, [](components::FilterChain& encode, components::FilterChain& decode) {
      decode.replace_filter("D1", crypto::make_decoder("D2", true, true));
      encode.replace_filter("E1", crypto::make_encoder_e2());
    });
    pump.run_to_completion();
    const video::LaneReport total = pump.total_report();
    delivered += total.delivered;
    intact += total.intact;
    corrupted += total.corrupted;
    undecodable += total.undecodable;
    blocked_windows += total.blocked_windows;
    blocked_us += total.blocked_us;
    p99 = std::max(p99, total.p99_delay_us);
    pps = std::max(pps, total.pps);
  }
  state.counters["packets"] = static_cast<double>(delivered);
  state.counters["intact"] = static_cast<double>(intact);
  state.counters["corrupted"] = static_cast<double>(corrupted);
  state.counters["undecodable"] = static_cast<double>(undecodable);
  state.counters["blocked_windows"] = static_cast<double>(blocked_windows);
  state.counters["blocked_us"] = blocked_us;
  state.counters["p99_delay_us"] = p99;
  state.counters["pps"] = pps;
}
BENCHMARK(BM_LoadedAdaptation)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sa::benchio::run_and_report(argc, argv, "dataplane");
}
