// Experiment F1/F2 — exercises the realization-phase protocol (the agent and
// manager state machines of Figures 1 and 2) end to end on the simulator and
// reports, per MAP step, the virtual-time duration and the blocking each
// involved process experienced, plus the control-message count.
//
// Expected shape: every step completes in a few milliseconds of virtual time
// (control-channel round trips + pre/in/post action durations), blocking only
// the processes the step's action touches.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "util/log.hpp"

#include <cstdio>
#include <optional>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "sim/network.hpp"

namespace {

using namespace sa;

struct NullProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

struct Harness {
  core::SafeAdaptationSystem system;
  NullProcess server, handheld, laptop;

  explicit Harness(core::SystemConfig config = {}) : system(config) {
    core::configure_paper_system(system);
    system.attach_process(core::kServerProcess, server, 0);
    system.attach_process(core::kHandheldProcess, handheld, 1);
    system.attach_process(core::kLaptopProcess, laptop, 1);
    system.finalize();
    system.set_current_configuration(core::paper_source(system.registry()));
  }
};

void print_protocol_trace() {
  Harness harness;
  harness.system.network().set_tracing(true);
  const auto result = harness.system.adapt_and_wait(core::paper_target(harness.system.registry()));

  std::printf("=== Realization phase (Figures 1 & 2 protocol) ===\n");
  std::printf("outcome: %s, steps committed: %zu\n",
              std::string(proto::to_string(result.outcome)).c_str(), result.steps_committed);
  std::printf("%-6s %-8s %-14s %-14s\n", "step", "action", "started (ms)", "duration (ms)");
  for (const auto& record : harness.system.manager().step_log()) {
    std::printf("%-6u %-8s %-14.2f %-14.2f\n", record.ref.step_index,
                record.action_name.c_str(), record.started / 1000.0,
                (record.finished - record.started) / 1000.0);
  }

  std::size_t control_messages = 0;
  for (const auto& entry : harness.system.network().trace()) {
    if (entry.delivered) ++control_messages;
  }
  std::printf("control messages delivered: %zu (5 steps x reset/reset done/adapt done/"
              "resume/resume done = 25, plus duplicate resume-done re-acks from the "
              "sole-participant proactive-resume optimization)\n",
              control_messages);
  std::printf("total blocked time reported by agents: %.2f ms\n",
              harness.system.manager().total_blocked_reported() / 1000.0);
  std::printf("total adaptation wall (virtual) time: %.2f ms\n\n",
              (result.finished - result.started) / 1000.0);
}

void BM_FullAdaptationProtocol(benchmark::State& state) {
  for (auto _ : state) {
    Harness harness;
    const auto result =
        harness.system.adapt_and_wait(core::paper_target(harness.system.registry()));
    if (result.outcome != proto::AdaptationOutcome::Success) state.SkipWithError("failed");
    benchmark::DoNotOptimize(result.steps_committed);
  }
}
BENCHMARK(BM_FullAdaptationProtocol);

void BM_SingleStepAdaptation(benchmark::State& state) {
  for (auto _ : state) {
    Harness harness;
    // A2 only: {D4,D1,E1} -> {D4,D2,E1}.
    const auto to_d2 =
        config::Configuration::of(harness.system.registry(), {"D4", "D2", "E1"});
    benchmark::DoNotOptimize(harness.system.adapt_and_wait(to_d2));
  }
}
BENCHMARK(BM_SingleStepAdaptation);

void BM_AdaptationUnderControlLoss(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  std::size_t retries = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    core::SystemConfig config;
    config.seed = 1000 + runs;
    config.control_channel.loss_probability = loss;
    config.manager.message_retries = 8;
    Harness harness(config);
    const auto result =
        harness.system.adapt_and_wait(core::paper_target(harness.system.registry()));
    retries += result.message_retries;
    ++runs;
    benchmark::DoNotOptimize(result);
  }
  state.counters["retries/run"] =
      benchmark::Counter(static_cast<double>(retries) / static_cast<double>(runs));
}
BENCHMARK(BM_AdaptationUnderControlLoss)->Arg(0)->Arg(10)->Arg(20);

// Guards the disabled-logging fast path: a record below the global level must
// not copy the component string or construct a stringstream, so protocol hot
// paths can keep SA_DEBUG statements without paying for them. Expect a few ns
// per statement; a regression to ~100ns means the lazy path broke.
void BM_DisabledLogging(benchmark::State& state) {
  util::set_log_level(util::LogLevel::Off);
  std::uint64_t x = 0;
  for (auto _ : state) {
    SA_DEBUG("bench-component-with-a-longer-name") << "value=" << x << " and more text " << 3.14;
    benchmark::DoNotOptimize(x++);
  }
}
BENCHMARK(BM_DisabledLogging);

}  // namespace

int main(int argc, char** argv) {
  sa::util::set_log_level(sa::util::LogLevel::Off);
  print_protocol_trace();
  return sa::benchio::run_and_report(argc, argv, "protocol");
}
