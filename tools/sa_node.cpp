// sa_node: one process of the distributed deployment (see core/supervisor.hpp).
//
// Run with --node NAME against a topology file; the process binds its socket
// endpoint, publishes the port, waits for the supervisor's endpoints.json,
// and then plays exactly one protocol role over SocketTransport:
//
//   manager  the paper's §5 adaptation request (direct AdaptationManager over
//            the socket backend), writing result.json when it terminates;
//   agent    an AdaptationAgent wrapping a stub AdaptableProcess, journaling
//            its §4.4 recovery state (last completed step + blocked time) to
//            disk on every change so a kill -9 + re-exec restores it, and
//            writing its terminal state file on SIGTERM.
//
// FaultPlan windows (--plan) are armed in-process on the socket transport and
// clock: partitions/loss/duplication become in-transport drops, TimerSkew
// scales the real timers, FailToReset flips the owning agent. Crash events
// are executed by the supervisor as real kill -9 / re-exec, not here.
//
// Exit codes: 0 clean (agents: after SIGTERM), 2 usage, 3 setup failure.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/explorer.hpp"  // fault_from_string
#include "core/paper_scenario.hpp"
#include "inject/fault_plan.hpp"
#include "obs/export.hpp"  // json_escape
#include "proto/agent.hpp"
#include "proto/manager.hpp"
#include "proto/wire_codecs.hpp"
#include "runtime/socket_runtime.hpp"
#include "runtime/wire.hpp"
#include "util/json.hpp"

namespace {

using sa::runtime::NodeId;
using sa::runtime::Time;

volatile sig_atomic_t g_sigterm = 0;
void on_sigterm(int) { g_sigterm = 1; }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --topology FILE --node NAME --workdir DIR [options]\n"
               "  --seed S          rng seed shared with the supervisor (default 42)\n"
               "  --scenario NAME   paper (default; the only distributed scenario)\n"
               "  --plan FILE       fault plan JSON; Crash events are ignored here\n"
               "  --fault NAME      manager mutation gate (manager role only)\n"
               "  --max-wait-ms N   manager: cap on the adaptation (default 60000)\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
  }
  std::rename(tmp.c_str(), path.c_str());
}

void sleep_us(Time t) { std::this_thread::sleep_for(std::chrono::microseconds(t)); }

struct NodeInfo {
  std::string name;
  std::string role;  ///< "manager" | "agent"
  sa::config::ProcessId process = 0;
  int stage = 0;
};

std::vector<NodeInfo> parse_topology(const std::string& text) {
  const sa::util::JsonValue doc = sa::util::parse_json(text, "topology JSON");
  const sa::util::JsonValue* nodes = doc.find("nodes");
  if (nodes == nullptr) throw std::runtime_error("topology JSON: missing \"nodes\"");
  std::vector<NodeInfo> out;
  for (const sa::util::JsonValue& n : nodes->array) {
    NodeInfo info;
    if (const auto* v = n.find("name")) info.name = v->string;
    if (const auto* v = n.find("role")) info.role = v->string;
    if (const auto* v = n.find("process")) {
      info.process = static_cast<sa::config::ProcessId>(v->number);
    }
    if (const auto* v = n.find("stage")) info.stage = static_cast<int>(v->number);
    if (info.name.empty() || info.role.empty()) {
      throw std::runtime_error("topology JSON: node missing name/role");
    }
    out.push_back(std::move(info));
  }
  if (out.empty()) throw std::runtime_error("topology JSON: no nodes");
  return out;
}

/// endpoints.json: {"<name>": port, ...}. Returns empty on missing file.
std::map<std::string, std::uint16_t> parse_endpoints(const std::string& text) {
  std::map<std::string, std::uint16_t> out;
  if (text.empty()) return out;
  const sa::util::JsonValue doc = sa::util::parse_json(text, "endpoints JSON");
  for (const auto& [name, value] : doc.object) {
    out[name] = static_cast<std::uint16_t>(value.number);
  }
  return out;
}

/// Arms every non-Crash FaultPlan window on the real clock. `agent` and
/// `my_process` bind FailToReset to the one process that owns it; both are
/// ignored in the manager role. Window times are relative to "now" (each node
/// arms right after learning the endpoints; see supervisor.cpp on the small
/// cross-process offset this implies).
void arm_plan(sa::runtime::SocketRuntime& rt, const sa::inject::FaultPlan& plan,
              sa::proto::AdaptationAgent* agent, sa::config::ProcessId my_process) {
  auto& clock = rt.socket_clock();
  auto& transport = rt.socket_transport();
  constexpr NodeId kManagerNode = 0;
  for (const sa::inject::FaultEvent& event : plan.events) {
    const NodeId target = static_cast<NodeId>(event.process) + 1;  // agent node
    std::function<void(bool)> toggle;
    switch (event.kind) {
      case sa::inject::FaultKind::Crash:
        continue;  // the supervisor's job: real kill -9 / re-exec
      case sa::inject::FaultKind::Loss:
        toggle = [&transport, p = event.probability](bool open) {
          transport.set_extra_loss(open ? p : 0.0);
        };
        break;
      case sa::inject::FaultKind::Duplicate:
        toggle = [&transport, p = event.probability](bool open) {
          transport.set_extra_duplication(open ? p : 0.0);
        };
        break;
      case sa::inject::FaultKind::PartitionNode:
        toggle = [&transport, target](bool open) { transport.partition_node(target, open); };
        break;
      case sa::inject::FaultKind::PartitionPair:
        toggle = [&transport, target](bool open) {
          transport.partition_pair(kManagerNode, target, open);
        };
        break;
      case sa::inject::FaultKind::FailToReset:
        if (agent == nullptr || event.process != my_process) continue;
        toggle = [agent](bool open) { agent->set_fail_to_reset(open); };
        break;
      case sa::inject::FaultKind::TimerSkew:
        toggle = [&clock, f = event.factor](bool open) { clock.set_skew(open ? f : 1.0); };
        break;
    }
    clock.schedule_after(event.start, [toggle] { toggle(true); });
    clock.schedule_after(event.end, [toggle] { toggle(false); });
  }
}

/// Serializes the transport trace as one JSONL line per entry, each carrying
/// the re-encoded wire frame in hex so the supervisor can merge and re-decode
/// across processes. Appends: a respawned agent extends its own file.
void write_trace(const std::string& path, sa::runtime::SocketTransport& transport) {
  std::ofstream out(path, std::ios::app);
  for (const sa::runtime::TraceEntry& entry : transport.trace()) {
    std::string frame;
    if (entry.message) {
      try {
        const std::vector<std::uint8_t> bytes =
            sa::runtime::encode_frame(entry.from, entry.to, 0, 0, *entry.message);
        frame = sa::runtime::to_hex(bytes.data(), bytes.size());
      } catch (const std::exception&) {
        // No codec for this type (not a control message); merge without it.
      }
    }
    out << "{\"t\":" << entry.time << ",\"from\":" << entry.from << ",\"to\":" << entry.to
        << ",\"type\":\"" << sa::obs::json_escape(entry.type)
        << "\",\"delivered\":" << (entry.delivered ? "true" : "false") << ",\"frame\":\""
        << frame << "\"}\n";
  }
}

struct Args {
  std::string topology;
  std::string node;
  std::string workdir;
  std::uint64_t seed = 42;
  std::string scenario = "paper";
  std::string plan_path;
  std::string fault;
  Time max_wait = sa::runtime::seconds(60);
};

// ---------------------------------------------------------------------------
// agent role

struct StubProcess : sa::proto::AdaptableProcess {
  bool prepare(const sa::proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const sa::proto::LocalCommand&) override { return true; }
  bool undo(const sa::proto::LocalCommand&) override { return true; }
  void resume() override {}
};

std::string journal_json(const std::optional<sa::proto::StepRef>& step, Time blocked,
                         std::uint64_t recoveries) {
  std::ostringstream out;
  out << "{\"last_completed\":";
  if (step) {
    out << "{\"request_id\":" << step->request_id << ",\"plan\":" << step->plan
        << ",\"step_index\":" << step->step_index << ",\"attempt\":" << step->attempt << '}';
  } else {
    out << "null";
  }
  out << ",\"total_blocked_us\":" << blocked << ",\"recoveries\":" << recoveries << "}\n";
  return out.str();
}

int run_agent(const Args& args, sa::runtime::SocketRuntime& rt, NodeId my_id,
              const NodeInfo& me, const sa::inject::FaultPlan& plan) {
  auto& transport = rt.socket_transport();
  transport.connect_bidirectional(my_id, /*manager=*/0);

  StubProcess process;
  sa::proto::AdaptationAgent agent(rt.clock(), rt.transport(), my_id, /*manager_node=*/0,
                                   process);

  // §4.4 crash recovery: a re-exec'd incarnation restores the journaled
  // re-ack key before any manager retransmission can reach it.
  const std::string journal_path = args.workdir + "/" + me.name + ".journal.json";
  std::uint64_t recoveries = 0;
  std::optional<sa::proto::StepRef> restored_step;
  Time restored_blocked = 0;
  if (const std::string text = read_file(journal_path); !text.empty()) {
    try {
      const sa::util::JsonValue journal = sa::util::parse_json(text, "agent journal");
      if (const auto* v = journal.find("last_completed");
          v != nullptr && v->type == sa::util::JsonValue::Type::Object) {
        sa::proto::StepRef step;
        if (const auto* f = v->find("request_id")) step.request_id = static_cast<std::uint64_t>(f->number);
        if (const auto* f = v->find("plan")) step.plan = static_cast<std::uint32_t>(f->number);
        if (const auto* f = v->find("step_index")) step.step_index = static_cast<std::uint32_t>(f->number);
        if (const auto* f = v->find("attempt")) step.attempt = static_cast<std::uint32_t>(f->number);
        restored_step = step;
      }
      if (const auto* v = journal.find("total_blocked_us")) {
        restored_blocked = static_cast<Time>(v->number);
      }
      if (const auto* v = journal.find("recoveries")) {
        recoveries = static_cast<std::uint64_t>(v->number) + 1;
      } else {
        recoveries = 1;
      }
      agent.restore_recovery(restored_step, restored_blocked);
    } catch (const std::exception& e) {
      std::cerr << me.name << ": discarding corrupt journal: " << e.what() << "\n";
    }
  }
  write_file_atomic(journal_path, journal_json(restored_step, restored_blocked, recoveries));

  arm_plan(rt, plan, &agent, me.process);

  // Journal poll loop: rewrite on every recovery-state change, until SIGTERM.
  std::optional<sa::proto::StepRef> last_step = restored_step;
  Time last_blocked = restored_blocked;
  while (g_sigterm == 0) {
    sleep_us(sa::runtime::ms(1));
    const std::optional<sa::proto::StepRef> step = agent.last_completed();
    const Time blocked = agent.stats().total_blocked;
    if (step != last_step || blocked != last_blocked) {
      write_file_atomic(journal_path, journal_json(step, blocked, recoveries));
      last_step = step;
      last_blocked = blocked;
    }
  }

  // SIGTERM: publish terminal state + trace, then tear down cleanly.
  std::ostringstream state;
  state << "{\"state\":\"" << sa::proto::to_string(agent.state())
        << "\",\"recoveries\":" << recoveries << "}\n";
  write_file_atomic(args.workdir + "/" + me.name + ".state.json", state.str());
  write_trace(args.workdir + "/" + me.name + ".trace.jsonl", transport);
  return 0;
}

// ---------------------------------------------------------------------------
// manager role

int run_manager(const Args& args, sa::runtime::SocketRuntime& rt,
                const std::vector<NodeInfo>& topology, const sa::inject::FaultPlan& plan) {
  auto& transport = rt.socket_transport();
  const sa::core::PaperScenario scenario = sa::core::make_paper_scenario();

  // Slightly deeper retry budget than the simulated campaigns: real crash
  // windows last hundreds of milliseconds of wall time, and the manager must
  // outlast them for the re-exec'd agent to be revived by retransmission.
  sa::proto::ManagerConfig config;
  config.message_retries = 3;
  config.run_to_completion_retries = 10;
  sa::proto::AdaptationManager manager(rt, /*node=*/0, *scenario.invariants,
                                       *scenario.actions, config);
  for (NodeId id = 1; id < topology.size(); ++id) {
    transport.connect_bidirectional(0, id);
    manager.register_agent(topology[id].process, id, topology[id].stage);
  }
  manager.set_current_configuration(scenario.source);
  if (!args.fault.empty()) {
    manager.inject_fault(sa::check::fault_from_string(args.fault));
  }

  // Let the agent processes finish arming their receive handlers; a reset
  // sent into a not-yet-listening socket is recoverable loss, but the settle
  // delay keeps clean runs clean.
  sleep_us(sa::runtime::ms(200));
  arm_plan(rt, plan, nullptr, 0);

  std::atomic<bool> done{false};
  sa::proto::AdaptationResult result;
  std::mutex result_mutex;
  manager.request_adaptation(scenario.target, [&](const sa::proto::AdaptationResult& r) {
    std::lock_guard lock(result_mutex);
    result = r;
    done.store(true);
  });
  const bool finished = rt.wait_until([&] { return done.load(); });

  std::lock_guard lock(result_mutex);
  std::ostringstream out;
  out << "{\"outcome\":\""
      << (finished ? sa::proto::to_string(result.outcome) : "did-not-terminate")
      << "\",\"final_config_bits\":"
      << (finished ? result.final_config.bits() : manager.current_configuration().bits())
      << ",\"committed_actions\":[";
  bool first = true;
  for (const sa::proto::StepRecord& record : manager.step_log()) {
    if (!record.committed || record.rolled_back) continue;
    out << (first ? "" : ",") << '"' << sa::obs::json_escape(record.action_name) << '"';
    first = false;
  }
  out << "],\"steps_committed\":" << (finished ? result.steps_committed : 0)
      << ",\"step_failures\":" << (finished ? result.step_failures : 0)
      << ",\"total_blocked_us\":" << manager.total_blocked_reported() << "}\n";
  write_file_atomic(args.workdir + "/result.json", out.str());
  write_trace(args.workdir + "/manager.trace.jsonl", transport);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(flag + " needs a value");
      return argv[++i];
    };
    try {
      if (flag == "--topology") {
        args.topology = value();
      } else if (flag == "--node") {
        args.node = value();
      } else if (flag == "--workdir") {
        args.workdir = value();
      } else if (flag == "--seed") {
        args.seed = std::stoull(value());
      } else if (flag == "--scenario") {
        args.scenario = value();
      } else if (flag == "--plan") {
        args.plan_path = value();
      } else if (flag == "--fault") {
        args.fault = value();
      } else if (flag == "--max-wait-ms") {
        args.max_wait = sa::runtime::ms(static_cast<sa::runtime::Time>(std::stoll(value())));
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "sa_node: " << e.what() << "\n";
      return 2;
    }
  }
  if (args.topology.empty() || args.node.empty() || args.workdir.empty()) {
    return usage(argv[0]);
  }
  if (args.scenario != "paper") {
    std::cerr << "sa_node: unsupported scenario \"" << args.scenario << "\"\n";
    return 2;
  }

  struct sigaction sa = {};
  sa.sa_handler = on_sigterm;
  ::sigaction(SIGTERM, &sa, nullptr);

  sa::proto::register_wire_codecs();

  try {
    const std::vector<NodeInfo> topology = parse_topology(read_file(args.topology));
    NodeId my_id = topology.size();
    for (NodeId id = 0; id < topology.size(); ++id) {
      if (topology[id].name == args.node) my_id = id;
    }
    if (my_id == topology.size()) {
      std::cerr << "sa_node: node \"" << args.node << "\" not in topology\n";
      return 2;
    }
    const NodeInfo& me = topology[my_id];

    // A respawned incarnation finds endpoints.json already published and must
    // rebind the exact port its peers learned in the exchange.
    const std::string endpoints_path = args.workdir + "/endpoints.json";
    std::map<std::string, std::uint16_t> endpoints = parse_endpoints(read_file(endpoints_path));

    sa::runtime::SocketTransportOptions topt;
    for (const NodeInfo& info : topology) {
      std::uint16_t port = 0;
      if (const auto it = endpoints.find(info.name); it != endpoints.end()) port = it->second;
      topt.topology.push_back({info.name, port});
    }
    topt.local = {my_id};
    topt.seed = args.seed ^ (static_cast<std::uint64_t>(my_id) << 32);

    sa::runtime::SocketRuntimeOptions ropt;
    ropt.transport = std::move(topt);
    ropt.wait_cap = args.max_wait;
    sa::runtime::SocketRuntime rt(std::move(ropt));
    auto& transport = rt.socket_transport();
    transport.add_node(me.name);
    transport.set_tracing(true);

    write_file_atomic(args.workdir + "/" + me.name + ".port",
                      std::to_string(transport.local_port(my_id)) + "\n");

    // Endpoint exchange: wait for the supervisor to publish the full table.
    if (endpoints.empty()) {
      const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
      while (endpoints.empty() && g_sigterm == 0) {
        endpoints = parse_endpoints(read_file(endpoints_path));
        if (!endpoints.empty()) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          std::cerr << "sa_node: endpoints.json never appeared\n";
          return 3;
        }
        sleep_us(sa::runtime::ms(2));
      }
    }
    for (NodeId id = 0; id < topology.size(); ++id) {
      if (id == my_id) continue;
      if (const auto it = endpoints.find(topology[id].name); it != endpoints.end()) {
        transport.set_endpoint_port(id, it->second);
      }
    }

    sa::inject::FaultPlan plan;
    if (!args.plan_path.empty()) {
      plan = sa::inject::plan_from_json(read_file(args.plan_path));
    }

    if (me.role == "manager") return run_manager(args, rt, topology, plan);
    if (me.role == "agent") return run_agent(args, rt, my_id, me, plan);
    std::cerr << "sa_node: unknown role \"" << me.role << "\"\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "sa_node: " << e.what() << "\n";
    return 3;
  }
}
