// sa_plan — the detection-and-setup phase as a command-line tool.
//
// Reads a scenario file (see src/core/scenario_file.hpp for the format),
// enumerates the safe configuration set, builds the safe adaptation graph,
// and prints the minimum adaptation path plus ranked alternatives.
//
//   sa_plan <scenario-file> [--paths N] [--dot FILE] [--lazy]
//
//   --paths N   also print the N cheapest alternative paths (default 3)
//   --dot FILE  write the SAG as Graphviz, MAP edges highlighted
//   --lazy      plan with the A* partial-exploration planner instead of the
//               full-SAG pipeline (prints exploration statistics)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "actions/lazy_planner.hpp"
#include "actions/planner.hpp"
#include "config/enumerate.hpp"
#include "core/scenario_file.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <scenario-file> [--paths N] [--dot FILE] [--lazy]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sa;

  const char* path = nullptr;
  std::size_t ranked_paths = 3;
  const char* dot_path = nullptr;
  bool lazy = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paths") == 0 && i + 1 < argc) {
      ranked_paths = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--lazy") == 0) {
      lazy = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage(argv[0]);

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }

  core::ParsedScenario scenario;
  try {
    scenario = core::parse_scenario(file);
  } catch (const core::ScenarioParseError& e) {
    std::fprintf(stderr, "%s: %s\n", path, e.what());
    return 1;
  }
  if (!scenario.source || !scenario.target) {
    std::fprintf(stderr, "%s: scenario must declare both source and target\n", path);
    return 1;
  }

  const auto& registry = *scenario.registry;
  std::printf("components: %zu   invariants: %zu   actions: %zu\n", registry.size(),
              scenario.invariants->invariants().size(), scenario.actions->size());

  const auto safe = config::enumerate_safe_pruned(*scenario.invariants);
  std::printf("safe configurations: %zu\n", safe.size());
  for (const auto& config : safe) {
    std::printf("  %s  {%s}\n", config.to_bit_string(registry.size()).c_str(),
                config.describe(registry).c_str());
  }

  if (!scenario.invariants->satisfied(*scenario.source)) {
    std::fprintf(stderr, "source configuration is UNSAFE; violations:\n");
    for (const auto& name : scenario.invariants->violations(*scenario.source)) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 1;
  }
  if (!scenario.invariants->satisfied(*scenario.target)) {
    std::fprintf(stderr, "target configuration is UNSAFE\n");
    return 1;
  }

  if (lazy) {
    const actions::LazyPathPlanner planner(*scenario.actions, *scenario.invariants);
    const auto plan = planner.minimum_path(*scenario.source, *scenario.target);
    if (!plan) {
      std::printf("\nNO safe adaptation path exists.\n");
      return 3;
    }
    std::printf("\nminimum adaptation path (lazy A*): %s  (cost %.0f)\n",
                plan->action_names(*scenario.actions).c_str(), plan->total_cost);
    std::printf("explored %zu configurations (%zu generated, %zu invariant checks)\n",
                planner.last_stats().expanded, planner.last_stats().generated,
                planner.last_stats().safe_checked);
    return 0;
  }

  const actions::SafeAdaptationGraph sag(*scenario.actions, safe);
  std::printf("SAG: %zu nodes, %zu adaptation steps\n", sag.node_count(), sag.edge_count());
  const actions::PathPlanner planner(sag);
  const auto plans =
      planner.ranked_paths(*scenario.source, *scenario.target, std::max<std::size_t>(1, ranked_paths));
  if (plans.empty()) {
    std::printf("\nNO safe adaptation path exists from {%s} to {%s}.\n",
                scenario.source->describe(registry).c_str(),
                scenario.target->describe(registry).c_str());
    return 3;
  }
  std::printf("\nminimum adaptation path: %s  (cost %.0f)\n",
              plans[0].action_names(*scenario.actions).c_str(), plans[0].total_cost);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    std::printf("alternative #%zu: %s  (cost %.0f)\n", i,
                plans[i].action_names(*scenario.actions).c_str(), plans[i].total_cost);
  }
  for (const auto& step : plans[0].steps) {
    const auto& action = scenario.actions->action(step.action);
    std::printf("  %-4s %-24s {%s} -> {%s}\n", action.name.c_str(),
                action.operation_text(registry).c_str(), step.from.describe(registry).c_str(),
                step.to.describe(registry).c_str());
  }

  if (dot_path) {
    // Highlight the MAP's edges in the DOT output.
    std::vector<graph::EdgeId> highlight;
    for (const auto& step : plans[0].steps) {
      const auto from = sag.node_of(step.from);
      if (!from) continue;
      for (const graph::EdgeId edge : sag.graph().out_edges(*from)) {
        if (sag.graph().edge(edge).to == *sag.node_of(step.to) &&
            static_cast<actions::ActionId>(sag.graph().edge(edge).label) == step.action) {
          highlight.push_back(edge);
        }
      }
    }
    std::ofstream dot(dot_path);
    dot << sag.to_dot(highlight);
    std::printf("\nSAG written to %s (MAP highlighted)\n", dot_path);
  }
  return 0;
}
