// sa_fuzz: deterministic fault-injection campaign over the real protocol
// stack.
//
// Each seed deterministically expands to a fault plan (loss/duplication
// windows, partitions, agent crashes, fail-to-reset, timer skew), which is
// applied through the FaultyTransport/FaultyClock decorators to the paper's
// §5 scenario running on a fresh SimRuntime. After every run the oracles
// check that the system rests only in safe configurations, the terminal
// outcome is in the §4.4 legal set, the delivered control trace conforms to
// the Figure 1/2 automata, metrics agree with the manager's accounting, and
// (video scenario) no client ever decoded a corrupted packet. Failures are
// greedily shrunk to a minimal plan and written as replayable JSON artifacts.
//
//   sa_fuzz --seeds 0..256 --threads 8                  # campaign
//   sa_fuzz --scenario video --seeds 0..64              # full Fig. 3 testbed
//   sa_fuzz --fault resume-early --seeds 0..32          # must-fail gate
//   sa_fuzz --seed 17 --plan plan.json                  # one explicit run
//   sa_fuzz --replay artifact.json                      # byte-deterministic
//
// Results are bit-identical for any --threads value: every run is a pure
// function of (scenario, seed, plan).
//
// Exit codes: 0 no violation, 1 violation found, 2 usage/setup/divergence.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "inject/campaign.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --scenario NAME          paper | paper-combined | video | fleet\n"
      << "                           (default paper; paper-combined uses the\n"
      << "                           pair/triple Table-2 actions, whose steps\n"
      << "                           involve several agents; fleet runs the\n"
      << "                           8-cluster manager tree and aims faults at\n"
      << "                           coordinator links instead of agents)\n"
      << "  --backend NAME           sim (default) | socket (paper scenario as real\n"
      << "                           sa_node processes over loopback; Crash windows\n"
      << "                           become kill -9 + re-exec, shrinking is skipped)\n"
      << "  --sa-node PATH           socket backend: sa_node binary (default: next\n"
      << "                           to this executable, or $SA_NODE)\n"
      << "  --seeds A..B             campaign seed range, B exclusive (default 0..16)\n"
      << "  --seed S                 run a single seed (with its generated plan,\n"
      << "                           or the plan given by --plan)\n"
      << "  --plan FILE              explicit fault plan JSON (requires --seed)\n"
      << "  --threads N              campaign workers (default 1; results are\n"
      << "                           identical for any value)\n"
      << "  --max-events N           per-run simulator event budget (default 2000000)\n"
      << "  --fault NAME             inject a manager mutation (none |\n"
      << "                           resume-before-last-adapt-done | rollback-after-resume)\n"
      << "  --no-shrink              keep failing plans as generated\n"
      << "  --artifact-dir DIR       write one replayable JSON artifact per failure\n"
      << "  --replay FILE            re-run an artifact and verify it reproduces\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void print_failure(const sa::inject::RunReport& report) {
  std::cout << "FAIL seed " << report.seed << " (outcome " << report.outcome << ")\n";
  for (const sa::inject::FaultEvent& event : report.plan.events) {
    std::cout << "  plan: " << event.describe() << "\n";
  }
  for (const std::string& violation : report.violations) {
    std::cout << "  " << violation << "\n";
  }
}

void write_artifact(const std::string& dir, const sa::inject::CampaignOptions& options,
                    const sa::inject::RunReport& report) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/seed-" + std::to_string(report.seed) + ".json";
  sa::inject::FuzzArtifact artifact;
  artifact.scenario = options.scenario;
  artifact.backend = options.backend;
  artifact.seed = report.seed;
  artifact.fault = options.fault;
  artifact.max_events = options.max_events;
  artifact.plan = report.plan;
  artifact.violations = report.violations;
  std::ofstream out(path);
  out << sa::inject::to_json(artifact);
  std::cout << "  artifact written to " << path << "\n";
  if (!report.trace_tail.empty()) {
    // Post-mortem flight-recorder window from the (shrunk) failing run —
    // deterministic, so it always matches what --replay would observe.
    const std::string tail_path =
        dir + "/seed-" + std::to_string(report.seed) + ".trace.jsonl";
    std::ofstream tail(tail_path);
    tail << report.trace_tail;
    std::cout << "  flight-recorder tail written to " << tail_path << "\n";
  }
}

int run_replay(const std::string& path) {
  const sa::inject::FuzzArtifact artifact =
      sa::inject::artifact_from_json(read_file(path));
  sa::inject::CampaignOptions options;
  options.scenario = artifact.scenario;
  options.backend = artifact.backend;
  options.fault = artifact.fault;
  options.max_events = artifact.max_events;
  const sa::inject::RunResult result =
      sa::inject::run_one(artifact.scenario, artifact.seed, artifact.plan, options);
  std::cout << "replayed scenario '" << artifact.scenario << "' (" << artifact.backend
            << " backend) seed " << artifact.seed << ": outcome " << result.outcome << "\n";
  for (const std::string& violation : result.violations) {
    std::cout << "  " << violation << "\n";
  }
  if (artifact.backend == "socket") {
    // Real processes + real time: the same plan reproduces the failure CLASS,
    // not byte-identical violation text, so the divergence gate is advisory.
    std::cout << (result.violations.empty()
                      ? "replay produced no violation (socket runs are not "
                        "byte-deterministic)\n"
                      : "replay reproduced a violation\n");
    return result.violations.empty() ? 0 : 1;
  }
  if (result.violations != artifact.violations) {
    std::cerr << "sa_fuzz: replay DIVERGED from the artifact (stale file or "
                 "non-deterministic build?)\n";
    return 2;
  }
  std::cout << "replay reproduced the artifact byte-for-byte\n";
  return result.violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sa::inject::CampaignOptions options;
  std::optional<std::uint64_t> single_seed;
  std::optional<std::string> plan_path;
  std::optional<std::string> artifact_dir;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--scenario") {
        options.scenario = value();
      } else if (arg == "--backend") {
        options.backend = value();
        if (options.backend != "sim" && options.backend != "socket") {
          throw std::invalid_argument("--backend expects sim or socket");
        }
      } else if (arg == "--sa-node") {
        options.sa_node = value();
      } else if (arg == "--seeds") {
        const std::string range = value();
        const std::size_t sep = range.find("..");
        if (sep == std::string::npos) {
          throw std::invalid_argument("--seeds expects A..B, got " + range);
        }
        options.seed_begin = std::stoull(range.substr(0, sep));
        options.seed_end = std::stoull(range.substr(sep + 2));
      } else if (arg == "--seed") {
        single_seed = std::stoull(value());
      } else if (arg == "--plan") {
        plan_path = value();
      } else if (arg == "--threads") {
        options.threads = std::stoull(value());
      } else if (arg == "--max-events") {
        options.max_events = std::stoull(value());
      } else if (arg == "--fault") {
        options.fault = sa::check::fault_from_string(value());
      } else if (arg == "--no-shrink") {
        options.shrink = false;
      } else if (arg == "--artifact-dir") {
        artifact_dir = value();
      } else if (arg == "--replay") {
        return run_replay(value());
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::cerr << "sa_fuzz: unknown option " << arg << "\n";
        return usage(argv[0]);
      }
    }
    if (plan_path && !single_seed) {
      throw std::invalid_argument("--plan requires --seed");
    }

    if (single_seed) {
      // Single run: the seed's generated plan unless one was given explicitly.
      sa::inject::RunReport report;
      report.seed = *single_seed;
      report.plan = plan_path ? sa::inject::plan_from_json(read_file(*plan_path))
                    : options.backend == "socket"
                        ? sa::inject::socket_plan_for_seed(*single_seed)
                        : sa::inject::plan_for_seed(options.scenario, *single_seed);
      sa::inject::RunResult result =
          sa::inject::run_one(options.scenario, report.seed, report.plan, options);
      if (!result.violations.empty() && options.shrink && options.backend != "socket") {
        report.plan = sa::inject::shrink_plan(options.scenario, report.seed, report.plan,
                                              options, result.violations);
        result = sa::inject::run_one(options.scenario, report.seed, report.plan, options);
      }
      report.outcome = result.outcome;
      report.violations = result.violations;
      report.trace_tail = std::move(result.trace_tail);
      std::cout << "scenario: " << options.scenario << "  seed: " << report.seed
                << "  fault: " << sa::check::to_string(options.fault) << "\n";
      if (report.violations.empty()) {
        std::cout << "outcome " << report.outcome << ": no violation\n";
        return 0;
      }
      print_failure(report);
      if (artifact_dir) write_artifact(*artifact_dir, options, report);
      return 1;
    }

    const sa::inject::CampaignSummary summary = sa::inject::run_campaign(options);
    std::cout << "scenario: " << options.scenario << "  seeds: [" << options.seed_begin
              << ", " << options.seed_end << ")  fault: "
              << sa::check::to_string(options.fault) << "\n"
              << "runs:     " << summary.runs << "\n"
              << "failures: " << summary.failures.size() << "\n";
    for (const auto& [outcome, count] : summary.outcomes) {
      std::cout << "outcome " << outcome << ": " << count << "\n";
    }
    for (const sa::inject::RunReport& report : summary.failures) {
      print_failure(report);
      if (artifact_dir) write_artifact(*artifact_dir, options, report);
    }
    return summary.failures.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "sa_fuzz: " << e.what() << "\n";
    return 2;
  }
}
