// sa_trace — causal trace analysis for safe-adaptation JSONL traces.
//
// Ingests a trace produced by `sa_run --trace-out` (single system) or
// `sa_run --fleet --trace-out` (region-tagged fleet trace) and emits a JSON
// report: per-root-epoch critical paths attributed by tree node, blocked-time
// breakdown by hierarchy level, and p50/p99 span latencies.
//
//   sa_trace trace.jsonl                 analysis JSON on stdout
//   sa_trace --check trace.jsonl         also verify the telescoping
//                                        invariant: every root epoch's
//                                        critical-path contributions sum
//                                        exactly to its seal -> complete
//                                        latency; exit 1 on violation
//   cat trace.jsonl | sa_trace -         read from stdin
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sa_trace [--check] <trace.jsonl | ->\n"
               "  --check   verify critical-path contributions sum to each root\n"
               "            epoch's latency (exit 1 on violation)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage();
      return 0;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();

  std::ifstream file;
  std::istream* in = &std::cin;
  if (std::strcmp(path, "-") != 0) {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "sa_trace: cannot open %s\n", path);
      return 2;
    }
    in = &file;
  }

  std::vector<sa::obs::TraceLine> lines;
  std::size_t skipped = 0;
  std::string line;
  while (std::getline(*in, line)) {
    if (auto parsed = sa::obs::parse_trace_line(line)) {
      lines.push_back(std::move(*parsed));
    } else if (!line.empty()) {
      ++skipped;
    }
  }
  if (lines.empty()) {
    std::fprintf(stderr, "sa_trace: no trace lines in %s\n", path);
    return 2;
  }
  if (skipped != 0) {
    std::fprintf(stderr, "sa_trace: skipped %zu unparseable line(s)\n", skipped);
  }

  const sa::obs::TraceAnalysis analysis = sa::obs::analyze(lines);
  std::cout << sa::obs::to_json(analysis);

  if (check) {
    std::size_t violations = 0;
    for (const auto& epoch : analysis.epochs) {
      sa::runtime::Time sum = 0;
      for (const auto& node : epoch.path) sum += node.contribution;
      if (sum != epoch.latency) {
        ++violations;
        std::fprintf(stderr,
                     "sa_trace: region %llu epoch %llu: critical path sums to %lld us "
                     "but root latency is %lld us\n",
                     static_cast<unsigned long long>(epoch.region),
                     static_cast<unsigned long long>(epoch.epoch),
                     static_cast<long long>(sum), static_cast<long long>(epoch.latency));
      }
    }
    if (analysis.epochs.empty()) {
      std::fprintf(stderr, "sa_trace: --check found no root epochs in the trace\n");
      return 1;
    }
    if (violations != 0) return 1;
    std::fprintf(stderr, "sa_trace: %zu root epoch(s) verified: critical paths sum to root latency\n",
                 analysis.epochs.size());
  }
  return 0;
}
