// sa_check: bounded interleaving explorer for the adaptation protocol.
//
// Model-checks the paper's safety argument (§4.3 global safe state, §4.4
// failure handling) over schedules of the sans-I/O Manager/Agent cores:
// message reordering across channels, bounded drops and duplicates, and
// timer-vs-message races. On a violation it prints — and optionally writes —
// a replayable counterexample schedule as JSON.
//
//   sa_check --scenario tiny --mode dfs --depth 200          # exhaustive
//   sa_check --scenario pair --dpor --symmetry --depth 0     # reduced, unbounded
//   sa_check --scenario paper --depth 24 --drops 1           # bounded
//   sa_check --scenario pair --fault resume-early --json-out ce.json
//   sa_check --replay ce.json                                # reproduce
//
// Exit codes: 0 no violation, 1 violation found, 2 usage/setup error.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "check/model.hpp"
#include "check/scenario.hpp"
#include "obs/event.hpp"
#include "obs/export.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --scenario tiny|pair|paper   protocol instance to check (default tiny)\n"
      << "  --mode dfs|random            search strategy (default dfs)\n"
      << "  --depth N                    max choices per run (default 80; 0 = unbounded)\n"
      << "  --max-states N               DFS state budget (default 200000)\n"
      << "  --runs N                     random walks (default 200, random mode)\n"
      << "  --seed S                     base seed for random walks (default 1)\n"
      << "  --drops N                    adversary message-drop budget (default 0)\n"
      << "  --dups N                     adversary duplication budget (default 0)\n"
      << "  --threads N                  search worker threads (default 1; 0 = all cores)\n"
      << "  --reorder                    allow cross-message reordering per channel\n"
      << "  --dpor / --no-dpor           partial-order reduction via sleep sets (default off)\n"
      << "  --symmetry / --no-symmetry   dedup on the agent-orbit canonical fingerprint\n"
      << "                               (default off; replay always stays concrete)\n"
      << "  --fault NAME                 inject a manager mutation (none |\n"
      << "                               resume-before-last-adapt-done | rollback-after-resume)\n"
      << "  --fail-process P             agent on P never reaches its safe state\n"
      << "  --json-out FILE              write the counterexample schedule as JSON\n"
      << "  --replay FILE                re-execute a counterexample schedule file\n";
  return 2;
}

void print_stats(const sa::check::ExploreResult& result) {
  const sa::check::ExploreStats& stats = result.stats;
  std::cout << "states explored:   " << stats.states_explored << "\n"
            << "states deduped:    " << stats.states_deduped << "\n"
            << "runs completed:    " << stats.runs_completed << "\n"
            << "depth-capped runs: " << stats.depth_capped << "\n"
            << "sleep-pruned:      " << stats.sleep_pruned << "\n"
            << "max depth reached: " << stats.max_depth_reached << "\n"
            << "exhaustive:        " << (result.complete ? "yes" : "no (bounded)") << "\n";
  for (const auto& [outcome, count] : stats.outcomes) {
    std::cout << "outcome " << outcome << ": " << count << "\n";
  }
}

// The model checker has no live flight recorder, so the post-mortem view
// comes from replaying the counterexample schedule and serializing the
// model's Fig. 1 / Fig. 2 transitions through the recorder schema
// (ManagerPhase / AgentState events, time = choice index). Written next to
// the --json-out file so the tail travels with the reproducer, mirroring
// the seed-N.trace.jsonl sa_fuzz dumps next to its artifacts.
void write_trace_tail(const sa::check::Scenario& scenario,
                      const sa::check::ScheduleFile& file, const std::string& json_path) {
  constexpr std::size_t kTailEvents = 256;
  const sa::check::ReplayResult replayed =
      sa::check::replay(scenario, file.options, file.schedule);
  std::vector<sa::obs::Event> events;
  const std::size_t total = replayed.transitions.size();
  const std::size_t begin = total > kTailEvents ? total - kTailEvents : 0;
  events.reserve(total - begin);
  for (std::size_t i = begin; i < total; ++i) {
    const sa::check::TransitionRec& rec = replayed.transitions[i];
    sa::obs::Event e;
    e.seq = i;
    e.time = static_cast<sa::runtime::Time>(i);  // model steps, not µs
    if (rec.entity == "manager") {
      e.kind = sa::obs::EventKind::ManagerPhase;
      e.track = sa::obs::kManagerTrack;
    } else {  // "agent<process>"
      e.kind = sa::obs::EventKind::AgentState;
      e.track = std::atoll(rec.entity.c_str() + 5);
    }
    e.name = rec.to;
    e.detail = rec.from;
    events.push_back(std::move(e));
  }
  std::filesystem::path tail_path(json_path);
  tail_path.replace_extension();
  tail_path += ".trace.jsonl";
  std::ofstream out(tail_path);
  sa::obs::write_jsonl(events, out);
  std::cout << "transition tail (" << events.size() << " events) written to "
            << tail_path.string() << "\n";
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "sa_check: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const sa::check::ScheduleFile file = sa::check::schedule_from_json(buffer.str());
  const sa::check::Scenario scenario = sa::check::make_scenario(file.scenario);
  const sa::check::ReplayResult result =
      sa::check::replay(scenario, file.options, file.schedule);
  if (!result.schedule_valid) {
    std::cerr << "sa_check: schedule diverged from the model (stale file?)\n";
    return 2;
  }
  std::cout << "replayed " << file.schedule.size() << " choices on scenario '"
            << file.scenario << "'\n";
  for (const sa::check::Violation& v : result.violations) {
    std::cout << "violation: " << v.description << "\n";
  }
  if (result.outcome) {
    std::cout << "outcome: " << sa::proto::to_string(result.outcome->outcome) << "\n";
  }
  return result.violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "tiny";
  std::string mode = "dfs";
  sa::check::ExploreOptions options;
  std::size_t runs = 200;
  std::uint64_t seed = 1;
  std::optional<std::string> json_out;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--scenario") {
        scenario_name = value();
      } else if (arg == "--mode") {
        mode = value();
      } else if (arg == "--depth") {
        options.max_depth = std::stoi(value());
      } else if (arg == "--max-states") {
        options.max_states = std::stoull(value());
      } else if (arg == "--runs") {
        runs = std::stoull(value());
      } else if (arg == "--seed") {
        seed = std::stoull(value());
      } else if (arg == "--drops") {
        options.drop_budget = std::stoi(value());
      } else if (arg == "--dups") {
        options.dup_budget = std::stoi(value());
      } else if (arg == "--threads") {
        options.threads = std::stoi(value());
      } else if (arg == "--reorder") {
        options.reorder = true;
      } else if (arg == "--dpor") {
        options.dpor = true;
      } else if (arg == "--no-dpor") {
        options.dpor = false;
      } else if (arg == "--symmetry") {
        options.symmetry = true;
      } else if (arg == "--no-symmetry") {
        options.symmetry = false;
      } else if (arg == "--fault") {
        options.fault = sa::check::fault_from_string(value());
      } else if (arg == "--fail-process") {
        options.fail_to_reset.push_back(
            static_cast<sa::config::ProcessId>(std::stoul(value())));
      } else if (arg == "--json-out") {
        json_out = value();
      } else if (arg == "--replay") {
        return run_replay(value());
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::cerr << "sa_check: unknown option " << arg << "\n";
        return usage(argv[0]);
      }
    }

    const sa::check::Scenario scenario = sa::check::make_scenario(scenario_name);
    sa::check::ExploreResult result;
    if (mode == "dfs") {
      result = sa::check::explore_dfs(scenario, options);
    } else if (mode == "random") {
      result = sa::check::explore_random(scenario, options, seed, runs);
    } else {
      std::cerr << "sa_check: unknown mode " << mode << "\n";
      return usage(argv[0]);
    }

    std::cout << "scenario: " << scenario_name << "  mode: " << mode
              << "  fault: " << sa::check::to_string(options.fault) << "\n";
    print_stats(result);

    if (!result.counterexample) {
      std::cout << "no safety violation found\n";
      return 0;
    }

    std::cout << "VIOLATION after " << result.counterexample->schedule.size()
              << " choices:\n";
    for (const std::string& v : result.counterexample->violations) {
      std::cout << "  " << v << "\n";
    }
    sa::check::ScheduleFile file;
    file.scenario = scenario_name;
    file.options = options;
    file.schedule = result.counterexample->schedule;
    file.violations = result.counterexample->violations;
    const std::string json = sa::check::to_json(file);
    std::cout << "counterexample schedule:\n" << json;
    if (json_out) {
      std::ofstream out(*json_out);
      out << json;
      std::cout << "written to " << *json_out << "\n";
      write_trace_tail(scenario, file, *json_out);
    }
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "sa_check: " << e.what() << "\n";
    return 2;
  }
}
