// sa_run — the realization phase as a command-line tool.
//
// Loads a scenario file, attaches a generic adaptable process per declared
// process id, and executes the source -> target adaptation through the full
// manager/agent protocol on the simulator, printing the per-step timeline.
// Failure injection flags reproduce the §4.4 experiments on any scenario:
//
//   sa_run <scenario-file> [--loss P] [--dup P] [--fail-process ID]
//          [--trace-out FILE [--trace-format jsonl|chrome]] [--metrics-out FILE]
//
//   --loss P          control-channel loss probability (0..1)
//   --dup P           control-channel duplication probability (0..1)
//   --fail-process N  process N never reaches its safe state (fail-to-reset)
//   --trace-out FILE  record the protocol event trace and write it to FILE
//   --trace-format F  jsonl (default; line-delimited events) or chrome
//                     (trace_event JSON for chrome://tracing / Perfetto)
//   --metrics-out F   write protocol metrics in Prometheus text format
//
// Fleet mode runs the hierarchical mass-adaptation campaign instead of a
// scenario file, printing one deterministic report line per region — the
// same text for any --threads value, which the CI fleet-smoke job diffs:
//
//   sa_run --fleet [--clusters N] [--threads N] [--lanes-per-leaf N]
//          [--fanout N] [--epoch-window USEC] [--seed S] [--trace-out FILE]
//          [--trace-full]
//
// With --trace-out, fleet mode records every region's causal trace (jsonl
// only) and concatenates them region-tagged into FILE — input for sa_trace.
//
// Dataplane mode exercises the zero-copy batched data plane at real-time
// wall-clock speed: N producer/pump thread pairs stream arena packets through
// DES encode/decode chains while lane 0 is adapted DES-64 -> DES-128 through
// the §5.2 quiescence handshake mid-run. Exit status is 0 only if every
// delivered packet survived intact:
//
//   sa_run --dataplane [--streams N] [--packets N] [--seed S]
//
// Distributed mode reproduces the paper's multi-host testbed shape: the
// manager and the three §5 agents run as separate sa_node OS processes over
// loopback sockets (see core/supervisor.hpp), and the tool prints the
// manager's terminal outcome plus the committed action sequence:
//
//   sa_run --distributed [--seed S] [--sa-node PATH] [--keep-workdir]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "core/fleet.hpp"
#include "core/scenario_file.hpp"
#include "core/supervisor.hpp"
#include "core/system.hpp"
#include "crypto/codec_filters.hpp"
#include "obs/export.hpp"
#include "util/strings.hpp"
#include "video/pump.hpp"

namespace {

struct StubProcess : sa::proto::AdaptableProcess {
  bool prepare(const sa::proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const sa::proto::LocalCommand&) override { return true; }
  bool undo(const sa::proto::LocalCommand&) override { return true; }
  void resume() override {}
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario-file> [--loss P] [--dup P] [--fail-process ID]\n"
               "       [--trace-out FILE [--trace-format jsonl|chrome]] [--metrics-out FILE]\n"
               "       %s --fleet [--clusters N] [--threads N] [--lanes-per-leaf N]\n"
               "       [--fanout N] [--epoch-window USEC] [--seed S] [--trace-out FILE]\n"
               "       [--trace-full]\n"
               "       %s --dataplane [--streams N] [--packets N] [--seed S]\n"
               "       %s --distributed [--seed S] [--sa-node PATH] [--keep-workdir]\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

int bad_flag(const char* flag, const char* value, const char* expected) {
  std::fprintf(stderr, "sa_run: invalid value '%s' for %s (expected %s)\n", value, flag,
               expected);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sa;

  const char* path = nullptr;
  bool fleet = false;
  bool dataplane = false;
  bool distributed = false;
  core::DistributedOptions dist_options;
  video::PumpConfig pump_config;
  pump_config.streams = 2;
  pump_config.packets_per_stream = 100'000;
  core::FleetSpec fleet_spec;
  double loss = 0.0;
  double dup = 0.0;
  std::optional<config::ProcessId> fail_process;
  const char* trace_out = nullptr;
  std::string trace_format = "jsonl";
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--loss") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_double(value);
      if (!parsed || *parsed < 0.0 || *parsed > 1.0) {
        return bad_flag("--loss", value, "a probability in [0, 1]");
      }
      loss = *parsed;
    } else if (std::strcmp(argv[i], "--dup") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_double(value);
      if (!parsed || *parsed < 0.0 || *parsed > 1.0) {
        return bad_flag("--dup", value, "a probability in [0, 1]");
      }
      dup = *parsed;
    } else if (std::strcmp(argv[i], "--fail-process") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed) return bad_flag("--fail-process", value, "a process id");
      fail_process = static_cast<config::ProcessId>(*parsed);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-format") == 0 && i + 1 < argc) {
      trace_format = argv[++i];
      if (trace_format != "jsonl" && trace_format != "chrome") {
        return bad_flag("--trace-format", trace_format.c_str(), "jsonl or chrome");
      }
    } else if (std::strcmp(argv[i], "--trace-full") == 0) {
      fleet_spec.trace_full = true;
      // Full detail records every kind; give the rings timer/phase headroom.
      fleet_spec.trace_capacity = 1 << 12;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet = true;
    } else if (std::strcmp(argv[i], "--dataplane") == 0) {
      dataplane = true;
    } else if (std::strcmp(argv[i], "--distributed") == 0) {
      distributed = true;
    } else if (std::strcmp(argv[i], "--sa-node") == 0 && i + 1 < argc) {
      dist_options.sa_node = argv[++i];
    } else if (std::strcmp(argv[i], "--keep-workdir") == 0) {
      dist_options.keep_workdir = true;
    } else if (std::strcmp(argv[i], "--streams") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed || *parsed == 0) return bad_flag("--streams", value, "a positive count");
      pump_config.streams = static_cast<std::size_t>(*parsed);
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed || *parsed == 0) {
        return bad_flag("--packets", value, "a positive per-stream packet count");
      }
      pump_config.packets_per_stream = *parsed;
    } else if (std::strcmp(argv[i], "--clusters") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed || *parsed == 0) return bad_flag("--clusters", value, "a positive count");
      fleet_spec.clusters = static_cast<std::size_t>(*parsed);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed || *parsed == 0) return bad_flag("--threads", value, "a positive count");
      fleet_spec.threads = static_cast<std::size_t>(*parsed);
    } else if (std::strcmp(argv[i], "--lanes-per-leaf") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed || *parsed == 0) return bad_flag("--lanes-per-leaf", value, "a positive count");
      fleet_spec.lanes_per_leaf = static_cast<std::size_t>(*parsed);
    } else if (std::strcmp(argv[i], "--fanout") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed || *parsed < 2) return bad_flag("--fanout", value, "a fanout >= 2");
      fleet_spec.fanout = static_cast<std::size_t>(*parsed);
    } else if (std::strcmp(argv[i], "--epoch-window") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed) return bad_flag("--epoch-window", value, "a window in microseconds");
      fleet_spec.epoch_window = runtime::us(static_cast<std::int64_t>(*parsed));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      const auto parsed = util::parse_u64(value);
      if (!parsed) return bad_flag("--seed", value, "an unsigned seed");
      fleet_spec.seed = *parsed;
      pump_config.seed = *parsed;
      dist_options.seed = *parsed;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (distributed) {
    std::printf("distributed: 1 manager + 3 agents as sa_node processes over loopback\n");
    const core::DistributedReport report = core::run_distributed_paper(dist_options);
    for (const std::string& error : report.infra_errors) {
      std::fprintf(stderr, "sa_run: %s\n", error.c_str());
    }
    std::string actions;
    for (const std::string& action : report.committed_actions) {
      actions += (actions.empty() ? "" : ", ") + action;
    }
    std::printf("outcome: %s\nactions: %s\nfinal config bits: %llu\n",
                report.outcome.empty() ? "(none)" : report.outcome.c_str(), actions.c_str(),
                static_cast<unsigned long long>(report.final_config_bits));
    for (const auto& [name, state] : report.agent_states) {
      std::printf("agent %s: %s (%llu recoveries)\n", name.c_str(), state.c_str(),
                  static_cast<unsigned long long>(report.agent_recoveries.count(name)
                                                      ? report.agent_recoveries.at(name)
                                                      : 0));
    }
    std::printf("trace: %zu merged entries; wall %.0f ms\n", report.merged_trace.size(),
                report.wall_ms);
    if (!report.workdir.empty()) std::printf("workdir: %s\n", report.workdir.c_str());
    return report.infra_ok && report.outcome == "success" ? 0 : 1;
  }
  if (dataplane) {
    std::printf("dataplane: %zu stream(s) x %llu packets, DES-64 -> DES-128 on lane 0 mid-run\n",
                pump_config.streams,
                static_cast<unsigned long long>(pump_config.packets_per_stream));
    video::DataPlanePump pump(pump_config);
    pump.start();
    pump.adapt_lane(0, [](components::FilterChain& encode, components::FilterChain& decode) {
      // Paper order: widen the decoder before switching the encoder.
      decode.replace_filter("D1", crypto::make_decoder("D2", true, true));
      encode.replace_filter("E1", crypto::make_encoder_e2());
    });
    pump.run_to_completion();
    std::printf("%-6s %-10s %-10s %-10s %-12s %-10s %-12s %-12s %s\n", "lane", "delivered",
                "intact", "corrupted", "undecodable", "pps", "p99(us)", "blocked(us)",
                "windows");
    for (std::size_t lane = 0; lane < pump.streams(); ++lane) {
      const video::LaneReport r = pump.lane_report(lane);
      std::printf("%-6zu %-10llu %-10llu %-10llu %-12llu %-10.0f %-12.1f %-12.1f %llu\n", lane,
                  static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.intact),
                  static_cast<unsigned long long>(r.corrupted),
                  static_cast<unsigned long long>(r.undecodable), r.pps, r.p99_delay_us,
                  r.blocked_us, static_cast<unsigned long long>(r.blocked_windows));
    }
    const video::LaneReport total = pump.total_report();
    std::printf("total: %llu delivered, %llu intact, %llu corrupted, %.0f packets/s aggregate\n",
                static_cast<unsigned long long>(total.delivered),
                static_cast<unsigned long long>(total.intact),
                static_cast<unsigned long long>(total.corrupted), total.pps);
    const bool clean = total.corrupted == 0 && total.undecodable == 0 &&
                       total.intact == total.delivered &&
                       total.delivered == pump_config.streams * pump_config.packets_per_stream;
    std::printf("outcome: %s\n", clean ? "clean (every packet intact)" : "DISRUPTED");
    return clean ? 0 : 1;
  }
  if (fleet) {
    if (trace_out != nullptr) {
      if (trace_format != "jsonl") {
        std::fprintf(stderr, "sa_run: fleet traces support --trace-format jsonl only\n");
        return 2;
      }
      fleet_spec.trace = true;
    }
    const core::FleetReport report = core::run_fleet(fleet_spec);
    std::fputs(core::describe(report).c_str(), stdout);
    if (trace_out != nullptr) {
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", trace_out);
        return 1;
      }
      // Regions concatenate in index order, so the fleet trace is one file
      // that is bit-identical for any --threads value.
      for (const core::RegionReport& region : report.regions) out << region.trace_jsonl;
      std::printf("trace: %llu events (%llu dropped) -> %s (jsonl, %zu regions)\n",
                  static_cast<unsigned long long>(report.trace_events),
                  static_cast<unsigned long long>(report.trace_dropped), trace_out,
                  report.regions.size());
    }
    return report.success ? 0 : 1;
  }
  if (!path) return usage(argv[0]);

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  core::ParsedScenario scenario;
  try {
    scenario = core::parse_scenario(file);
  } catch (const core::ScenarioParseError& e) {
    std::fprintf(stderr, "%s: %s\n", path, e.what());
    return 1;
  }
  if (!scenario.source || !scenario.target) {
    std::fprintf(stderr, "%s: scenario must declare both source and target\n", path);
    return 1;
  }

  // Rebuild the scenario inside a SafeAdaptationSystem (the facade owns its
  // own registry) and attach one stub process per declared process id.
  core::SystemConfig system_config;
  system_config.control_channel.loss_probability = loss;
  system_config.control_channel.duplicate_probability = dup;
  if (loss > 0 || dup > 0) system_config.manager.message_retries = 8;
  core::SafeAdaptationSystem system(system_config);
  for (config::ComponentId id = 0; id < scenario.registry->size(); ++id) {
    const auto& info = scenario.registry->info(id);
    system.registry().add(info.name, info.process, info.description);
  }
  for (const auto& invariant : scenario.invariants->invariants()) {
    system.add_invariant(invariant.name, invariant.predicate->to_string());
  }
  const std::size_t n = scenario.registry->size();
  for (const auto& action : scenario.actions->actions()) {
    std::vector<std::string> removes;
    std::vector<std::string> adds;
    for (const auto id : action.removes.components(n)) removes.push_back(scenario.registry->name(id));
    for (const auto id : action.adds.components(n)) adds.push_back(scenario.registry->name(id));
    system.add_action(action.name, removes, adds, action.cost, action.description);
  }

  std::map<config::ProcessId, std::unique_ptr<StubProcess>> processes;
  for (const config::ProcessId process : scenario.registry->processes()) {
    auto stub = std::make_unique<StubProcess>();
    system.attach_process(process, *stub, static_cast<int>(process));
    processes.emplace(process, std::move(stub));
  }
  if (trace_out) system.tracer().set_enabled(true);
  system.finalize();
  system.set_current_configuration(*scenario.source);
  if (fail_process) system.agent(*fail_process).set_fail_to_reset(true);

  std::printf("adapting {%s} -> {%s}%s\n",
              scenario.source->describe(system.registry()).c_str(),
              scenario.target->describe(system.registry()).c_str(),
              fail_process ? " (with injected fail-to-reset)" : "");

  const auto result = system.adapt_and_wait(*scenario.target, 10'000'000);

  std::printf("%-10s %-6s %-8s %-12s %s\n", "time (ms)", "step", "action", "duration(ms)",
              "fate");
  for (const auto& record : system.manager().step_log()) {
    std::printf("%-10.2f %u.%u.%u  %-8s %-12.2f %s\n", record.started / 1000.0,
                record.ref.plan, record.ref.step_index, record.ref.attempt,
                record.action_name.c_str(), (record.finished - record.started) / 1000.0,
                record.committed ? "committed" : "rolled back");
  }
  std::printf("\noutcome: %s (%s)\n", std::string(proto::to_string(result.outcome)).c_str(),
              result.detail.c_str());
  std::printf("final configuration: {%s}%s\n",
              result.final_config.describe(system.registry()).c_str(),
              system.invariants().satisfied(result.final_config) ? " [safe]" : " [UNSAFE!]");
  std::printf("steps committed: %zu, step failures: %zu, retransmission rounds: %zu, "
              "virtual time: %.1f ms\n",
              result.steps_committed, result.step_failures, result.message_retries,
              (result.finished - result.started) / 1000.0);

  if (trace_out) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out);
      return 1;
    }
    if (trace_format == "chrome") {
      obs::write_chrome_trace(system.tracer(), out);
    } else {
      obs::write_jsonl(system.tracer(), out);
    }
    std::printf("trace: %zu events -> %s (%s)\n", system.tracer().size(), trace_out,
                trace_format.c_str());
  }
  if (metrics_out) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out);
      return 1;
    }
    obs::write_prometheus(system.metrics(), out);
    std::printf("metrics -> %s\n", metrics_out);
  }
  return result.outcome == proto::AdaptationOutcome::Success ? 0 : 1;
}
