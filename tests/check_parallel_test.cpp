// Parallel search engine (src/check/engine.hpp): the verdict and the
// dedup-invariant statistics must not depend on the worker-thread count.
//
// On a search that completes within its budgets every reachable state is
// expanded exactly once no matter how frames are interleaved across workers,
// so states_explored (edges), states_deduped, runs_completed, and the outcome
// histogram are invariants; these tests pin them across --threads 1, 2, and 8.
// max_depth_reached is deliberately NOT compared: which path reaches a shared
// state first is schedule-dependent, so the depth at which the dedup cut
// happens varies across thread counts.
//
// Test names contain "Parallel" so the CI ThreadSanitizer job picks them up.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "check/model.hpp"
#include "check/scenario.hpp"

namespace sa::check {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

ExploreResult run_with_threads(const Scenario& scenario, ExploreOptions options,
                               int threads) {
  options.threads = threads;
  return explore_dfs(scenario, options);
}

void expect_same_invariants(const ExploreResult& reference, const ExploreResult& result,
                            int threads) {
  EXPECT_EQ(result.complete, reference.complete) << "threads=" << threads;
  EXPECT_EQ(result.counterexample.has_value(), reference.counterexample.has_value())
      << "threads=" << threads;
  EXPECT_EQ(result.stats.states_explored, reference.stats.states_explored)
      << "threads=" << threads;
  EXPECT_EQ(result.stats.states_deduped, reference.stats.states_deduped)
      << "threads=" << threads;
  EXPECT_EQ(result.stats.runs_completed, reference.stats.runs_completed)
      << "threads=" << threads;
  EXPECT_EQ(result.stats.depth_capped, reference.stats.depth_capped)
      << "threads=" << threads;
  EXPECT_EQ(result.stats.outcomes, reference.stats.outcomes) << "threads=" << threads;
}

TEST(ParallelExplorer, TinyExhaustiveStatsInvariantAcrossThreadCounts) {
  const Scenario scenario = make_tiny_scenario();
  ExploreOptions options;
  options.max_depth = 300;
  options.max_states = 2'000'000;
  const ExploreResult reference = run_with_threads(scenario, options, 1);
  ASSERT_TRUE(reference.complete);
  ASSERT_FALSE(reference.counterexample.has_value());
  ASSERT_GT(reference.stats.runs_completed, 0U);
  for (const int threads : kThreadCounts) {
    expect_same_invariants(reference, run_with_threads(scenario, options, threads),
                           threads);
  }
}

TEST(ParallelExplorer, TinyWithDropBudgetStatsInvariantAcrossThreadCounts) {
  const Scenario scenario = make_tiny_scenario();
  ExploreOptions options;
  options.max_depth = 300;
  options.max_states = 3'000'000;
  options.drop_budget = 1;
  const ExploreResult reference = run_with_threads(scenario, options, 1);
  ASSERT_TRUE(reference.complete);
  ASSERT_FALSE(reference.counterexample.has_value());
  for (const int threads : kThreadCounts) {
    expect_same_invariants(reference, run_with_threads(scenario, options, threads),
                           threads);
  }
}

TEST(ParallelExplorer, RandomWalksBitIdenticalAcrossThreadCounts) {
  // explore_random dispenses run indices to workers but derives each walk's
  // RNG from (seed, run) and merges per-run deltas in run order, so the whole
  // result — not just the invariants — must match the sequential engine.
  const Scenario scenario = make_pair_scenario();
  ExploreOptions options;
  options.drop_budget = 1;
  options.dup_budget = 1;
  const ExploreResult reference = explore_random(scenario, options, /*seed=*/23,
                                                 /*runs=*/200);
  for (const int threads : kThreadCounts) {
    options.threads = threads;
    const ExploreResult result = explore_random(scenario, options, /*seed=*/23,
                                                /*runs=*/200);
    expect_same_invariants(reference, result, threads);
    EXPECT_EQ(result.stats.max_depth_reached, reference.stats.max_depth_reached)
        << "threads=" << threads;
  }
}

// --- mutations must still be caught in parallel mode -------------------------

TEST(ParallelExplorer, ResumeBeforeLastAdaptDoneCaughtAtEveryThreadCount) {
  const Scenario scenario = make_pair_scenario();
  ExploreOptions options;
  options.max_depth = 40;
  options.fault = proto::ManagerFault::ResumeBeforeLastAdaptDone;
  for (const int threads : kThreadCounts) {
    const ExploreResult result = run_with_threads(scenario, options, threads);
    ASSERT_TRUE(result.counterexample.has_value()) << "threads=" << threads;
    ASSERT_FALSE(result.counterexample->violations.empty()) << "threads=" << threads;
    EXPECT_NE(result.counterexample->violations.front().find("§4.3"), std::string::npos)
        << "threads=" << threads;
    // Whatever schedule won the race must replay to the same violation.
    options.threads = threads;
    const ReplayResult replayed =
        replay(scenario, options, result.counterexample->schedule);
    EXPECT_TRUE(replayed.schedule_valid) << "threads=" << threads;
    ASSERT_FALSE(replayed.violations.empty()) << "threads=" << threads;
    EXPECT_EQ(replayed.violations.front().description,
              result.counterexample->violations.front())
        << "threads=" << threads;
  }
}

TEST(ParallelExplorer, RollbackAfterResumeCaughtAtEveryThreadCount) {
  Scenario scenario = make_tiny_scenario();
  scenario.manager_config.message_retries = 0;
  scenario.manager_config.run_to_completion_retries = 0;
  ExploreOptions options;
  options.max_depth = 60;
  options.max_states = 500'000;
  options.drop_budget = 1;
  options.fault = proto::ManagerFault::RollbackAfterResume;
  for (const int threads : kThreadCounts) {
    const ExploreResult result = run_with_threads(scenario, options, threads);
    ASSERT_TRUE(result.counterexample.has_value()) << "threads=" << threads;
    ASSERT_FALSE(result.counterexample->violations.empty()) << "threads=" << threads;
    EXPECT_NE(result.counterexample->violations.front().find("§4.4"), std::string::npos)
        << "threads=" << threads;
    options.threads = threads;
    const ReplayResult replayed =
        replay(scenario, options, result.counterexample->schedule);
    EXPECT_TRUE(replayed.schedule_valid) << "threads=" << threads;
    ASSERT_FALSE(replayed.violations.empty()) << "threads=" << threads;
  }
}

TEST(ParallelExplorer, SequentialCounterexampleIsDeterministic) {
  // threads == 1 uses the lock-free sequential path: two runs must produce
  // the exact same counterexample schedule, and it must be minimal-or-equal
  // under the engine's canonical order versus any parallel winner.
  const Scenario scenario = make_pair_scenario();
  ExploreOptions options;
  options.max_depth = 40;
  options.fault = proto::ManagerFault::ResumeBeforeLastAdaptDone;
  const ExploreResult first = run_with_threads(scenario, options, 1);
  const ExploreResult second = run_with_threads(scenario, options, 1);
  ASSERT_TRUE(first.counterexample.has_value());
  ASSERT_TRUE(second.counterexample.has_value());
  ASSERT_EQ(first.counterexample->schedule.size(), second.counterexample->schedule.size());
  EXPECT_EQ(first.counterexample->schedule, second.counterexample->schedule);
  EXPECT_EQ(first.counterexample->violations, second.counterexample->violations);
}

TEST(ParallelExplorer, ZeroThreadsMeansHardwareConcurrency) {
  // --threads 0 must run (one worker per hardware thread) and agree with the
  // sequential invariants.
  const Scenario scenario = make_tiny_scenario();
  ExploreOptions options;
  options.max_depth = 300;
  options.max_states = 2'000'000;
  const ExploreResult reference = run_with_threads(scenario, options, 1);
  expect_same_invariants(reference, run_with_threads(scenario, options, 0), 0);
}

}  // namespace
}  // namespace sa::check
