// Wire-format conformance for the distributed backend (socket_runtime /
// wire.hpp):
//
//   * every registered Message subtype survives encode_frame -> decode_frame
//     with all fields intact (the cross-process equivalent of "the codec
//     registry is total and lossless");
//   * truncated, bit-flipped, and random-garbage frames are rejected with
//     WireError — never UB (this test runs under the ASan CI job);
//   * registry misuse (unknown type, conflicting re-registration) is a
//     logic_error, while idempotent re-registration is accepted;
//   * SocketTransport delivers over real loopback sockets: UDP for small
//     frames, the TCP fallback for frames above max_datagram, FIFO
//     watermarks, partition drops, and the malformed-datagram counter.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "components/packet.hpp"
#include "proto/messages.hpp"
#include "proto/wire_codecs.hpp"
#include "runtime/socket_runtime.hpp"
#include "runtime/wire.hpp"
#include "util/rng.hpp"
#include "video/server.hpp"
#include "video/wire_codecs.hpp"

namespace sa {
namespace {

using runtime::decode_frame;
using runtime::encode_frame;
using runtime::WireError;

class SocketWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::register_wire_codecs();
    video::register_wire_codecs();
  }
};

proto::StepRef make_step() {
  proto::StepRef step;
  step.request_id = 0x0123456789abcdefULL;
  step.plan = 3;
  step.step_index = 7;
  step.attempt = 2;
  return step;
}

/// Encodes at (from=1, to=2, incarnation=9, seq=42), decodes, checks the
/// header, and returns the decoded message downcast to T.
template <typename T>
std::shared_ptr<const T> round_trip(const T& msg) {
  const std::vector<std::uint8_t> frame = encode_frame(1, 2, 9, 42, msg);
  const runtime::WireFrame decoded = decode_frame(frame.data(), frame.size());
  EXPECT_EQ(decoded.from, 1u);
  EXPECT_EQ(decoded.to, 2u);
  EXPECT_EQ(decoded.incarnation, 9u);
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_NE(decoded.message, nullptr);
  EXPECT_EQ(decoded.message->type_name(), msg.type_name());
  auto typed = std::dynamic_pointer_cast<const T>(decoded.message);
  EXPECT_NE(typed, nullptr) << "decoded message has wrong dynamic type";
  return typed;
}

TEST_F(SocketWireTest, ResetRoundTrip) {
  proto::ResetMsg msg;
  msg.step = make_step();
  msg.command.remove = {"D4", "D1"};
  msg.command.add = {"D5", "D3", "E2"};
  msg.drain = true;
  msg.sole_participant = true;
  auto decoded = round_trip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->step, msg.step);
  EXPECT_EQ(decoded->command, msg.command);
  EXPECT_TRUE(decoded->drain);
  EXPECT_TRUE(decoded->sole_participant);
}

TEST_F(SocketWireTest, StepOnlyMessagesRoundTrip) {
  const proto::StepRef step = make_step();
  auto check = [&](auto msg) {
    msg.step = step;
    auto decoded = round_trip(msg);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->step, step);
    EXPECT_EQ(decoded->kind(), msg.kind());
  };
  check(proto::ResetDoneMsg{});
  check(proto::AdaptDoneMsg{});
  check(proto::ResumeMsg{});
  check(proto::RollbackMsg{});
  check(proto::RollbackDoneMsg{});
}

TEST_F(SocketWireTest, ResumeDoneCarriesBlockedTime) {
  proto::ResumeDoneMsg msg;
  msg.step = make_step();
  msg.blocked_for = runtime::ms(1234);
  auto decoded = round_trip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->step, msg.step);
  EXPECT_EQ(decoded->blocked_for, msg.blocked_for);
}

TEST_F(SocketWireTest, EpochCommitRoundTrip) {
  proto::EpochCommitMsg msg;
  msg.epoch = 17;
  msg.ctx.ticket = 0x1111;
  msg.ctx.epoch = 17;
  msg.ctx.parent_span = 0xdeadbeefULL;
  msg.targets.push_back({0, config::Configuration(0b0100101)});
  msg.targets.push_back({3, config::Configuration(0b1010010)});
  auto decoded = round_trip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->epoch, 17u);
  EXPECT_EQ(decoded->ctx, msg.ctx);
  ASSERT_EQ(decoded->targets.size(), 2u);
  EXPECT_EQ(decoded->targets[0], msg.targets[0]);
  EXPECT_EQ(decoded->targets[1], msg.targets[1]);
}

TEST_F(SocketWireTest, EpochDoneRoundTrip) {
  proto::EpochDoneMsg msg;
  msg.epoch = 9;
  msg.ctx.ticket = 5;
  proto::ShardOutcome ok;
  ok.shard = 1;
  ok.reported = true;
  ok.result.outcome = proto::AdaptationOutcome::Success;
  ok.result.final_config = config::Configuration(82);
  ok.result.steps_committed = 5;
  ok.result.step_failures = 1;
  ok.result.plans_tried = 2;
  ok.result.message_retries = 3;
  ok.result.started = runtime::ms(10);
  ok.result.finished = runtime::ms(250);
  ok.result.detail = "MAP A2, A17, A1, A16, A4";
  proto::ShardOutcome orphan;
  orphan.shard = 2;
  orphan.reported = false;
  orphan.result.outcome = proto::AdaptationOutcome::UserInterventionRequired;
  msg.outcomes = {ok, orphan};
  auto decoded = round_trip(msg);
  ASSERT_NE(decoded, nullptr);
  ASSERT_EQ(decoded->outcomes.size(), 2u);
  const proto::ShardOutcome& a = decoded->outcomes[0];
  EXPECT_EQ(a.shard, 1u);
  EXPECT_TRUE(a.reported);
  EXPECT_EQ(a.result.outcome, proto::AdaptationOutcome::Success);
  EXPECT_EQ(a.result.final_config.bits(), 82u);
  EXPECT_EQ(a.result.steps_committed, 5u);
  EXPECT_EQ(a.result.step_failures, 1u);
  EXPECT_EQ(a.result.plans_tried, 2u);
  EXPECT_EQ(a.result.message_retries, 3u);
  EXPECT_EQ(a.result.started, runtime::ms(10));
  EXPECT_EQ(a.result.finished, runtime::ms(250));
  EXPECT_EQ(a.result.detail, "MAP A2, A17, A1, A16, A4");
  const proto::ShardOutcome& b = decoded->outcomes[1];
  EXPECT_EQ(b.shard, 2u);
  EXPECT_FALSE(b.reported);
  EXPECT_EQ(b.result.outcome, proto::AdaptationOutcome::UserInterventionRequired);
}

TEST_F(SocketWireTest, VideoPacketRoundTrip) {
  video::PacketMsg msg;
  components::Payload payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  msg.packet = components::Packet::make(4, 99, payload);
  msg.packet.encoding_stack.push_back("des64");
  msg.packet.encoding_stack.push_back("fec:4");
  auto decoded = round_trip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->packet.stream_id, 4u);
  EXPECT_EQ(decoded->packet.sequence, 99u);
  EXPECT_EQ(decoded->packet.payload, payload);
  EXPECT_EQ(decoded->packet.plaintext_checksum, msg.packet.plaintext_checksum);
  ASSERT_EQ(decoded->packet.encoding_stack.size(), 2u);
  EXPECT_EQ(decoded->packet.encoding_stack[0], "des64");
  EXPECT_EQ(decoded->packet.encoding_stack[1], "fec:4");
}

// --- hostile input -----------------------------------------------------------

std::vector<std::uint8_t> sample_frame() {
  proto::ResetMsg msg;
  msg.step = make_step();
  msg.command.remove = {"D4"};
  msg.command.add = {"D5", "D3"};
  msg.drain = true;
  return encode_frame(1, 2, 9, 42, msg);
}

TEST_F(SocketWireTest, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> frame = sample_frame();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_THROW(decode_frame(frame.data(), len), WireError)
        << "prefix of length " << len << " was not rejected";
  }
  // The full frame still decodes (the loop above did not corrupt it).
  EXPECT_NO_THROW(decode_frame(frame.data(), frame.size()));
}

TEST_F(SocketWireTest, TrailingBytesAreRejected) {
  std::vector<std::uint8_t> frame = sample_frame();
  frame.push_back(0);
  EXPECT_THROW(decode_frame(frame.data(), frame.size()), WireError);
}

TEST_F(SocketWireTest, BadMagicVersionAndCodecAreRejected) {
  const std::vector<std::uint8_t> good = sample_frame();

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(decode_frame(bad_magic.data(), bad_magic.size()), WireError);

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] = runtime::kWireVersion + 1;
  EXPECT_THROW(decode_frame(bad_version.data(), bad_version.size()), WireError);

  std::vector<std::uint8_t> bad_codec = good;
  bad_codec[5] = 0xff;  // codec id low byte -> unregistered id
  bad_codec[6] = 0xff;
  EXPECT_THROW(decode_frame(bad_codec.data(), bad_codec.size()), WireError);
}

TEST_F(SocketWireTest, BitFlipFuzzNeverCrashes) {
  // Flip every single bit of a valid frame: decode must either succeed or
  // throw WireError. Anything else (another exception type, a crash, ASan
  // report) fails the test.
  const std::vector<std::uint8_t> good = sample_frame();
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutant = good;
      mutant[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        (void)decode_frame(mutant.data(), mutant.size());
      } catch (const WireError&) {
        // expected rejection path
      }
    }
  }
}

TEST_F(SocketWireTest, RandomGarbageNeverCrashes) {
  util::Rng rng(0xfeedfaceULL);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> garbage(rng.next_below(200));
    for (std::uint8_t& b : garbage) b = static_cast<std::uint8_t>(rng.next_below(256));
    // Half the samples get a valid magic + version prefix so decoding reaches
    // the deeper header / payload validation paths.
    if (garbage.size() >= 5 && i % 2 == 0) {
      std::memcpy(garbage.data(), &runtime::kWireMagic, 4);
      garbage[4] = runtime::kWireVersion;
    }
    try {
      (void)decode_frame(garbage.data(), garbage.size());
    } catch (const WireError&) {
    }
  }
}

TEST_F(SocketWireTest, RegistryRejectsMisuse) {
  struct UnregisteredMsg final : runtime::Message {
    std::string type_name() const override { return "no-such-codec"; }
  };
  EXPECT_THROW(encode_frame(0, 1, 0, 0, UnregisteredMsg{}), std::logic_error);

  // Idempotent re-registration of an already-registered hook is a no-op...
  EXPECT_NO_THROW(proto::register_wire_codecs());
  EXPECT_NO_THROW(video::register_wire_codecs());
  // ...but claiming a taken id for a different type is a programming error.
  EXPECT_THROW(runtime::register_wire_codec(
                   1, "imposter", [](const runtime::Message&, runtime::WireWriter&) {},
                   [](runtime::WireReader&) -> runtime::MessagePtr { return nullptr; }),
               std::logic_error);
  EXPECT_TRUE(runtime::wire_codec_registered(1));
  EXPECT_FALSE(runtime::wire_codec_registered(0x7777));
}

// --- SocketTransport over real loopback sockets ------------------------------

/// Collects deliveries to one node, with a condition variable so tests can
/// wait for real network latency without sleeping blind.
class Inbox {
 public:
  runtime::ReceiveHandler handler() {
    return [this](runtime::NodeId from, runtime::MessagePtr msg) {
      std::lock_guard<std::mutex> lock(mutex_);
      received_.push_back({from, std::move(msg)});
      cv_.notify_all();
    };
  }

  bool wait_for_count(std::size_t n, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return received_.size() >= n; });
  }

  std::vector<std::pair<runtime::NodeId, runtime::MessagePtr>> snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    return received_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::pair<runtime::NodeId, runtime::MessagePtr>> received_;
};

std::shared_ptr<proto::ResetDoneMsg> step_msg(std::uint32_t step_index) {
  auto msg = std::make_shared<proto::ResetDoneMsg>();
  msg->step.request_id = 1;
  msg->step.step_index = step_index;
  return msg;
}

/// Both endpoints hosted by one transport in this process — the sockets and
/// receiver thread are exactly the cross-process machinery, just loopback.
class SocketTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::register_wire_codecs();
    video::register_wire_codecs();
    runtime::SocketTransportOptions options;
    options.topology = {{"alpha", 0}, {"beta", 0}};
    options.local = {0, 1};
    options.seed = 7;
    transport = std::make_unique<runtime::SocketTransport>(std::move(options));
    a = transport->add_node("alpha", inbox_a.handler());
    b = transport->add_node("beta", inbox_b.handler());
    transport->connect_bidirectional(a, b);
  }

  std::unique_ptr<runtime::SocketTransport> transport;
  Inbox inbox_a, inbox_b;
  runtime::NodeId a = 0, b = 0;
};

TEST_F(SocketTransportTest, DeliversSmallFramesOverUdp) {
  ASSERT_TRUE(transport->send(a, b, step_msg(1)));
  ASSERT_TRUE(transport->send(a, b, step_msg(2)));
  ASSERT_TRUE(inbox_b.wait_for_count(2, std::chrono::seconds(5)));
  auto received = inbox_b.snapshot();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].first, a);
  auto first = std::dynamic_pointer_cast<const proto::ResetDoneMsg>(received[0].second);
  auto second = std::dynamic_pointer_cast<const proto::ResetDoneMsg>(received[1].second);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  // FIFO channel contract holds over the wire.
  EXPECT_EQ(first->step.step_index, 1u);
  EXPECT_EQ(second->step.step_index, 2u);
  const runtime::ChannelStats stats = transport->channel_stats(a, b);
  EXPECT_EQ(stats.sent, 2u);
  EXPECT_EQ(stats.delivered, 2u);
}

TEST_F(SocketTransportTest, LargeFramesUseTcpFallback) {
  auto msg = std::make_shared<video::PacketMsg>();
  components::Payload payload(200'000);  // far above max_datagram = 60'000
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  msg->packet = components::Packet::make(1, 5, payload);
  ASSERT_TRUE(transport->send(a, b, msg));
  ASSERT_TRUE(inbox_b.wait_for_count(1, std::chrono::seconds(5)));
  auto received = inbox_b.snapshot();
  auto packet = std::dynamic_pointer_cast<const video::PacketMsg>(received[0].second);
  ASSERT_NE(packet, nullptr);
  EXPECT_EQ(packet->packet.payload, payload);
  EXPECT_TRUE(packet->packet.intact());
}

TEST_F(SocketTransportTest, PartitionDropsInsteadOfDelivering) {
  transport->partition_node(b, true);
  // send() reports the drop (false), mirroring the other backends' contract.
  EXPECT_FALSE(transport->send(a, b, step_msg(1)));
  EXPECT_FALSE(inbox_b.wait_for_count(1, std::chrono::milliseconds(200)));
  EXPECT_EQ(transport->channel_stats(a, b).dropped_partition, 1u);

  transport->partition_node(b, false);
  ASSERT_TRUE(transport->send(a, b, step_msg(2)));
  ASSERT_TRUE(inbox_b.wait_for_count(1, std::chrono::seconds(5)));
  auto received = inbox_b.snapshot();
  auto msg = std::dynamic_pointer_cast<const proto::ResetDoneMsg>(received[0].second);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->step.step_index, 2u);
}

TEST_F(SocketTransportTest, DuplicationDeliversExtraCopies) {
  transport->set_extra_duplication(1.0);  // every frame sent twice
  ASSERT_TRUE(transport->send(a, b, step_msg(1)));
  ASSERT_TRUE(inbox_b.wait_for_count(2, std::chrono::seconds(5)));
  transport->set_extra_duplication(0.0);
  // Duplicates carry fresh sequence numbers, so the FIFO watermark passes
  // both through — deduplication is the protocol drivers' job (by StepRef).
  EXPECT_GE(inbox_b.snapshot().size(), 2u);
}

TEST_F(SocketTransportTest, MalformedDatagramsAreCountedAndDropped) {
  // Throw raw garbage at the node's real UDP port; the receiver must count it
  // as malformed and keep serving well-formed traffic.
  const std::uint16_t port = transport->local_port(b);
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const char garbage[] = "definitely not a SADP frame";
  ASSERT_GT(::sendto(fd, garbage, sizeof(garbage), 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);

  ASSERT_TRUE(transport->send(a, b, step_msg(7)));
  ASSERT_TRUE(inbox_b.wait_for_count(1, std::chrono::seconds(5)));
  // The garbage datagram raced the real one; poll until the counter settles.
  for (int i = 0; i < 500 && transport->malformed_frames() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(transport->malformed_frames(), 1u);
  auto received = inbox_b.snapshot();
  ASSERT_EQ(received.size(), 1u);
  auto msg = std::dynamic_pointer_cast<const proto::ResetDoneMsg>(received[0].second);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->step.step_index, 7u);
}

TEST_F(SocketTransportTest, TraceRecordsWallClockDeliveries) {
  transport->set_tracing(true);
  const runtime::Time before = runtime::wall_clock_us();
  ASSERT_TRUE(transport->send(a, b, step_msg(1)));
  ASSERT_TRUE(inbox_b.wait_for_count(1, std::chrono::seconds(5)));
  transport->set_tracing(false);
  const runtime::Time after = runtime::wall_clock_us();
  const std::vector<runtime::TraceEntry>& trace = transport->trace();
  ASSERT_FALSE(trace.empty());
  const runtime::TraceEntry& entry = trace.back();
  EXPECT_EQ(entry.from, a);
  EXPECT_EQ(entry.to, b);
  EXPECT_EQ(entry.type, "reset done");
  EXPECT_TRUE(entry.delivered);
  EXPECT_GE(entry.time, before);
  EXPECT_LE(entry.time, after);
}

}  // namespace
}  // namespace sa
