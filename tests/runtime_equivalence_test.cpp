#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "proto/manager.hpp"
#include "runtime/threaded_runtime.hpp"

namespace sa::core {
namespace {

struct StubProcess : proto::AdaptableProcess {
  std::atomic<int> applies{0};
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override {
    ++applies;
    return true;
  }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override { return; }
};

/// What both backends must agree on for the paper's 64->128-bit request.
struct BackendRun {
  proto::AdaptationOutcome outcome;
  std::string final_config;
  std::size_t steps_committed = 0;
  std::size_t step_failures = 0;
  std::vector<std::string> actions;
  double wall_ms = 0.0;
};

BackendRun run_paper_request(SafeAdaptationSystem& system) {
  configure_paper_system(system);
  StubProcess server, handheld, laptop;
  system.attach_process(kServerProcess, server, /*stage=*/0);
  system.attach_process(kHandheldProcess, handheld, /*stage=*/1);
  system.attach_process(kLaptopProcess, laptop, /*stage=*/1);
  system.finalize();
  system.set_current_configuration(paper_source(system.registry()));

  const auto start = std::chrono::steady_clock::now();
  const auto result = system.adapt_and_wait(paper_target(system.registry()));
  const auto elapsed = std::chrono::steady_clock::now() - start;

  BackendRun run;
  run.outcome = result.outcome;
  run.final_config = result.final_config.describe(system.registry());
  run.steps_committed = result.steps_committed;
  run.step_failures = result.step_failures;
  for (const proto::StepRecord& record : system.manager().step_log()) {
    run.actions.push_back(record.action_name);
  }
  run.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed).count();
  return run;
}

TEST(RuntimeEquivalence, PaperScenarioAgreesAcrossBackends) {
  // Deterministic simulator backend (owned by the facade).
  SafeAdaptationSystem sim_system;
  const BackendRun sim_run = run_paper_request(sim_system);

  // Real-thread backend.
  runtime::ThreadedRuntime rt({.workers = 4, .seed = 42});
  SafeAdaptationSystem threaded_system(rt);
  const BackendRun threaded_run = run_paper_request(threaded_system);
  rt.shutdown();

  EXPECT_EQ(sim_run.outcome, proto::AdaptationOutcome::Success);
  EXPECT_EQ(threaded_run.outcome, sim_run.outcome);
  EXPECT_EQ(threaded_run.final_config, sim_run.final_config);
  EXPECT_EQ(threaded_run.steps_committed, sim_run.steps_committed);
  EXPECT_EQ(threaded_run.step_failures, sim_run.step_failures);
  EXPECT_EQ(threaded_run.actions, sim_run.actions);
  EXPECT_EQ(sim_run.actions, (std::vector<std::string>{"A2", "A17", "A1", "A16", "A4"}));

  // Recorded in EXPERIMENTS.md ("Runtime backends"); the threaded number is
  // real wall-clock spent inside latency-bearing timers and is expected to
  // dwarf the simulator's.
  std::printf("[equivalence] sim backend: %.1f ms wall, threaded backend: %.1f ms wall\n",
              sim_run.wall_ms, threaded_run.wall_ms);
}

TEST(RuntimeEquivalence, ThreadedBackendRejectsSimulatorEscapeHatches) {
  runtime::ThreadedRuntime rt;
  SafeAdaptationSystem system(rt);
  EXPECT_THROW(system.simulator(), std::logic_error);
  EXPECT_THROW(system.network(), std::logic_error);
  EXPECT_EQ(system.runtime().backend_name(), "threaded");
  rt.shutdown();
}

}  // namespace
}  // namespace sa::core
