// Thread-safety of the global logging configuration: ThreadedRuntime workers
// log through a capturing sink while the main thread flips the level and
// swaps sinks. Run under TSan by the CI concurrency job (suite name carries
// "Threaded" so the ctest -R 'Threaded|RuntimeEquivalence' filter picks it
// up); any unguarded access to the level, the sink, or the sink's capture
// buffer is a reported race.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/threaded_runtime.hpp"
#include "util/log.hpp"

namespace sa::util {
namespace {

struct CapturingSink {
  std::mutex mutex;
  std::vector<std::string> lines;

  LogSink as_sink() {
    return [this](LogLevel, std::string_view component, std::string_view message) {
      std::lock_guard lock(mutex);
      lines.emplace_back(std::string(component) + ": " + std::string(message));
    };
  }
};

TEST(ThreadedLogSink, ConcurrentLoggingWhileReconfiguring) {
  const LogLevel previous = log_level();
  CapturingSink sink_a;
  CapturingSink sink_b;
  set_log_level(LogLevel::Info);
  set_log_sink(sink_a.as_sink());

  runtime::ThreadedRuntime rt({.workers = 4, .seed = 7});
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.executor().post([i, &done] {
      SA_INFO("worker") << "task " << i;
      SA_DEBUG("worker") << "usually filtered " << i;
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Reconfigure concurrently with the logging workers.
  while (done.load(std::memory_order_relaxed) < kTasks) {
    set_log_level(LogLevel::Debug);
    set_log_sink(sink_b.as_sink());
    set_log_level(LogLevel::Info);
    set_log_sink(sink_a.as_sink());
  }
  rt.shutdown();

  // Every Info record landed in one of the two sinks (never dropped, never
  // torn); Debug records only appear from the brief Debug windows.
  std::size_t info_records = 0;
  for (CapturingSink* sink : {&sink_a, &sink_b}) {
    std::lock_guard lock(sink->mutex);
    for (const std::string& line : sink->lines) {
      EXPECT_EQ(line.rfind("worker: ", 0), 0u) << line;
      info_records += line.find("task ") != std::string::npos;
    }
  }
  EXPECT_EQ(info_records, static_cast<std::size_t>(kTasks));

  reset_log_sink();
  set_log_level(previous);
}

}  // namespace
}  // namespace sa::util
