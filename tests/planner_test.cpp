#include <gtest/gtest.h>

#include "actions/planner.hpp"
#include "config/enumerate.hpp"

namespace sa::actions {
namespace {

/// Full paper scenario (Table 2 action set) rebuilt locally so this test only
/// depends on sa_actions/sa_config.
struct Fixture {
  config::ComponentRegistry registry;
  config::InvariantSet invariants{registry};
  ActionTable table{registry};
  std::vector<config::Configuration> safe;

  Fixture() {
    registry.add("E1", 0);
    registry.add("E2", 0);
    registry.add("D1", 1);
    registry.add("D2", 1);
    registry.add("D3", 1);
    registry.add("D4", 2);
    registry.add("D5", 2);
    invariants.add("resource constraint", "one(D1, D2, D3)");
    invariants.add("security constraint", "one(E1, E2)");
    invariants.add("E1 dependency", "E1 -> (D1 | D2) & D4");
    invariants.add("E2 dependency", "E2 -> (D3 | D2) & D5");

    table.add("A1", {"E1"}, {"E2"}, 10);
    table.add("A2", {"D1"}, {"D2"}, 10);
    table.add("A3", {"D1"}, {"D3"}, 10);
    table.add("A4", {"D2"}, {"D3"}, 10);
    table.add("A5", {"D4"}, {"D5"}, 10);
    table.add("A6", {"D1", "E1"}, {"D2", "E2"}, 100);
    table.add("A7", {"D1", "E1"}, {"D3", "E2"}, 100);
    table.add("A8", {"D2", "E1"}, {"D3", "E2"}, 100);
    table.add("A9", {"D4", "E1"}, {"D5", "E2"}, 100);
    table.add("A10", {"D1", "D4"}, {"D2", "D5"}, 50);
    table.add("A11", {"D1", "D4"}, {"D3", "D5"}, 50);
    table.add("A12", {"D2", "D4"}, {"D3", "D5"}, 50);
    table.add("A13", {"D1", "D4", "E1"}, {"D2", "D5", "E2"}, 150);
    table.add("A14", {"D1", "D4", "E1"}, {"D3", "D5", "E2"}, 150);
    table.add("A15", {"D2", "D4", "E1"}, {"D3", "D5", "E2"}, 150);
    table.add("A16", {"D4"}, {}, 10);
    table.add("A17", {}, {"D5"}, 10);

    safe = config::enumerate_safe_exhaustive(invariants);
  }

  config::Configuration source() const {
    return config::Configuration::from_bit_string("0100101", registry.size());
  }
  config::Configuration target() const {
    return config::Configuration::from_bit_string("1010010", registry.size());
  }
};

TEST(Planner, PaperMinimumAdaptationPath) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);

  const auto plan = planner.minimum_path(f.source(), f.target());
  ASSERT_TRUE(plan.has_value());
  // §5.1: "the shortest path, which in this example, has cost 50 ms:
  // A2, A17, A1, A16, A4."
  EXPECT_DOUBLE_EQ(plan->total_cost, 50.0);
  EXPECT_EQ(plan->action_names(f.table), "A2, A17, A1, A16, A4");
  EXPECT_EQ(plan->source(), f.source());
  EXPECT_EQ(plan->target(), f.target());
  EXPECT_EQ(plan->steps.size(), 5U);
}

TEST(Planner, StepsChainConfigurations) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);
  const auto plan = planner.minimum_path(f.source(), f.target());
  ASSERT_TRUE(plan.has_value());
  for (std::size_t i = 0; i + 1 < plan->steps.size(); ++i) {
    EXPECT_EQ(plan->steps[i].to, plan->steps[i + 1].from);
  }
  for (const PlanStep& step : plan->steps) {
    const AdaptiveAction& action = f.table.action(step.action);
    EXPECT_TRUE(action.applicable_to(step.from));
    EXPECT_EQ(action.apply(step.from), step.to);
    EXPECT_DOUBLE_EQ(step.cost, action.cost);
  }
}

TEST(Planner, EveryIntermediateConfigurationIsSafe) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);
  const auto plan = planner.minimum_path(f.source(), f.target());
  ASSERT_TRUE(plan.has_value());
  for (const PlanStep& step : plan->steps) {
    EXPECT_TRUE(f.invariants.satisfied(step.from));
    EXPECT_TRUE(f.invariants.satisfied(step.to));
  }
}

TEST(Planner, UnsafeEndpointsRejected) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);
  const config::Configuration unsafe = config::Configuration::of(f.registry, {"D1", "D2"});
  EXPECT_FALSE(planner.minimum_path(unsafe, f.target()).has_value());
  EXPECT_FALSE(planner.minimum_path(f.source(), unsafe).has_value());
}

TEST(Planner, RankedPathsOrderedAndDistinct) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);
  const auto plans = planner.ranked_paths(f.source(), f.target(), 5);
  ASSERT_GE(plans.size(), 2U);
  EXPECT_DOUBLE_EQ(plans[0].total_cost, 50.0);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_GE(plans[i].total_cost, plans[i - 1].total_cost);
    EXPECT_NE(plans[i].steps, plans[i - 1].steps);
  }
}

TEST(Planner, SecondMinimumPathDiffersFromMap) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);
  const auto plans = planner.ranked_paths(f.source(), f.target(), 2);
  ASSERT_EQ(plans.size(), 2U);
  // The 50ms cost is achieved by more than one action sequence (e.g.
  // A17, A2, A1, A16, A4 permutes the first two steps), so the second path
  // may tie on cost — but it must be a different sequence.
  EXPECT_GE(plans[1].total_cost, 50.0);
  EXPECT_NE(plans[1].steps, plans[0].steps);
}

TEST(Planner, ReturnToSourcePathExists) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);
  // From any intermediate configuration of the MAP there must be a way back
  // to the source — the paper's strategy (3) relies on it. Note the action
  // table is asymmetric (e.g. nothing reinstalls D1), so "back" may be
  // impossible from some nodes; verify the planner reports it truthfully.
  const auto plan = planner.minimum_path(f.source(), f.target());
  ASSERT_TRUE(plan.has_value());
  for (const PlanStep& step : plan->steps) {
    const auto back = planner.minimum_path(step.to, f.source());
    if (back) {
      EXPECT_EQ(back->source(), step.to);
      EXPECT_EQ(back->target(), f.source());
    }
  }
}

TEST(Planner, EmptyPlanForIdenticalEndpoints) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);
  const auto plan = planner.minimum_path(f.source(), f.source());
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
  EXPECT_DOUBLE_EQ(plan->total_cost, 0.0);
}

TEST(Planner, ActionNamesEmptyForEmptyPlan) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  const PathPlanner planner(sag);
  const auto plan = planner.minimum_path(f.source(), f.source());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->action_names(f.table), "");
  EXPECT_THROW(plan->source(), std::logic_error);
}

TEST(Planner, PaperFigure4GraphShape) {
  Fixture f;
  const SafeAdaptationGraph sag(f.table, f.safe);
  EXPECT_EQ(sag.node_count(), 8U);  // Table 1's eight safe configurations

  // Spot-check edges the paper draws in Figure 4.
  const PathPlanner planner(sag);
  struct ExpectedEdge {
    const char* from;
    const char* to;
    const char* action;
  };
  const ExpectedEdge expected[] = {
      {"0100101", "0101001", "A2"},   // (D4,D1,E1) --A2--> (D4,D2,E1)
      {"0100101", "1100101", "A17"},  // +D5
      {"0101001", "1101001", "A17"},  // +D5
      {"1101001", "1101010", "A1"},   // E1 -> E2
      {"1101010", "1001010", "A16"},  // -D4
      {"1001010", "1010010", "A4"},   // D2 -> D3
      {"0100101", "1010010", "A14"},  // (D1,D4,E1) -> (D3,D5,E2)
      {"1100101", "1110010", "A7"},   // (D1,E1) -> (D3,E2)
      {"1101010", "1110010", "A4"},
      {"1110010", "1010010", "A16"},
  };
  for (const ExpectedEdge& e : expected) {
    const auto from =
        sag.node_of(config::Configuration::from_bit_string(e.from, f.registry.size()));
    const auto to = sag.node_of(config::Configuration::from_bit_string(e.to, f.registry.size()));
    ASSERT_TRUE(from && to) << e.from << " -> " << e.to;
    bool found = false;
    for (const graph::EdgeId edge : sag.graph().out_edges(*from)) {
      if (sag.graph().edge(edge).to == *to && sag.action_of_edge(edge).name == e.action) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << e.from << " --" << e.action << "--> " << e.to;
  }
}

}  // namespace
}  // namespace sa::actions
