// CoordinatorCore in isolation: the sans-I/O epoch pipeline stepped by hand,
// no runtime, no transport — inputs in, outputs out.
#include "proto/core/coordinator_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "proto/messages.hpp"

namespace {

using namespace sa;
using proto::CoordinatorCore;
using proto::CoordinatorInput;
using proto::CoordinatorPhase;
using proto::CoordinatorTimer;
using proto::Output;
using proto::OutputKind;

config::Configuration cfg(std::uint64_t bits) { return config::Configuration(bits); }

CoordinatorInput submit(std::uint64_t ticket, std::vector<proto::ShardTarget> targets,
                        runtime::Time now = 0) {
  return CoordinatorInput{now, CoordinatorInput::SubmitRequest{ticket, std::move(targets)}};
}

CoordinatorInput epoch_fires(runtime::Time now = 0) {
  return CoordinatorInput{now, CoordinatorInput::TimerFired{CoordinatorTimer::Epoch}};
}

CoordinatorInput commit_fires(runtime::Time now = 0) {
  return CoordinatorInput{now, CoordinatorInput::TimerFired{CoordinatorTimer::Commit}};
}

CoordinatorInput shard_done(std::uint64_t epoch, std::uint32_t shard,
                            proto::AdaptationOutcome outcome = proto::AdaptationOutcome::Success,
                            runtime::Time now = 0) {
  proto::AdaptationResult result;
  result.outcome = outcome;
  return CoordinatorInput{now, CoordinatorInput::ShardFinished{epoch, shard, result}};
}

std::vector<const Output*> of_kind(const std::vector<Output>& outputs, OutputKind kind) {
  std::vector<const Output*> found;
  for (const Output& output : outputs) {
    if (output.kind == kind) found.push_back(&output);
  }
  return found;
}

const Output* first_of(const std::vector<Output>& outputs, OutputKind kind) {
  const auto found = of_kind(outputs, kind);
  return found.empty() ? nullptr : found.front();
}

TEST(CoordinatorCoreTest, SubmitOpensEpochAndArmsWindow) {
  CoordinatorCore core;
  core.add_local_shard(0, 0);
  const auto out = core.step(submit(1, {{0, cfg(1)}}));
  EXPECT_EQ(core.phase(), CoordinatorPhase::Batching);
  const Output* opened = first_of(out, OutputKind::EpochOpened);
  ASSERT_NE(opened, nullptr);
  EXPECT_EQ(opened->epoch, 1U);
  const Output* arm = first_of(out, OutputKind::ArmTimer);
  ASSERT_NE(arm, nullptr);
  EXPECT_EQ(arm->ctimer, CoordinatorTimer::Epoch);
}

TEST(CoordinatorCoreTest, SameShardTargetsCoalesceLaterWins) {
  CoordinatorCore core;
  core.add_local_shard(0, 0);
  core.step(submit(1, {{0, cfg(1)}}));
  core.step(submit(2, {{0, cfg(2)}}));  // same shard, same window: later wins
  const auto out = core.step(epoch_fires());

  const Output* sealed = first_of(out, OutputKind::EpochSealed);
  ASSERT_NE(sealed, nullptr);
  EXPECT_EQ(sealed->value, 1.0);  // one shard in the batch
  EXPECT_EQ(sealed->extra, 1.0);  // one coalesced submission

  const auto executes = of_kind(out, OutputKind::ExecuteShard);
  ASSERT_EQ(executes.size(), 1U);
  EXPECT_EQ(executes[0]->shard, 0U);
  EXPECT_EQ(executes[0]->config, cfg(2));  // the later target
}

TEST(CoordinatorCoreTest, SealPartitionsBatchAcrossChildrenAndLanes) {
  CoordinatorCore core;
  const std::size_t left = core.add_child({0, 1});
  const std::size_t right = core.add_child({2});
  core.add_local_shard(3, 0);
  core.step(submit(1, {{0, cfg(1)}, {1, cfg(2)}, {2, cfg(4)}, {3, cfg(8)}}));
  const auto out = core.step(epoch_fires());

  const auto sends = of_kind(out, OutputKind::Send);
  ASSERT_EQ(sends.size(), 2U);  // one EpochCommitMsg per involved child
  for (const Output* send : sends) {
    const auto* commit = dynamic_cast<const proto::EpochCommitMsg*>(send->message.get());
    ASSERT_NE(commit, nullptr);
    EXPECT_EQ(commit->epoch, 1U);
    if (send->process == static_cast<config::ProcessId>(left)) {
      ASSERT_EQ(commit->targets.size(), 2U);  // exactly its covered slice
      EXPECT_EQ(commit->targets[0].shard, 0U);
      EXPECT_EQ(commit->targets[1].shard, 1U);
    } else {
      EXPECT_EQ(send->process, static_cast<config::ProcessId>(right));
      ASSERT_EQ(commit->targets.size(), 1U);
      EXPECT_EQ(commit->targets[0].shard, 2U);
    }
  }
  const auto executes = of_kind(out, OutputKind::ExecuteShard);
  ASSERT_EQ(executes.size(), 1U);  // the local lane starts immediately
  EXPECT_EQ(executes[0]->shard, 3U);
}

TEST(CoordinatorCoreTest, LanesSerializeButDistinctLanesStartTogether) {
  CoordinatorCore core;
  core.add_local_shard(0, 0);
  core.add_local_shard(1, 0);  // same lane as 0: must wait for it
  core.add_local_shard(2, 1);  // its own lane: starts at seal
  core.step(submit(1, {{0, cfg(1)}, {1, cfg(1)}, {2, cfg(1)}}));
  auto out = core.step(epoch_fires());
  auto executes = of_kind(out, OutputKind::ExecuteShard);
  ASSERT_EQ(executes.size(), 2U);  // lane heads only
  EXPECT_EQ(executes[0]->shard, 0U);
  EXPECT_EQ(executes[1]->shard, 2U);

  out = core.step(shard_done(1, 0));
  executes = of_kind(out, OutputKind::ExecuteShard);
  ASSERT_EQ(executes.size(), 1U);  // lane 0 advances to its second shard
  EXPECT_EQ(executes[0]->shard, 1U);
}

TEST(CoordinatorCoreTest, PartialFailureIsolatedPerShard) {
  CoordinatorCore core;
  core.add_local_shard(0, 0);
  core.add_local_shard(1, 1);
  core.step(submit(7, {{0, cfg(1)}, {1, cfg(1)}}));
  core.step(epoch_fires());
  core.step(shard_done(1, 0, proto::AdaptationOutcome::UserInterventionRequired));
  const auto out = core.step(shard_done(1, 1, proto::AdaptationOutcome::Success));

  const Output* done = first_of(out, OutputKind::TicketDone);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->ticket, 7U);
  ASSERT_EQ(done->shard_outcomes.size(), 2U);
  EXPECT_EQ(done->shard_outcomes[0].result.outcome,
            proto::AdaptationOutcome::UserInterventionRequired);
  EXPECT_TRUE(done->shard_outcomes[0].reported);  // it DID report — just failed
  EXPECT_EQ(done->shard_outcomes[1].result.outcome, proto::AdaptationOutcome::Success);
  const Output* completed = first_of(out, OutputKind::EpochCompleted);
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->extra, 0.0);  // failures are not orphans
}

TEST(CoordinatorCoreTest, CommitTimeoutOrphansSilentSubtree) {
  CoordinatorCore core;
  const std::size_t child = core.add_child({0, 1});
  core.add_local_shard(2, 0);
  core.step(submit(1, {{0, cfg(1)}, {1, cfg(1)}, {2, cfg(1)}}));
  core.step(epoch_fires());
  core.step(shard_done(1, 2));  // the local shard completes; the child is silent
  EXPECT_EQ(core.phase(), CoordinatorPhase::Committing);

  const auto out = core.step(commit_fires());
  const Output* completed = first_of(out, OutputKind::EpochCompleted);
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->extra, 2.0);  // both of the child's shards orphaned
  const Output* done = first_of(out, OutputKind::TicketDone);
  ASSERT_NE(done, nullptr);
  ASSERT_EQ(done->shard_outcomes.size(), 3U);
  for (const proto::ShardOutcome& outcome : done->shard_outcomes) {
    if (outcome.shard == 2) {
      EXPECT_TRUE(outcome.reported);
      EXPECT_EQ(outcome.result.outcome, proto::AdaptationOutcome::Success);
    } else {
      EXPECT_FALSE(outcome.reported);
      EXPECT_EQ(outcome.result.outcome, proto::AdaptationOutcome::UserInterventionRequired);
    }
  }
  (void)child;
}

TEST(CoordinatorCoreTest, LateChildReportAfterTimeoutIsAbsorbed) {
  CoordinatorCore core;
  const std::size_t child = core.add_child({0});
  core.step(submit(1, {{0, cfg(1)}}));
  core.step(epoch_fires());
  core.step(commit_fires());  // orphans the child's shard, completes the epoch
  EXPECT_EQ(core.phase(), CoordinatorPhase::Idle);

  proto::ShardOutcome outcome;
  outcome.shard = 0;
  const auto out = core.step(
      CoordinatorInput{0, CoordinatorInput::ChildDone{child, 1, {outcome}}});
  EXPECT_NE(first_of(out, OutputKind::DuplicateMessage), nullptr);
  EXPECT_EQ(first_of(out, OutputKind::EpochCompleted), nullptr);  // no double completion
}

TEST(CoordinatorCoreTest, UnroutableShardOrphansAtSealNotAtTimeout) {
  CoordinatorCore core;
  core.add_local_shard(0, 0);
  core.step(submit(1, {{0, cfg(1)}, {9, cfg(1)}}));  // shard 9 covered by nobody
  core.step(epoch_fires());
  const auto out = core.step(shard_done(1, 0));  // epoch completes without a timeout
  const Output* completed = first_of(out, OutputKind::EpochCompleted);
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->extra, 1.0);
  EXPECT_EQ(core.phase(), CoordinatorPhase::Idle);
}

TEST(CoordinatorCoreTest, MidCommitSubmissionsBecomeNextEpoch) {
  CoordinatorCore core;
  core.add_local_shard(0, 0);
  core.step(submit(1, {{0, cfg(1)}}));
  core.step(epoch_fires());
  core.step(submit(2, {{0, cfg(2)}}));  // lands while epoch 1 is committing
  const auto out = core.step(shard_done(1, 0));

  EXPECT_NE(first_of(out, OutputKind::TicketDone), nullptr);
  const Output* opened = first_of(out, OutputKind::EpochOpened);
  ASSERT_NE(opened, nullptr);  // the pipeline reopens for the buffered ticket
  EXPECT_EQ(opened->epoch, 2U);
  EXPECT_EQ(core.phase(), CoordinatorPhase::Batching);
}

TEST(CoordinatorCoreTest, ParentRecommitIsDeduplicated) {
  CoordinatorCore core;  // an interior node: tickets are the parent's epochs
  core.set_has_parent(true);
  core.add_local_shard(0, 0);
  core.step(submit(5, {{0, cfg(1)}}));
  const auto out = core.step(submit(5, {{0, cfg(1)}}));  // retransmitted commit
  EXPECT_NE(first_of(out, OutputKind::DuplicateMessage), nullptr);
  core.step(epoch_fires());
  const auto done = core.step(shard_done(1, 0));
  const auto sends = of_kind(done, OutputKind::SendParent);
  ASSERT_EQ(sends.size(), 1U);  // one EpochDoneMsg, not two
  const auto* msg = dynamic_cast<const proto::EpochDoneMsg*>(sends[0]->message.get());
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->epoch, 5U);  // keyed by the PARENT's epoch number
}

TEST(CoordinatorCoreTest, OutOfEpochFaultAnnouncesStaleWireNumber) {
  CoordinatorCore core;
  core.add_child({0});
  core.inject_fault(proto::CoordinatorFault::CommitOutOfEpoch);

  core.step(submit(1, {{0, cfg(1)}}));
  auto out = core.step(epoch_fires());
  auto sends = of_kind(out, OutputKind::Send);
  ASSERT_EQ(sends.size(), 1U);
  EXPECT_EQ(dynamic_cast<const proto::EpochCommitMsg*>(sends[0]->message.get())->epoch, 1U);
  core.step(commit_fires());  // child never answers; move on

  core.step(submit(2, {{0, cfg(2)}}));
  out = core.step(epoch_fires());
  sends = of_kind(out, OutputKind::Send);
  ASSERT_EQ(sends.size(), 1U);
  // Epoch 2 sealed, but the wire announces epoch 1 again with different work.
  EXPECT_EQ(core.epoch(), 2U);
  EXPECT_EQ(dynamic_cast<const proto::EpochCommitMsg*>(sends[0]->message.get())->epoch, 1U);
}

TEST(CoordinatorCoreTest, FingerprintTracksLogicalState) {
  CoordinatorCore a, b;
  a.add_local_shard(0, 0);
  b.add_local_shard(0, 0);
  std::uint64_t ha = 0, hb = 0;
  a.fingerprint(ha);
  b.fingerprint(hb);
  EXPECT_EQ(ha, hb);

  a.step(submit(1, {{0, cfg(1)}}));
  ha = hb = 0;
  a.fingerprint(ha);
  b.fingerprint(hb);
  EXPECT_NE(ha, hb);

  b.step(submit(1, {{0, cfg(1)}}));
  ha = hb = 0;
  a.fingerprint(ha);
  b.fingerprint(hb);
  EXPECT_EQ(ha, hb);
}

}  // namespace
