// Tier-1 promotion of bench_failure_recovery's PASS/FAIL scenarios: the §4.4
// strategy chain (retransmit -> rollback -> retry -> alternate path -> return
// to source -> user intervention) must resolve each failure shape the same
// way every run, so the properties the bench prints are asserted here.
#include <gtest/gtest.h>

#include <functional>
#include <optional>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "sim/network.hpp"

namespace sa::core {
namespace {

struct NullProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

struct Harness {
  SafeAdaptationSystem system;
  NullProcess server, handheld, laptop;

  explicit Harness(SystemConfig config = {}) : system(config) {
    configure_paper_system(system);
    system.attach_process(kServerProcess, server, 0);
    system.attach_process(kHandheldProcess, handheld, 1);
    system.attach_process(kLaptopProcess, laptop, 1);
    system.finalize();
    system.set_current_configuration(paper_source(system.registry()));
  }

  config::Configuration source() { return paper_source(system.registry()); }
  config::Configuration target() { return paper_target(system.registry()); }
};

TEST(FailureRecovery, RetransmissionsAbsorbModerateControlLoss) {
  // Bench loss sweep: with 5 retransmission rounds, every run through 20%
  // control-channel loss must still reach the target.
  for (const int loss_percent : {5, 10, 20}) {
    for (int run = 0; run < 10; ++run) {
      SystemConfig config;
      config.seed = 7000 + static_cast<std::uint64_t>(loss_percent) * 100 +
                    static_cast<std::uint64_t>(run);
      config.control_channel.loss_probability = loss_percent / 100.0;
      config.manager.message_retries = 5;
      Harness harness(config);
      const auto result = harness.system.adapt_and_wait(harness.target());
      EXPECT_EQ(result.outcome, proto::AdaptationOutcome::Success)
          << "loss " << loss_percent << "%, run " << run;
      EXPECT_EQ(result.final_config, harness.target());
    }
  }
}

TEST(FailureRecovery, LossCostsRetransmissionsNotCorrectness) {
  // At 20% loss some run in the seed range must actually have retransmitted —
  // otherwise the sweep above proved nothing about loss handling.
  std::uint64_t total_retries = 0;
  for (int run = 0; run < 10; ++run) {
    SystemConfig config;
    config.seed = 9000 + static_cast<std::uint64_t>(run);
    config.control_channel.loss_probability = 0.20;
    config.manager.message_retries = 5;
    Harness harness(config);
    total_retries += harness.system.adapt_and_wait(harness.target()).message_retries;
  }
  EXPECT_GT(total_retries, 0u);
}

TEST(FailureRecovery, TransientFailToResetCostsOneRollbackThenSucceeds) {
  // Bench "transient stuck process": the hand-held agent cannot reach its
  // safe state until the first rollback lands, then heals. The manager must
  // absorb this as step failures and still reach the target.
  Harness harness;
  harness.system.agent(kHandheldProcess).set_fail_to_reset(true);
  std::optional<proto::AdaptationResult> result;
  harness.system.request_adaptation(
      harness.target(), [&result](const proto::AdaptationResult& r) { result = r; });
  std::size_t events = 0;
  while (!result && events < 1'000'000 && harness.system.simulator().step()) {
    ++events;
    if (!harness.system.manager().step_log().empty() &&
        harness.system.manager().step_log().front().rolled_back) {
      harness.system.agent(kHandheldProcess).set_fail_to_reset(false);
    }
  }
  ASSERT_TRUE(result.has_value()) << "adaptation did not terminate";
  EXPECT_EQ(result->outcome, proto::AdaptationOutcome::Success);
  EXPECT_EQ(result->final_config, harness.target());
  EXPECT_GE(result->step_failures, 1u);
}

TEST(FailureRecovery, PermanentFailToResetParksAtSafeConfiguration) {
  // Bench "permanent stuck process": every path to the target needs the
  // hand-held agent, so the strategy chain must exhaust itself and park the
  // system at a safe configuration with a non-success outcome.
  Harness harness;
  harness.system.agent(kHandheldProcess).set_fail_to_reset(true);
  const auto result = harness.system.adapt_and_wait(harness.target(), 5'000'000);
  EXPECT_NE(result.outcome, proto::AdaptationOutcome::Success);
  EXPECT_TRUE(harness.system.invariants().satisfied(result.final_config))
      << "parked at unsafe configuration "
      << result.final_config.describe(harness.system.registry());
  EXPECT_EQ(harness.system.current_configuration(), result.final_config);
  EXPECT_GE(result.plans_tried, 1u);
}

TEST(FailureRecovery, PartitionedAgentTerminatesWithoutReachingTarget) {
  // Bench "unreachable agent": the manager <-> hand-held pair is cut before
  // the request. The protocol must terminate (bounded retries), not succeed,
  // and leave the system resting in a safe configuration.
  Harness harness;
  harness.system.network().partition_pair(harness.system.manager_node(),
                                          harness.system.agent_node(kHandheldProcess), true);
  const auto result = harness.system.adapt_and_wait(harness.target(), 5'000'000);
  EXPECT_NE(result.outcome, proto::AdaptationOutcome::Success);
  EXPECT_TRUE(harness.system.invariants().satisfied(result.final_config));
  EXPECT_EQ(harness.system.current_configuration(), result.final_config);
}

}  // namespace
}  // namespace sa::core
