#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "proto/conformance.hpp"
#include "proto/manager.hpp"
#include "runtime/threaded_runtime.hpp"

namespace sa::runtime {
namespace {

// --- Clock ------------------------------------------------------------------

TEST(ThreadedClock, TimersFireInDeadlineOrder) {
  ThreadedClock clock;
  std::mutex mutex;
  std::vector<int> order;
  std::atomic<int> fired{0};
  const auto record = [&](int id) {
    std::lock_guard lock(mutex);
    order.push_back(id);
    ++fired;
  };
  clock.schedule_after(ms(30), [&] { record(3); });
  clock.schedule_after(ms(10), [&] { record(1); });
  clock.schedule_after(ms(20), [&] { record(2); });
  while (fired.load() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  clock.stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadedClock, CancelPreventsFiringAndReportsUnknownIds) {
  ThreadedClock clock;
  std::atomic<bool> cancelled_fired{false};
  std::atomic<bool> sentinel_fired{false};
  const TimerId id = clock.schedule_after(ms(20), [&] { cancelled_fired = true; });
  EXPECT_TRUE(clock.cancel(id));
  EXPECT_FALSE(clock.cancel(id));  // already cancelled
  EXPECT_FALSE(clock.cancel(0));   // never issued
  clock.schedule_after(ms(40), [&] { sentinel_fired = true; });
  while (!sentinel_fired.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  clock.stop();
  EXPECT_FALSE(cancelled_fired.load());
}

TEST(ThreadedClock, EqualDeadlinesFireInScheduleOrder) {
  ThreadedClock clock;
  std::mutex mutex;
  std::vector<int> order;
  std::atomic<int> fired{0};
  const Time deadline = clock.now() + ms(25);
  for (int i = 0; i < 8; ++i) {
    clock.schedule_at(deadline, [&, i] {
      std::lock_guard lock(mutex);
      order.push_back(i);
      ++fired;
    });
  }
  while (fired.load() < 8) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  clock.stop();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadedClock, ScheduleAfterStopDropsTimerAndReturnsZero) {
  ThreadedClock clock;
  clock.stop();
  std::atomic<bool> fired{false};
  // Matches ThreadedExecutor::post: late work is dropped, and the caller can
  // tell (id 0) rather than holding an id that will never fire or cancel.
  EXPECT_EQ(clock.schedule_after(ms(1), [&] { fired = true; }), 0U);
  EXPECT_EQ(clock.schedule_at(clock.now(), [&] { fired = true; }), 0U);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(fired.load());
}

// --- Executor ---------------------------------------------------------------

TEST(ThreadedExecutor, SingleWorkerRunsTasksInPostingOrder) {
  std::vector<int> order;
  {
    ThreadedExecutor executor(1);
    for (int i = 0; i < 32; ++i) {
      executor.post([&order, i] { order.push_back(i); });
    }
    executor.stop();  // drains the queue before joining
  }
  std::vector<int> expected(32);
  for (int i = 0; i < 32; ++i) expected[i] = i;
  EXPECT_EQ(order, expected);
}

// --- Transport --------------------------------------------------------------

struct PingMsg final : Message {
  int value = 0;
  std::string type_name() const override { return "ping"; }
};

TEST(ThreadedTransport, DeliversInSendOrderOverFifoChannel) {
  ThreadedRuntime rt({.workers = 4, .seed = 7});
  Transport& net = rt.transport();
  const NodeId a = net.add_node("a");
  std::mutex mutex;
  std::vector<int> received;
  std::atomic<int> count{0};
  const NodeId b = net.add_node("b", [&](NodeId, MessagePtr message) {
    const auto& ping = dynamic_cast<const PingMsg&>(*message);
    std::lock_guard lock(mutex);
    received.push_back(ping.value);
    ++count;
  });
  net.connect(a, b, ChannelConfig{ms(1), /*jitter=*/us(500), 0.0, /*fifo=*/true});
  for (int i = 0; i < 24; ++i) {
    auto msg = std::make_shared<PingMsg>();
    msg->value = i;
    EXPECT_TRUE(net.send(a, b, msg));
  }
  EXPECT_TRUE(rt.wait_until([&] { return count.load() == 24; }));
  rt.shutdown();
  std::vector<int> expected(24);
  for (int i = 0; i < 24; ++i) expected[i] = i;
  EXPECT_EQ(received, expected);
  const ChannelStats stats = net.channel_stats(a, b);
  EXPECT_EQ(stats.sent, 24U);
  EXPECT_EQ(stats.delivered, 24U);
}

TEST(ThreadedTransport, FifoOrderSurvivesConcurrentSenders) {
  ThreadedRuntime rt({.workers = 4, .seed = 11});
  Transport& net = rt.transport();
  const NodeId a = net.add_node("a");
  std::mutex mutex;
  std::vector<int> received;
  std::atomic<int> count{0};
  const NodeId b = net.add_node("b", [&](NodeId, MessagePtr message) {
    const auto& ping = dynamic_cast<const PingMsg&>(*message);
    std::lock_guard lock(mutex);
    received.push_back(ping.value);
    ++count;
  });
  // Zero latency maximizes FIFO-clamp collisions: concurrent senders get
  // equal arrival times and only the schedule-order tie-break separates them.
  net.connect(a, b, ChannelConfig{0, 0, 0.0, /*fifo=*/true});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto msg = std::make_shared<PingMsg>();
        msg->value = t * kPerThread + i;
        net.send(a, b, msg);
      }
    });
  }
  for (std::thread& sender : senders) sender.join();
  EXPECT_TRUE(rt.wait_until([&] { return count.load() == kThreads * kPerThread; }));
  rt.shutdown();

  // The channel serializes racing sends in clamp order, so each sender's own
  // messages must arrive in the order it sent them.
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<int> last_seen(kThreads, -1);
  for (const int value : received) {
    const int thread = value / kPerThread;
    EXPECT_LT(last_seen[thread], value % kPerThread)
        << "per-sender order violated for sender " << thread;
    last_seen[thread] = value % kPerThread;
  }
}

TEST(ThreadedTransport, LossAndPartitionDropMessages) {
  ThreadedRuntime rt;
  Transport& net = rt.transport();
  const NodeId a = net.add_node("a");
  std::atomic<int> count{0};
  const NodeId b = net.add_node("b", [&](NodeId, MessagePtr) { ++count; });
  net.connect(a, b, ChannelConfig{us(100), 0, /*loss=*/1.0, true});
  EXPECT_FALSE(net.send(a, b, std::make_shared<PingMsg>()));
  net.set_loss(a, b, 0.0);
  net.partition_pair(a, b, true);
  EXPECT_FALSE(net.send(a, b, std::make_shared<PingMsg>()));
  net.partition_pair(a, b, false);
  EXPECT_TRUE(net.send(a, b, std::make_shared<PingMsg>()));
  EXPECT_TRUE(rt.wait_until([&] { return count.load() == 1; }));
  rt.shutdown();
  const ChannelStats stats = net.channel_stats(a, b);
  EXPECT_EQ(stats.dropped_loss, 1U);
  EXPECT_EQ(stats.dropped_partition, 1U);
  EXPECT_EQ(stats.delivered, 1U);
}

// --- End-to-end: the paper's 5-step MAP on real threads ---------------------

struct StubProcess : proto::AdaptableProcess {
  std::atomic<int> applies{0};
  std::atomic<int> resumes{0};
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override {
    ++applies;
    return true;
  }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override { ++resumes; }
};

TEST(ThreadedRuntimeSmoke, PaperMapRunsEndToEndOnRealThreads) {
  ThreadedRuntime rt({.workers = 4, .seed = 42});
  core::SafeAdaptationSystem system(rt);
  core::configure_paper_system(system);
  StubProcess server, handheld, laptop;
  system.attach_process(core::kServerProcess, server, /*stage=*/0);
  system.attach_process(core::kHandheldProcess, handheld, /*stage=*/1);
  system.attach_process(core::kLaptopProcess, laptop, /*stage=*/1);
  system.finalize();
  system.set_current_configuration(core::paper_source(system.registry()));
  rt.transport().set_tracing(true);

  const auto result = system.adapt_and_wait(core::paper_target(system.registry()));

  EXPECT_EQ(result.outcome, proto::AdaptationOutcome::Success);
  EXPECT_EQ(result.final_config, core::paper_target(system.registry()));
  EXPECT_EQ(result.steps_committed, 5U);
  EXPECT_EQ(result.step_failures, 0U);

  // Same MAP the simulator produces: planning is deterministic and
  // backend-independent.
  std::vector<std::string> actions;
  for (const proto::StepRecord& record : system.manager().step_log()) {
    EXPECT_TRUE(record.committed);
    actions.push_back(record.action_name);
  }
  EXPECT_EQ(actions, (std::vector<std::string>{"A2", "A17", "A1", "A16", "A4"}));
  EXPECT_EQ(server.applies.load(), 1);
  EXPECT_EQ(handheld.applies.load(), 2);
  EXPECT_EQ(laptop.applies.load(), 2);

  // Quiesce, then conformance-check the real-thread trace against the
  // Figure 1 / Figure 2 automata — the same checker the simulator runs.
  rt.shutdown();
  const auto violations =
      proto::ConformanceChecker(system.manager_node()).check(rt.transport().trace());
  for (const auto& violation : violations) {
    ADD_FAILURE() << "conformance violation at t=" << violation.time << ": "
                  << violation.description;
  }
  EXPECT_FALSE(rt.transport().trace().empty());
}

}  // namespace
}  // namespace sa::runtime
