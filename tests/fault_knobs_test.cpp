// Validation of the stochastic fault knobs (loss / duplication / jitter):
// every transport backend must reject NaN and out-of-range probabilities at
// the API boundary and accept the exact 0.0 / 1.0 endpoints, so a fuzz
// campaign can never silently install a plan whose "30% loss" was actually
// NaN (NaN compares false everywhere, quietly disabling the fault).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "inject/faulty_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/threaded_runtime.hpp"
#include "runtime/transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sa {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(FaultKnobs, CheckedProbabilityAcceptsBoundaries) {
  EXPECT_EQ(runtime::checked_probability(0.0, "p"), 0.0);
  EXPECT_EQ(runtime::checked_probability(1.0, "p"), 1.0);
  EXPECT_EQ(runtime::checked_probability(0.5, "p"), 0.5);
}

TEST(FaultKnobs, CheckedProbabilityRejectsNaNAndOutOfRange) {
  EXPECT_THROW(runtime::checked_probability(kNaN, "p"), std::invalid_argument);
  EXPECT_THROW(runtime::checked_probability(-0.01, "p"), std::invalid_argument);
  EXPECT_THROW(runtime::checked_probability(1.01, "p"), std::invalid_argument);
  EXPECT_THROW(runtime::checked_probability(std::numeric_limits<double>::infinity(), "p"),
               std::invalid_argument);
}

TEST(FaultKnobs, CheckedDurationRejectsNegative) {
  EXPECT_EQ(runtime::checked_duration(0, "d"), 0);
  EXPECT_EQ(runtime::checked_duration(runtime::ms(5), "d"), runtime::ms(5));
  EXPECT_THROW(runtime::checked_duration(-1, "d"), std::invalid_argument);
}

// --- simulated network backend ----------------------------------------------

struct SimNetworkFixture : ::testing::Test {
  sim::Simulator sim;
  sim::Network net{sim};
  runtime::NodeId a = net.add_node("a");
  runtime::NodeId b = net.add_node("b");
};

TEST_F(SimNetworkFixture, LinkRejectsInvalidConfig) {
  runtime::ChannelConfig config;
  config.loss_probability = kNaN;
  EXPECT_THROW(net.link(a, b, config), std::invalid_argument);
  config.loss_probability = 1.5;
  EXPECT_THROW(net.link(a, b, config), std::invalid_argument);
  config.loss_probability = 0.0;
  config.duplicate_probability = -0.25;
  EXPECT_THROW(net.link(a, b, config), std::invalid_argument);
  config.duplicate_probability = 0.0;
  config.jitter = -1;
  EXPECT_THROW(net.link(a, b, config), std::invalid_argument);
  config.jitter = 0;
  config.latency = -runtime::ms(1);
  EXPECT_THROW(net.link(a, b, config), std::invalid_argument);
}

TEST_F(SimNetworkFixture, LinkAcceptsBoundaryProbabilities) {
  runtime::ChannelConfig config;
  config.loss_probability = 1.0;
  config.duplicate_probability = 0.0;
  EXPECT_NO_THROW(net.link(a, b, config));
  config.loss_probability = 0.0;
  config.duplicate_probability = 1.0;
  EXPECT_NO_THROW(net.link(a, b, config));
}

TEST_F(SimNetworkFixture, SetLossValidates) {
  net.link(a, b);
  EXPECT_NO_THROW(net.set_loss(a, b, 0.0));
  EXPECT_NO_THROW(net.set_loss(a, b, 1.0));
  EXPECT_THROW(net.set_loss(a, b, kNaN), std::invalid_argument);
  EXPECT_THROW(net.set_loss(a, b, -0.01), std::invalid_argument);
  EXPECT_THROW(net.set_loss(a, b, 1.01), std::invalid_argument);
}

TEST_F(SimNetworkFixture, ChannelSetterValidates) {
  net.link(a, b);
  sim::Channel& ch = net.channel(a, b);
  EXPECT_NO_THROW(ch.set_loss_probability(1.0));
  EXPECT_THROW(ch.set_loss_probability(kNaN), std::invalid_argument);
  EXPECT_THROW(ch.set_loss_probability(2.0), std::invalid_argument);
}

// --- threaded backend --------------------------------------------------------

TEST(FaultKnobsThreaded, ConnectAndSetLossValidate) {
  runtime::ThreadedRuntime rt;
  runtime::Transport& net = rt.transport();
  const runtime::NodeId a = net.add_node("a");
  const runtime::NodeId b = net.add_node("b");

  runtime::ChannelConfig config;
  config.loss_probability = kNaN;
  EXPECT_THROW(net.connect(a, b, config), std::invalid_argument);
  config.loss_probability = -0.5;
  EXPECT_THROW(net.connect(a, b, config), std::invalid_argument);
  config.loss_probability = 0.0;
  config.duplicate_probability = 1.5;
  EXPECT_THROW(net.connect(a, b, config), std::invalid_argument);
  config.duplicate_probability = 0.0;
  config.jitter = -runtime::ms(2);
  EXPECT_THROW(net.connect(a, b, config), std::invalid_argument);

  config = {};
  config.loss_probability = 1.0;  // boundary accepted
  EXPECT_NO_THROW(net.connect(a, b, config));
  EXPECT_NO_THROW(net.set_loss(a, b, 0.0));
  EXPECT_NO_THROW(net.set_loss(a, b, 1.0));
  EXPECT_THROW(net.set_loss(a, b, kNaN), std::invalid_argument);
  EXPECT_THROW(net.set_loss(a, b, 1.01), std::invalid_argument);
  rt.shutdown();
}

// --- fault-injection decorator ----------------------------------------------

TEST(FaultKnobsDecorator, ExtraLossAndDuplicationValidate) {
  runtime::SimRuntime sim(1);
  inject::FaultyRuntime frt(sim, 2);
  inject::FaultyTransport& net = frt.faulty_transport();
  EXPECT_NO_THROW(net.set_extra_loss(0.0));
  EXPECT_NO_THROW(net.set_extra_loss(1.0));
  EXPECT_THROW(net.set_extra_loss(kNaN), std::invalid_argument);
  EXPECT_THROW(net.set_extra_loss(-0.1), std::invalid_argument);
  EXPECT_NO_THROW(net.set_extra_duplication(1.0));
  EXPECT_THROW(net.set_extra_duplication(1.1), std::invalid_argument);
  EXPECT_THROW(net.set_extra_duplication(kNaN), std::invalid_argument);
}

}  // namespace
}  // namespace sa
