#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sa::util {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0U);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);  // all values hit
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(23);
  std::shuffle(values.begin(), values.end(), rng);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

// --- strings -------------------------------------------------------------------

TEST(Strings, SplitBasic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split(",a,,b,", ','), (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(Strings, SplitNoDelimiter) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foo", "foobar"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, ParseDoubleAcceptsPlainNumbers) {
  EXPECT_EQ(parse_double("0"), 0.0);
  EXPECT_EQ(parse_double("0.25"), 0.25);
  EXPECT_EQ(parse_double("1"), 1.0);
  EXPECT_EQ(parse_double("-2.5"), -2.5);
}

TEST(Strings, ParseDoubleRejectsJunk) {
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("0.5x"));
  EXPECT_FALSE(parse_double("1.0 "));
  EXPECT_FALSE(parse_double(" 1.0"));
}

TEST(Strings, ParseU64AcceptsDigits) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
}

TEST(Strings, ParseU64RejectsJunk) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("3.5"));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("99999999999999999999999"));  // overflow
}

// --- logging ---------------------------------------------------------------------

TEST(Log, SinkReceivesMessagesAtOrAboveLevel) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel level, std::string_view component, std::string_view message) {
    captured.push_back(std::string(to_string(level)) + "/" + std::string(component) + "/" +
                       std::string(message));
  });
  const LogLevel previous = log_level();
  set_log_level(LogLevel::Info);
  SA_DEBUG("test") << "hidden";
  SA_INFO("test") << "visible " << 42;
  SA_ERROR("other") << "bad";
  set_log_level(previous);
  reset_log_sink();

  ASSERT_EQ(captured.size(), 2U);
  EXPECT_EQ(captured[0], "INFO/test/visible 42");
  EXPECT_EQ(captured[1], "ERROR/other/bad");
}

TEST(Log, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::Off), "OFF");
}

}  // namespace
}  // namespace sa::util
