#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/bitset64.hpp"
#include "util/fingerprint_set.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/small_vector.hpp"
#include "util/strings.hpp"

namespace sa::util {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0U);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);  // all values hit
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(23);
  std::shuffle(values.begin(), values.end(), rng);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

// --- strings -------------------------------------------------------------------

TEST(Strings, SplitBasic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split(",a,,b,", ','), (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(Strings, SplitNoDelimiter) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foo", "foobar"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, ParseDoubleAcceptsPlainNumbers) {
  EXPECT_EQ(parse_double("0"), 0.0);
  EXPECT_EQ(parse_double("0.25"), 0.25);
  EXPECT_EQ(parse_double("1"), 1.0);
  EXPECT_EQ(parse_double("-2.5"), -2.5);
}

TEST(Strings, ParseDoubleRejectsJunk) {
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("0.5x"));
  EXPECT_FALSE(parse_double("1.0 "));
  EXPECT_FALSE(parse_double(" 1.0"));
}

TEST(Strings, ParseU64AcceptsDigits) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
}

TEST(Strings, ParseU64RejectsJunk) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("3.5"));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("99999999999999999999999"));  // overflow
}

// --- logging ---------------------------------------------------------------------

TEST(Log, SinkReceivesMessagesAtOrAboveLevel) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel level, std::string_view component, std::string_view message) {
    captured.push_back(std::string(to_string(level)) + "/" + std::string(component) + "/" +
                       std::string(message));
  });
  const LogLevel previous = log_level();
  set_log_level(LogLevel::Info);
  SA_DEBUG("test") << "hidden";
  SA_INFO("test") << "visible " << 42;
  SA_ERROR("other") << "bad";
  set_log_level(previous);
  reset_log_sink();

  ASSERT_EQ(captured.size(), 2U);
  EXPECT_EQ(captured[0], "INFO/test/visible 42");
  EXPECT_EQ(captured[1], "ERROR/other/bad");
}

TEST(Log, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::Off), "OFF");
}

// --- FingerprintSet ----------------------------------------------------------

TEST(FingerprintSet, InsertReportsNovelty) {
  FingerprintSet set;
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.insert(7));
  EXPECT_EQ(set.size(), 2U);
  EXPECT_TRUE(set.contains(42));
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(8));
}

TEST(FingerprintSet, ZeroIsAStorableValue) {
  // 0 is the internal empty-slot sentinel; the public API must still treat it
  // as an ordinary value.
  FingerprintSet set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.size(), 1U);
}

TEST(FingerprintSet, GrowsPastReservation) {
  FingerprintSet set(/*expected=*/4);
  Rng rng(99);
  std::set<std::uint64_t> reference;
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t value = rng.next_u64();
    EXPECT_EQ(set.insert(value), reference.insert(value).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const std::uint64_t value : reference) EXPECT_TRUE(set.contains(value));
}

TEST(FingerprintSet, ReservationAvoidsEarlyGrowth) {
  FingerprintSet set(/*expected=*/1'000);
  const std::size_t initial = set.capacity();
  for (std::uint64_t i = 1; i <= 1'000; ++i) set.insert(i * 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(set.capacity(), initial);
}

TEST(ShardedFingerprintSetParallel, ConcurrentInsertsAgreeWithReference) {
  ShardedFingerprintSet set(/*expected=*/10'000, /*shards=*/8);
  // Every thread inserts the same value stream: exactly one insert() per
  // value may return true no matter how the threads interleave.
  std::vector<std::uint64_t> values;
  Rng rng(7);
  for (int i = 0; i < 20'000; ++i) values.push_back(rng.next_u64() % 10'000 + 1);
  std::atomic<std::size_t> fresh{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      std::size_t local = 0;
      for (const std::uint64_t value : values) {
        if (set.insert(value)) ++local;
      }
      fresh.fetch_add(local);
    });
  }
  for (std::thread& th : pool) th.join();
  const std::set<std::uint64_t> reference(values.begin(), values.end());
  EXPECT_EQ(fresh.load(), reference.size());
  EXPECT_EQ(set.size(), reference.size());
}

TEST(ShardedFingerprintSetParallel, SingleShardStillWorks) {
  ShardedFingerprintSet set(/*expected=*/16, /*shards=*/1);
  EXPECT_EQ(set.shard_count(), 1U);
  EXPECT_TRUE(set.insert(1));
  EXPECT_FALSE(set.insert(1));
  EXPECT_EQ(set.size(), 1U);
}

TEST(ShardedFingerprintSetParallel, ShardCountRoundsUpToPowerOfTwo) {
  ShardedFingerprintSet set(/*expected=*/16, /*shards=*/3);
  EXPECT_EQ(set.shard_count(), 4U);
}

// --- SmallVector -------------------------------------------------------------

TEST(SmallVector, StaysInlineUpToCapacityThenSpills) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.inline_storage());
  v.push_back(4);
  EXPECT_FALSE(v.inline_storage());
  ASSERT_EQ(v.size(), 5U);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, CopyAndMovePreserveElements) {
  SmallVector<std::string, 2> v;
  v.push_back("a");
  v.push_back("b");
  v.push_back("c");  // spilled

  SmallVector<std::string, 2> copy(v);
  ASSERT_EQ(copy.size(), 3U);
  EXPECT_EQ(copy[2], "c");

  SmallVector<std::string, 2> moved(std::move(v));
  ASSERT_EQ(moved.size(), 3U);
  EXPECT_EQ(moved[0], "a");
  EXPECT_EQ(moved[2], "c");

  copy = moved;
  ASSERT_EQ(copy.size(), 3U);
  EXPECT_EQ(copy[1], "b");
}

TEST(SmallVector, EraseShiftsTail) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  v.erase(v.begin() + 1);
  ASSERT_EQ(v.size(), 3U);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
}

// --- IdSet64 -----------------------------------------------------------------

TEST(IdSet64, InsertContainsAndSize) {
  IdSet64 set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(3));
  EXPECT_FALSE(set.insert(3));
  EXPECT_TRUE(set.insert(0));
  EXPECT_TRUE(set.insert(63));
  EXPECT_EQ(set.size(), 3U);
  EXPECT_TRUE(set.contains(63));
  EXPECT_FALSE(set.contains(62));
  EXPECT_FALSE(set.contains(100));  // out of range, not UB
}

TEST(IdSet64, IteratesInAscendingOrder) {
  IdSet64 set;
  set.insert(9);
  set.insert(1);
  set.insert(40);
  std::vector<std::uint32_t> seen;
  for (const std::uint32_t id : set) seen.push_back(id);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1, 9, 40}));
}

TEST(IdSet64, EqualityIsSetEquality) {
  IdSet64 a, b;
  a.insert(5);
  a.insert(6);
  b.insert(6);
  b.insert(5);
  EXPECT_EQ(a, b);
  b.insert(7);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace sa::util
