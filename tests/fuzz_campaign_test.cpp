// End-to-end properties of the sa_fuzz campaign engine: clean stacks survive
// generated fault plans, results are bit-identical for any worker count, a
// deliberately broken manager is caught by the oracles, and failing runs
// shrink to artifacts that replay to the same violations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "inject/campaign.hpp"

namespace sa::inject {
namespace {

TEST(FuzzCampaign, PlanForSeedIsDeterministic) {
  const FaultPlan plan = plan_for_seed("paper", 17);
  EXPECT_EQ(plan, plan_for_seed("paper", 17));
  EXPECT_GE(plan.events.size(), 1u);
  // Neighbouring seeds land on different plans (the stream is well mixed).
  EXPECT_NE(plan, plan_for_seed("paper", 18));
}

TEST(FuzzCampaign, CleanStackSurvivesGeneratedPlans) {
  CampaignOptions options;
  options.scenario = "paper";
  options.seed_begin = 0;
  options.seed_end = 8;
  const CampaignSummary summary = run_campaign(options);
  EXPECT_EQ(summary.runs, 8u);
  EXPECT_TRUE(summary.failures.empty())
      << "oracle violation on a correct stack: " << summary.failures[0].violations[0];
}

TEST(FuzzCampaign, ResultsAreIdenticalForAnyThreadCount) {
  CampaignOptions options;
  options.scenario = "paper";
  options.seed_begin = 100;
  options.seed_end = 108;
  const CampaignSummary serial = run_campaign(options);
  options.threads = 4;
  const CampaignSummary parallel = run_campaign(options);
  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.outcomes, parallel.outcomes);
  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  for (std::size_t i = 0; i < serial.failures.size(); ++i) {
    EXPECT_EQ(serial.failures[i].seed, parallel.failures[i].seed);
    EXPECT_EQ(serial.failures[i].plan, parallel.failures[i].plan);
    EXPECT_EQ(serial.failures[i].violations, parallel.failures[i].violations);
  }
}

TEST(FuzzCampaign, FleetScenarioSurvivesCoordinatorLinkFaults) {
  // The fleet scenario aims faults at coordinator tree links instead of
  // agents: partitions orphan subtrees, which must terminate as clean
  // per-shard rollbacks ("orphaned"), never wedge or break a disjoint shard.
  CampaignOptions options;
  options.scenario = "fleet";
  options.seed_begin = 0;
  options.seed_end = 6;
  const CampaignSummary summary = run_campaign(options);
  EXPECT_EQ(summary.runs, 6u);
  EXPECT_TRUE(summary.failures.empty())
      << "fleet oracle violation: " << summary.failures[0].violations[0];

  // And the campaign is thread-count independent, like every scenario.
  options.threads = 3;
  const CampaignSummary parallel = run_campaign(options);
  EXPECT_EQ(summary.outcomes, parallel.outcomes);
}

TEST(FuzzCampaign, MutatedManagerIsCaughtAndShrunkArtifactReplays) {
  // The resume-early mutation only bites when a step involves >= 2 agents,
  // hence the combined-action scenario (mirrors the model checker's pair gate).
  CampaignOptions options;
  options.scenario = "paper-combined";
  options.fault = check::fault_from_string("resume-early");
  options.seed_begin = 0;
  options.seed_end = 2;
  const CampaignSummary summary = run_campaign(options);
  ASSERT_FALSE(summary.failures.empty()) << "seeded protocol bug was not caught";
  const RunReport& failure = summary.failures.front();
  ASSERT_FALSE(failure.violations.empty());

  // The shrunk plan must still reproduce, and the JSON artifact must replay
  // to byte-identical violations (the --replay contract).
  FuzzArtifact artifact;
  artifact.scenario = options.scenario;
  artifact.seed = failure.seed;
  artifact.fault = options.fault;
  artifact.max_events = options.max_events;
  artifact.plan = failure.plan;
  artifact.violations = failure.violations;
  const FuzzArtifact parsed = artifact_from_json(to_json(artifact));
  EXPECT_EQ(parsed.scenario, artifact.scenario);
  EXPECT_EQ(parsed.seed, artifact.seed);
  EXPECT_EQ(parsed.fault, artifact.fault);
  EXPECT_EQ(parsed.max_events, artifact.max_events);
  EXPECT_EQ(parsed.plan, artifact.plan);
  EXPECT_EQ(parsed.violations, artifact.violations);

  CampaignOptions replay_options;
  replay_options.scenario = parsed.scenario;
  replay_options.fault = parsed.fault;
  replay_options.max_events = parsed.max_events;
  const RunResult replayed = run_one(parsed.scenario, parsed.seed, parsed.plan, replay_options);
  EXPECT_EQ(replayed.violations, parsed.violations)
      << "artifact replay diverged from the recorded run";
}

TEST(FuzzCampaign, ShrinkingKeepsTheViolationClass) {
  // Hand a deliberately bloated plan to the shrinker: a permanent crash of
  // the hand-held agent (which forces a non-success terminal outcome but no
  // violation on a correct stack) plus noise windows. With the resume-early
  // mutation armed the run fails, and shrinking must preserve failure while
  // never growing the plan.
  CampaignOptions options;
  options.scenario = "paper-combined";
  options.fault = check::fault_from_string("resume-early");
  const std::uint64_t seed = 0;
  FaultPlan plan;
  plan.events.push_back({FaultKind::Loss, 0, runtime::ms(50), 0, 0.2, 1.0});
  plan.events.push_back({FaultKind::TimerSkew, 0, runtime::ms(80), 0, 0.0, 1.5});
  plan.events.push_back({FaultKind::Duplicate, runtime::ms(10), runtime::ms(60), 0, 0.3, 1.0});
  const RunResult original = run_one(options.scenario, seed, plan, options);
  ASSERT_FALSE(original.violations.empty()) << "mutation should fail under this plan";

  const FaultPlan shrunk =
      shrink_plan(options.scenario, seed, plan, options, original.violations);
  EXPECT_LE(shrunk.events.size(), plan.events.size());
  const RunResult replayed = run_one(options.scenario, seed, shrunk, options);
  ASSERT_FALSE(replayed.violations.empty()) << "shrunk plan no longer reproduces";
  // Same violation class (prefix before ':') as one of the originals.
  const auto cls = [](const std::string& v) { return v.substr(0, v.find(':')); };
  bool matched = false;
  for (const std::string& v : replayed.violations) {
    for (const std::string& o : original.violations) {
      if (cls(v) == cls(o)) matched = true;
    }
  }
  EXPECT_TRUE(matched);
}

TEST(FuzzCampaign, ArtifactParserRejectsGarbage) {
  EXPECT_THROW(artifact_from_json("not json"), std::runtime_error);
  EXPECT_THROW(artifact_from_json("[]"), std::runtime_error);
  EXPECT_THROW(artifact_from_json("{\"seed\": 3}"), std::runtime_error);
}

}  // namespace
}  // namespace sa::inject
