#include <gtest/gtest.h>

#include "components/fec.hpp"
#include "components/filter.hpp"
#include "proto/adaptable_process.hpp"
#include "sim/simulator.hpp"

namespace sa::proto {
namespace {

components::FilterPtr make_filter(const std::string& name) {
  return std::make_shared<components::PassThroughFilter>(name);
}

struct Fixture : ::testing::Test {
  sim::Simulator sim;
  components::FilterChain chain{sim, "chain"};
  FilterChainProcess process{chain, make_filter};

  LocalCommand replace_cmd(const std::string& from, const std::string& to) {
    LocalCommand cmd;
    cmd.remove = {from};
    cmd.add = {to};
    return cmd;
  }
};

TEST_F(Fixture, PrepareStagesComponents) {
  chain.append_filter(make_filter("old"));
  EXPECT_TRUE(process.prepare(replace_cmd("old", "new")));
  // Staged but not installed yet.
  EXPECT_TRUE(chain.has_filter("old"));
  EXPECT_FALSE(chain.has_filter("new"));
}

TEST_F(Fixture, PrepareFailsForMissingRemoval) {
  EXPECT_FALSE(process.prepare(replace_cmd("ghost", "new")));
}

TEST_F(Fixture, PrepareFailsWhenComponentAlreadyInstalled) {
  chain.append_filter(make_filter("new"));
  LocalCommand cmd;
  cmd.add = {"new"};
  EXPECT_FALSE(process.prepare(cmd));
}

TEST_F(Fixture, PrepareFailsWhenFactoryCannotBuild) {
  FilterChainProcess broken(chain, [](const std::string&) { return components::FilterPtr{}; });
  LocalCommand cmd;
  cmd.add = {"anything"};
  EXPECT_FALSE(broken.prepare(cmd));
}

TEST_F(Fixture, ReplaceInPlacePreservesPosition) {
  chain.append_filter(make_filter("first"));
  chain.append_filter(make_filter("middle"));
  chain.append_filter(make_filter("last"));
  ASSERT_TRUE(process.prepare(replace_cmd("middle", "middle2")));
  ASSERT_TRUE(process.apply(replace_cmd("middle", "middle2")));
  EXPECT_EQ(chain.filter_names(), (std::vector<std::string>{"first", "middle2", "last"}));
}

TEST_F(Fixture, UndoRestoresReplacedFilterInPlace) {
  chain.append_filter(make_filter("a"));
  chain.append_filter(make_filter("b"));
  const auto cmd = replace_cmd("a", "a2");
  ASSERT_TRUE(process.prepare(cmd));
  ASSERT_TRUE(process.apply(cmd));
  ASSERT_TRUE(process.undo(cmd));
  EXPECT_EQ(chain.filter_names(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(Fixture, InsertionAndRemovalCommands) {
  chain.append_filter(make_filter("keep"));
  LocalCommand insert;
  insert.add = {"extra"};
  ASSERT_TRUE(process.prepare(insert));
  ASSERT_TRUE(process.apply(insert));
  EXPECT_EQ(chain.filter_names(), (std::vector<std::string>{"keep", "extra"}));

  LocalCommand remove;
  remove.remove = {"extra"};
  ASSERT_TRUE(process.prepare(remove));
  ASSERT_TRUE(process.apply(remove));
  EXPECT_EQ(chain.filter_names(), (std::vector<std::string>{"keep"}));
}

TEST_F(Fixture, UndoOfInsertionRemovesIt) {
  LocalCommand insert;
  insert.add = {"extra"};
  ASSERT_TRUE(process.prepare(insert));
  ASSERT_TRUE(process.apply(insert));
  ASSERT_TRUE(process.undo(insert));
  EXPECT_FALSE(chain.has_filter("extra"));
}

TEST_F(Fixture, UndoOfRemovalPutsFilterBack) {
  chain.append_filter(make_filter("victim"));
  LocalCommand remove;
  remove.remove = {"victim"};
  ASSERT_TRUE(process.prepare(remove));
  ASSERT_TRUE(process.apply(remove));
  EXPECT_FALSE(chain.has_filter("victim"));
  ASSERT_TRUE(process.undo(remove));
  EXPECT_TRUE(chain.has_filter("victim"));
}

TEST_F(Fixture, ApplyWithoutPrepareFails) {
  chain.append_filter(make_filter("old"));
  EXPECT_FALSE(process.apply(replace_cmd("old", "new")));
  EXPECT_TRUE(chain.has_filter("old"));  // untouched
}

TEST_F(Fixture, AbortClearsStagedComponents) {
  chain.append_filter(make_filter("old"));
  const auto cmd = replace_cmd("old", "new");
  ASSERT_TRUE(process.prepare(cmd));
  process.abort_safe_state();
  EXPECT_FALSE(process.apply(cmd));  // staging gone
}

TEST_F(Fixture, ReachSafeStateBlocksChainAndResumeUnblocks) {
  bool reached = false;
  process.reach_safe_state(false, [&] { reached = true; });
  EXPECT_TRUE(reached);
  EXPECT_TRUE(chain.blocked());
  process.resume();
  EXPECT_FALSE(chain.blocked());
}

TEST_F(Fixture, DrainModeWaitsForQueue) {
  chain.submit(components::Packet::make(1, 0, {1}));
  chain.submit(components::Packet::make(1, 1, {2}));
  sim.run_until(sim::us(1));
  bool reached = false;
  process.reach_safe_state(true, [&] { reached = true; });
  EXPECT_FALSE(reached);
  sim.run();
  EXPECT_TRUE(reached);
  EXPECT_EQ(chain.queued(), 0U);
}

TEST_F(Fixture, ReplacementTransfersComponentState) {
  // An FEC decoder replaced mid-group must hand its open-group bookkeeping to
  // the successor, or the packets buffered across the swap become
  // unrepairable. adopt_state() runs while both components are quiescent.
  auto old_decoder = std::make_shared<components::XorFecDecoderFilter>("fec-old");
  components::XorFecEncoderFilter encoder("enc", 4);
  chain.append_filter(old_decoder);

  // Feed 2 of 4 data packets (one dropped later), leaving an open group.
  std::vector<components::Packet> wires;
  for (std::uint64_t seq = 0; seq < 2; ++seq) {
    for (auto& wire : encoder.process_all(components::Packet::make(1, seq, {1, 2, 3}))) {
      wires.push_back(std::move(wire));
    }
  }
  for (auto& wire : wires) old_decoder->process_all(std::move(wire));

  FilterChainProcess fec_process(chain, [](const std::string& name) -> components::FilterPtr {
    return std::make_shared<components::XorFecDecoderFilter>(name);
  });
  const auto cmd = replace_cmd("fec-old", "fec-new");
  ASSERT_TRUE(fec_process.prepare(cmd));
  ASSERT_TRUE(fec_process.apply(cmd));

  // Now deliver packet 3 (packet 2 lost) and the parity through the NEW
  // decoder: reconstruction only succeeds if the group state was adopted.
  std::vector<components::Packet> tail;
  for (std::uint64_t seq = 2; seq < 4; ++seq) {
    for (auto& wire : encoder.process_all(components::Packet::make(1, seq, {1, 2, 3}))) {
      tail.push_back(std::move(wire));
    }
  }
  auto new_decoder =
      std::dynamic_pointer_cast<components::XorFecDecoderFilter>(
          chain.remove_filter("fec-new"));
  ASSERT_TRUE(new_decoder);
  std::size_t delivered = 0;
  for (auto& wire : tail) {
    if (wire.sequence == 2 && !wire.encoding_stack.empty() &&
        wire.encoding_stack.back().starts_with("fec:")) {
      continue;  // lose data packet 2
    }
    delivered += new_decoder->process_all(std::move(wire)).size();
  }
  EXPECT_EQ(new_decoder->recovered(), 1U);
  EXPECT_EQ(delivered, 2U);  // packet 3 + reconstructed packet 2
}

TEST_F(Fixture, CleanupRetainsUndoAbilityUntilNextApply) {
  // Compensating rollback support: after apply+cleanup the removed filter is
  // still recoverable; the NEXT apply discards it.
  chain.append_filter(make_filter("old"));
  const auto cmd = replace_cmd("old", "new");
  ASSERT_TRUE(process.prepare(cmd));
  ASSERT_TRUE(process.apply(cmd));
  process.cleanup(cmd);
  ASSERT_TRUE(process.undo(cmd));
  EXPECT_TRUE(chain.has_filter("old"));
}

}  // namespace
}  // namespace sa::proto
