#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "expr/ast.hpp"
#include "expr/parser.hpp"
#include "util/rng.hpp"

namespace sa::expr {
namespace {

Assignment assign(std::map<std::string, bool> values) {
  return [values = std::move(values)](const std::string& name) {
    const auto it = values.find(name);
    return it != values.end() && it->second;
  };
}

// --- AST construction and evaluation ----------------------------------------

TEST(Ast, Constants) {
  EXPECT_TRUE(constant(true)->evaluate(assign({})));
  EXPECT_FALSE(constant(false)->evaluate(assign({})));
}

TEST(Ast, VarLooksUpAssignment) {
  const auto e = var("A");
  EXPECT_TRUE(e->evaluate(assign({{"A", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"A", false}})));
  EXPECT_FALSE(e->evaluate(assign({})));  // unmapped -> false in our helper
}

TEST(Ast, EmptyVarNameRejected) { EXPECT_THROW(var(""), std::invalid_argument); }

TEST(Ast, NotNegates) {
  EXPECT_FALSE(negate(constant(true))->evaluate(assign({})));
  EXPECT_TRUE(negate(constant(false))->evaluate(assign({})));
}

TEST(Ast, AndOrSemantics) {
  const auto a = var("A"), b = var("B");
  const auto both = conjunction({a, b});
  const auto either = disjunction({a, b});
  EXPECT_TRUE(both->evaluate(assign({{"A", true}, {"B", true}})));
  EXPECT_FALSE(both->evaluate(assign({{"A", true}})));
  EXPECT_TRUE(either->evaluate(assign({{"A", true}})));
  EXPECT_FALSE(either->evaluate(assign({})));
}

TEST(Ast, XorIsOddParity) {
  const auto e = exclusive_or({var("A"), var("B"), var("C")});
  EXPECT_FALSE(e->evaluate(assign({})));
  EXPECT_TRUE(e->evaluate(assign({{"A", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"A", true}, {"B", true}})));
  EXPECT_TRUE(e->evaluate(assign({{"A", true}, {"B", true}, {"C", true}})));
}

TEST(Ast, ExactlyOneSemantics) {
  const auto e = exactly_one({var("A"), var("B"), var("C")});
  EXPECT_FALSE(e->evaluate(assign({})));
  EXPECT_TRUE(e->evaluate(assign({{"B", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"A", true}, {"C", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"A", true}, {"B", true}, {"C", true}})));
}

TEST(Ast, ImpliesTruthTable) {
  const auto e = implies(var("A"), var("B"));
  EXPECT_TRUE(e->evaluate(assign({})));
  EXPECT_TRUE(e->evaluate(assign({{"B", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"A", true}})));
  EXPECT_TRUE(e->evaluate(assign({{"A", true}, {"B", true}})));
}

TEST(Ast, SingleOperandNaryCollapses) {
  EXPECT_EQ(conjunction({var("A")})->kind(), ExprKind::Var);
  EXPECT_EQ(disjunction({var("A")})->kind(), ExprKind::Var);
  EXPECT_EQ(exclusive_or({var("A")})->kind(), ExprKind::Var);
  // exactly_one keeps its node: one(A) means "A is on" and must stay distinct.
  EXPECT_EQ(exactly_one({var("A")})->kind(), ExprKind::ExactlyOne);
}

TEST(Ast, EmptyOperandsRejected) {
  EXPECT_THROW(conjunction({}), std::invalid_argument);
  EXPECT_THROW(disjunction({}), std::invalid_argument);
  EXPECT_THROW(exclusive_or({}), std::invalid_argument);
  EXPECT_THROW(exactly_one({}), std::invalid_argument);
}

TEST(Ast, VariablesCollectedSortedAndDeduplicated) {
  const auto e = conjunction({var("B"), implies(var("A"), var("B")), negate(var("C"))});
  EXPECT_EQ(e->variables(), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(Ast, NamedFactoryComposition) {
  const auto e = disjunction({conjunction({var("A"), var("B")}), negate(var("C"))});
  EXPECT_TRUE(e->evaluate(assign({{"C", false}})));
  EXPECT_TRUE(e->evaluate(assign({{"A", true}, {"B", true}, {"C", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"A", true}, {"C", true}})));
}

// --- parser -----------------------------------------------------------------

TEST(Parser, ParsesVariable) {
  const auto e = parse("Encoder_1");
  EXPECT_EQ(e->kind(), ExprKind::Var);
  EXPECT_TRUE(e->evaluate(assign({{"Encoder_1", true}})));
}

TEST(Parser, ParsesLiterals) {
  EXPECT_TRUE(parse("true")->evaluate(assign({})));
  EXPECT_FALSE(parse("false")->evaluate(assign({})));
}

TEST(Parser, PrecedenceAndBeforeOr) {
  // A | B & C  ==  A | (B & C)
  const auto e = parse("A | B & C");
  EXPECT_TRUE(e->evaluate(assign({{"A", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"B", true}})));
  EXPECT_TRUE(e->evaluate(assign({{"B", true}, {"C", true}})));
}

TEST(Parser, PrecedenceXorBetweenAndOr) {
  // A ^ B & C == A ^ (B & C);  A | B ^ C == A | (B ^ C)
  EXPECT_TRUE(parse("A ^ B & C")->evaluate(assign({{"A", true}, {"B", true}})));
  EXPECT_FALSE(parse("A ^ B & C")->evaluate(assign({{"A", true}, {"B", true}, {"C", true}})));
  EXPECT_TRUE(parse("A | B ^ C")->evaluate(assign({{"B", true}})));
}

TEST(Parser, ImpliesIsRightAssociative) {
  // A -> B -> C == A -> (B -> C): with A=true, B=true, C=false it's false.
  const auto e = parse("A -> B -> C");
  EXPECT_FALSE(e->evaluate(assign({{"A", true}, {"B", true}})));
  // (A -> B) -> C with same assignment would be false too; distinguish with
  // A=false, B=true, C=false: right-assoc gives true, left-assoc gives false.
  EXPECT_TRUE(e->evaluate(assign({{"B", true}})));
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const auto e = parse("(A | B) & C");
  EXPECT_FALSE(e->evaluate(assign({{"A", true}})));
  EXPECT_TRUE(e->evaluate(assign({{"A", true}, {"C", true}})));
}

TEST(Parser, NotBindsTightest) {
  const auto e = parse("!A & B");
  EXPECT_TRUE(e->evaluate(assign({{"B", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"A", true}, {"B", true}})));
}

TEST(Parser, DoubleNegation) {
  EXPECT_TRUE(parse("!!A")->evaluate(assign({{"A", true}})));
}

TEST(Parser, ExactlyOneFunction) {
  const auto e = parse("one(D1, D2, D3)");
  EXPECT_TRUE(e->evaluate(assign({{"D2", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"D1", true}, {"D3", true}})));
  EXPECT_FALSE(e->evaluate(assign({})));
}

TEST(Parser, Xor1Alias) {
  const auto e = parse("xor1(A, B)");
  EXPECT_EQ(e->kind(), ExprKind::ExactlyOne);
}

TEST(Parser, OneAsPlainIdentifier) {
  // "one" not followed by '(' is an ordinary variable name.
  const auto e = parse("one & two");
  EXPECT_TRUE(e->evaluate(assign({{"one", true}, {"two", true}})));
}

TEST(Parser, NestedOne) {
  const auto e = parse("one(A & B, C)");
  EXPECT_TRUE(e->evaluate(assign({{"C", true}})));
  EXPECT_TRUE(e->evaluate(assign({{"A", true}, {"B", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"A", true}, {"B", true}, {"C", true}})));
}

TEST(Parser, PaperInvariantE1) {
  const auto e = parse("E1 -> (D1 | D2) & D4");
  EXPECT_TRUE(e->evaluate(assign({{"E1", true}, {"D1", true}, {"D4", true}})));
  EXPECT_TRUE(e->evaluate(assign({{"E1", true}, {"D2", true}, {"D4", true}})));
  EXPECT_FALSE(e->evaluate(assign({{"E1", true}, {"D1", true}})));   // no D4
  EXPECT_FALSE(e->evaluate(assign({{"E1", true}, {"D4", true}})));   // no D1/D2
  EXPECT_TRUE(e->evaluate(assign({})));                              // vacuous
}

TEST(Parser, ErrorsCarryOffsets) {
  try {
    parse("A &");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position(), 3U);
  }
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("A B"), ParseError);      // trailing garbage
  EXPECT_THROW(parse("(A"), ParseError);       // unclosed paren
  EXPECT_THROW(parse("A -"), ParseError);      // bare dash
  EXPECT_THROW(parse("| A"), ParseError);      // leading operator
  EXPECT_THROW(parse("one(A,)"), ParseError);  // dangling comma
  EXPECT_THROW(parse("A @ B"), ParseError);    // unknown character
  EXPECT_THROW(parse("1A"), ParseError);       // identifier cannot start with digit
}

TEST(Parser, RoundTripThroughToString) {
  for (const char* text : {
           "A",
           "!(A)",
           "(A & B & C)",
           "(A | (B & C))",
           "((A ^ B) -> C)",
           "one(A, B, C)",
           "(one(D1, D2, D3) & one(E1, E2))",
           "(E1 -> ((D1 | D2) & D4))",
       }) {
    const auto first = parse(text);
    const auto second = parse(first->to_string());
    EXPECT_EQ(first->to_string(), second->to_string()) << text;
  }
}

// Property: parsed expression evaluates identically to a hand-built oracle on
// every assignment of its variables.
TEST(ParserProperty, ExhaustiveEquivalenceOnPaperInvariants) {
  struct Case {
    const char* text;
    std::function<bool(bool e1, bool e2, bool d1, bool d2, bool d3, bool d4, bool d5)> oracle;
  };
  const Case cases[] = {
      {"one(D1, D2, D3)",
       [](bool, bool, bool d1, bool d2, bool d3, bool, bool) {
         return (d1 + d2 + d3) == 1;
       }},
      {"one(E1, E2)",
       [](bool e1, bool e2, bool, bool, bool, bool, bool) { return (e1 + e2) == 1; }},
      {"E1 -> (D1 | D2) & D4",
       [](bool e1, bool, bool d1, bool d2, bool, bool d4, bool) {
         return !e1 || ((d1 || d2) && d4);
       }},
      {"E2 -> (D3 | D2) & D5",
       [](bool, bool e2, bool, bool d2, bool d3, bool, bool d5) {
         return !e2 || ((d3 || d2) && d5);
       }},
  };
  for (const Case& test_case : cases) {
    const auto expr = parse(test_case.text);
    for (int bits = 0; bits < 128; ++bits) {
      const bool e1 = bits & 1, e2 = bits & 2, d1 = bits & 4, d2 = bits & 8, d3 = bits & 16,
                 d4 = bits & 32, d5 = bits & 64;
      const auto assignment = assign({{"E1", e1},
                                      {"E2", e2},
                                      {"D1", d1},
                                      {"D2", d2},
                                      {"D3", d3},
                                      {"D4", d4},
                                      {"D5", d5}});
      EXPECT_EQ(expr->evaluate(assignment), test_case.oracle(e1, e2, d1, d2, d3, d4, d5))
          << test_case.text << " bits=" << bits;
    }
  }
}

// Property: random expression trees survive a to_string/parse round trip and
// evaluate identically before and after, on every assignment of their (at
// most 4) variables.
TEST(ParserProperty, RandomTreesRoundTripAndEvaluateIdentically) {
  util::Rng rng(424242);
  const std::vector<std::string> names{"A", "B", "C", "D"};

  std::function<ExprPtr(int)> random_tree = [&](int depth) -> ExprPtr {
    if (depth <= 0 || rng.next_bool(0.3)) {
      if (rng.next_bool(0.1)) return constant(rng.next_bool(0.5));
      return var(names[rng.next_below(names.size())]);
    }
    switch (rng.next_below(6)) {
      case 0: return negate(random_tree(depth - 1));
      case 1: return conjunction({random_tree(depth - 1), random_tree(depth - 1)});
      case 2: return disjunction({random_tree(depth - 1), random_tree(depth - 1)});
      case 3: return exclusive_or({random_tree(depth - 1), random_tree(depth - 1)});
      case 4: return implies(random_tree(depth - 1), random_tree(depth - 1));
      default:
        return exactly_one(
            {random_tree(depth - 1), random_tree(depth - 1), random_tree(depth - 1)});
    }
  };

  for (int trial = 0; trial < 60; ++trial) {
    const ExprPtr original = random_tree(4);
    const ExprPtr reparsed = parse(original->to_string());
    for (int bits = 0; bits < 16; ++bits) {
      const auto assignment = assign({{"A", (bits & 1) != 0},
                                      {"B", (bits & 2) != 0},
                                      {"C", (bits & 4) != 0},
                                      {"D", (bits & 8) != 0}});
      EXPECT_EQ(original->evaluate(assignment), reparsed->evaluate(assignment))
          << original->to_string() << " bits=" << bits;
    }
  }
}

}  // namespace
}  // namespace sa::expr
