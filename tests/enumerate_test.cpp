#include <gtest/gtest.h>

#include "config/enumerate.hpp"
#include "util/rng.hpp"

namespace sa::config {
namespace {

struct PaperFixture {
  ComponentRegistry registry;
  InvariantSet invariants{registry};

  PaperFixture() {
    registry.add("E1", 0);
    registry.add("E2", 0);
    registry.add("D1", 1);
    registry.add("D2", 1);
    registry.add("D3", 1);
    registry.add("D4", 2);
    registry.add("D5", 2);
    invariants.add("resource constraint", "one(D1, D2, D3)");
    invariants.add("security constraint", "one(E1, E2)");
    invariants.add("E1 dependency", "E1 -> (D1 | D2) & D4");
    invariants.add("E2 dependency", "E2 -> (D3 | D2) & D5");
  }
};

// --- Table 1 reproduction -------------------------------------------------------

TEST(Enumerate, PaperTable1ExactSet) {
  PaperFixture fixture;
  const auto safe = enumerate_safe_exhaustive(fixture.invariants);

  std::set<std::string> bit_strings;
  for (const Configuration& config : safe) {
    bit_strings.insert(config.to_bit_string(fixture.registry.size()));
  }
  // The eight rows of Table 1.
  const std::set<std::string> expected{
      "0100101", "1100101", "1101001", "1101010",
      "1110010", "0101001", "1001010", "1010010",
  };
  EXPECT_EQ(bit_strings, expected);
}

TEST(Enumerate, PaperTable1Descriptions) {
  PaperFixture fixture;
  const auto safe = enumerate_safe_exhaustive(fixture.invariants);
  std::set<std::string> names;
  for (const Configuration& config : safe) names.insert(config.describe(fixture.registry));
  const std::set<std::string> expected{
      "D4,D1,E1",    "D5,D4,D1,E1", "D5,D4,D2,E1", "D5,D4,D2,E2",
      "D5,D4,D3,E2", "D4,D2,E1",    "D5,D2,E2",    "D5,D3,E2",
  };
  EXPECT_EQ(names, expected);
}

// --- strategy agreement --------------------------------------------------------

TEST(Enumerate, PrunedMatchesExhaustiveOnPaperScenario) {
  PaperFixture fixture;
  EXPECT_EQ(enumerate_safe_pruned(fixture.invariants),
            enumerate_safe_exhaustive(fixture.invariants));
}

TEST(Enumerate, DecomposedMatchesExhaustiveOnPaperScenario) {
  PaperFixture fixture;
  EXPECT_EQ(enumerate_safe_decomposed(fixture.invariants),
            enumerate_safe_exhaustive(fixture.invariants));
  EXPECT_EQ(count_safe_decomposed(fixture.invariants), 8U);
}

TEST(Enumerate, EmptyInvariantSetYieldsAllConfigurations) {
  ComponentRegistry registry;
  registry.add("A", 0);
  registry.add("B", 0);
  const InvariantSet invariants(registry);
  EXPECT_EQ(enumerate_safe_exhaustive(invariants).size(), 4U);
  EXPECT_EQ(enumerate_safe_pruned(invariants).size(), 4U);
  EXPECT_EQ(enumerate_safe_decomposed(invariants).size(), 4U);
}

TEST(Enumerate, ConstantFalseInvariantEmptiesSet) {
  ComponentRegistry registry;
  registry.add("A", 0);
  InvariantSet invariants(registry);
  invariants.add("impossible", "false");
  EXPECT_TRUE(enumerate_safe_exhaustive(invariants).empty());
  EXPECT_TRUE(enumerate_safe_pruned(invariants).empty());
  EXPECT_TRUE(enumerate_safe_decomposed(invariants).empty());
  EXPECT_EQ(count_safe_decomposed(invariants), 0U);
}

TEST(Enumerate, UnsatisfiableVariableInvariant) {
  ComponentRegistry registry;
  registry.add("A", 0);
  InvariantSet invariants(registry);
  invariants.add("contradiction", "A & !A");
  EXPECT_TRUE(enumerate_safe_exhaustive(invariants).empty());
  EXPECT_TRUE(enumerate_safe_pruned(invariants).empty());
  EXPECT_TRUE(enumerate_safe_decomposed(invariants).empty());
}

// --- collaborative sets ----------------------------------------------------------

TEST(CollaborativeSets, PartitionsByInvariantConnectivity) {
  ComponentRegistry registry;
  registry.add("A", 0);  // 0
  registry.add("B", 0);  // 1
  registry.add("C", 1);  // 2
  registry.add("D", 1);  // 3
  registry.add("E", 2);  // 4 — untouched by any invariant
  InvariantSet invariants(registry);
  invariants.add("ab", "A -> B");
  invariants.add("cd", "C -> D");
  const auto sets = collaborative_sets(invariants);
  ASSERT_EQ(sets.size(), 3U);
  EXPECT_EQ(sets[0], (std::vector<ComponentId>{0, 1}));
  EXPECT_EQ(sets[1], (std::vector<ComponentId>{2, 3}));
  EXPECT_EQ(sets[2], (std::vector<ComponentId>{4}));
}

TEST(CollaborativeSets, ChainedInvariantsMergeSets) {
  ComponentRegistry registry;
  registry.add("A", 0);
  registry.add("B", 0);
  registry.add("C", 0);
  InvariantSet invariants(registry);
  invariants.add("ab", "A -> B");
  invariants.add("bc", "B -> C");
  const auto sets = collaborative_sets(invariants);
  ASSERT_EQ(sets.size(), 1U);
  EXPECT_EQ(sets[0].size(), 3U);
}

TEST(CollaborativeSets, PaperScenarioIsOneSet) {
  PaperFixture fixture;
  // E1's dependency touches D1, D2, D4; E2's touches D2, D3, D5; the one()
  // constraints tie the rest — everything collapses into a single set.
  const auto sets = collaborative_sets(fixture.invariants);
  ASSERT_EQ(sets.size(), 1U);
  EXPECT_EQ(sets[0].size(), 7U);
}

// Property: on random invariant sets over <= 10 components, all three
// strategies produce the same safe sets.
TEST(EnumerateProperty, StrategiesAgreeOnRandomInvariants) {
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    ComponentRegistry registry;
    const std::size_t n = 2 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) {
      registry.add("c" + std::to_string(i), static_cast<ProcessId>(i % 3));
    }
    InvariantSet invariants(registry);
    const std::size_t k = rng.next_below(4);
    for (std::size_t i = 0; i < k; ++i) {
      // Random small invariant over up to 3 distinct components.
      const auto pick = [&] { return "c" + std::to_string(rng.next_below(n)); };
      std::string text;
      switch (rng.next_below(4)) {
        case 0: text = pick() + " -> " + pick(); break;
        case 1: text = "one(" + pick() + ", " + pick() + ")"; break;
        case 2: text = pick() + " | " + pick(); break;
        default: text = "!" + pick() + " | (" + pick() + " & " + pick() + ")"; break;
      }
      invariants.add("inv" + std::to_string(i), text);
    }
    const auto exhaustive = enumerate_safe_exhaustive(invariants);
    EXPECT_EQ(enumerate_safe_pruned(invariants), exhaustive) << "trial " << trial;
    EXPECT_EQ(enumerate_safe_decomposed(invariants), exhaustive) << "trial " << trial;
    EXPECT_EQ(count_safe_decomposed(invariants), exhaustive.size()) << "trial " << trial;
    // Every returned configuration truly satisfies the invariants.
    for (const Configuration& config : exhaustive) {
      EXPECT_TRUE(invariants.satisfied(config));
    }
  }
}

}  // namespace
}  // namespace sa::config
