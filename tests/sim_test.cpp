#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sa::sim {
namespace {

// --- Simulator ---------------------------------------------------------------

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(ms(30), [&] { order.push_back(3); });
  sim.schedule_at(ms(10), [&] { order.push_back(1); });
  sim.schedule_at(ms(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ms(30));
}

TEST(Simulator, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Time fired_at = -1;
  sim.schedule_at(ms(10), [&] {
    sim.schedule_after(ms(5), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, ms(15));
}

TEST(Simulator, RejectsPastAndEmptyEvents) {
  Simulator sim;
  sim.schedule_at(ms(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(ms(5), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(ms(20), nullptr), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(ms(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, CancelFromInsideHandler) {
  Simulator sim;
  bool second_fired = false;
  const EventId second = sim.schedule_at(ms(20), [&] { second_fired = true; });
  sim.schedule_at(ms(10), [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, CancelAlreadyFiredIdFromHandlerAtSameTimestamp) {
  // Two events share a timestamp; the second tries to cancel the first from
  // inside its handler. The first has already executed (FIFO tie-break), so
  // the cancel must report false and must not disturb later events.
  Simulator sim;
  bool first_fired = false;
  bool later_fired = false;
  bool cancel_result = true;
  const EventId first = sim.schedule_at(ms(10), [&] { first_fired = true; });
  sim.schedule_at(ms(10), [&] { cancel_result = sim.cancel(first); });
  sim.schedule_at(ms(20), [&] { later_fired = true; });
  sim.run();
  EXPECT_TRUE(first_fired);
  EXPECT_FALSE(cancel_result);
  EXPECT_TRUE(later_fired);
}

TEST(Simulator, FifoTieBreakSurvivesInterleavedScheduleAndCancel) {
  // Schedule ten same-timestamp events, cancel the odd ones (interleaved with
  // fresh schedules at the same timestamp): survivors must still fire in
  // their original schedule order, with the late additions after them.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.schedule_at(ms(5), [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 10; i += 2) {
    EXPECT_TRUE(sim.cancel(ids[i]));
    sim.schedule_at(ms(5), [&order, i] { order.push_back(100 + i); });
  }
  sim.run();
  EXPECT_EQ(order,
            (std::vector<int>{0, 2, 4, 6, 8, 101, 103, 105, 107, 109}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<Time> fired;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(ms(10 * i), [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(ms(25)), 2U);
  EXPECT_EQ(sim.now(), ms(25));
  EXPECT_EQ(fired, (std::vector<Time>{ms(10), ms(20)}));
  EXPECT_EQ(sim.run_until(ms(100)), 3U);
}

TEST(Simulator, RunWithEventBudget) {
  Simulator sim;
  int count = 0;
  std::function<void()> reschedule = [&] {
    ++count;
    sim.schedule_after(ms(1), reschedule);
  };
  sim.schedule_after(ms(1), reschedule);
  EXPECT_EQ(sim.run(100), 100U);
  EXPECT_EQ(count, 100);
}

TEST(Simulator, PendingEventsCount) {
  Simulator sim;
  const EventId a = sim.schedule_at(ms(1), [] {});
  sim.schedule_at(ms(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2U);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1U);
}

// --- Network ---------------------------------------------------------------------

struct TextMsg final : Message {
  std::string text;
  explicit TextMsg(std::string t) : text(std::move(t)) {}
  std::string type_name() const override { return "text"; }
};

struct NetFixture : ::testing::Test {
  Simulator sim;
  Network net{sim, 1};
  NodeId a = net.add_node("a");
  NodeId b = net.add_node("b");
  std::vector<std::pair<NodeId, std::string>> received;

  void SetUp() override {
    net.set_handler(b, [this](NodeId from, MessagePtr msg) {
      received.emplace_back(from, dynamic_cast<const TextMsg&>(*msg).text);
    });
  }
};

TEST_F(NetFixture, DeliversWithLatency) {
  net.link(a, b, ChannelConfig{ms(5), 0, 0.0, true});
  EXPECT_TRUE(net.send(a, b, std::make_shared<TextMsg>("hi")));
  EXPECT_TRUE(received.empty());
  sim.run();
  ASSERT_EQ(received.size(), 1U);
  EXPECT_EQ(received[0].first, a);
  EXPECT_EQ(received[0].second, "hi");
  EXPECT_EQ(sim.now(), ms(5));
}

TEST_F(NetFixture, MissingChannelThrows) {
  EXPECT_THROW(net.send(a, b, std::make_shared<TextMsg>("x")), std::out_of_range);
}

TEST_F(NetFixture, FifoOrderingDespiteJitter) {
  net.link(a, b, ChannelConfig{ms(5), ms(10), 0.0, /*fifo=*/true});
  for (int i = 0; i < 50; ++i) {
    net.send(a, b, std::make_shared<TextMsg>(std::to_string(i)));
  }
  sim.run();
  ASSERT_EQ(received.size(), 50U);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[i].second, std::to_string(i));
}

TEST_F(NetFixture, LossDropsSomeMessages) {
  net.link(a, b, ChannelConfig{ms(1), 0, 0.5, true});
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    accepted += net.send(a, b, std::make_shared<TextMsg>("m"));
  }
  sim.run();
  EXPECT_EQ(received.size(), static_cast<std::size_t>(accepted));
  EXPECT_GT(accepted, 50);
  EXPECT_LT(accepted, 150);
  const ChannelStats& stats = net.channel(a, b).stats();
  EXPECT_EQ(stats.sent, 200U);
  EXPECT_EQ(stats.dropped_loss + stats.delivered, 200U);
}

TEST_F(NetFixture, LosslessByDefault) {
  net.link(a, b);
  for (int i = 0; i < 100; ++i) net.send(a, b, std::make_shared<TextMsg>("m"));
  sim.run();
  EXPECT_EQ(received.size(), 100U);
}

TEST_F(NetFixture, PartitionDropsEverything) {
  net.link(a, b, ChannelConfig{ms(1), 0, 0.0, true});
  net.partition_pair(a, b, true);
  EXPECT_FALSE(net.send(a, b, std::make_shared<TextMsg>("lost")));
  sim.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(net.channel(a, b).stats().dropped_partition, 1U);

  net.partition_pair(a, b, false);
  EXPECT_TRUE(net.send(a, b, std::make_shared<TextMsg>("healed")));
  sim.run();
  ASSERT_EQ(received.size(), 1U);
  EXPECT_EQ(received[0].second, "healed");
}

TEST_F(NetFixture, PartitionNodeCutsAllItsChannels) {
  const NodeId c = net.add_node("c");
  net.link(a, b, {});
  net.link(c, b, {});
  net.partition_node(b, true);
  EXPECT_FALSE(net.send(a, b, std::make_shared<TextMsg>("x")));
  EXPECT_FALSE(net.send(c, b, std::make_shared<TextMsg>("y")));
}

TEST_F(NetFixture, TraceRecordsDeliveriesAndDrops) {
  net.link(a, b, ChannelConfig{ms(1), 0, 0.0, true});
  net.set_tracing(true);
  net.send(a, b, std::make_shared<TextMsg>("one"));
  net.partition_pair(a, b, true);
  net.send(a, b, std::make_shared<TextMsg>("two"));
  sim.run();
  ASSERT_EQ(net.trace().size(), 2U);
  // The drop is recorded at send time, the delivery at arrival time.
  EXPECT_FALSE(net.trace()[0].delivered);
  EXPECT_TRUE(net.trace()[1].delivered);
  EXPECT_EQ(net.trace()[1].type, "text");
}

TEST_F(NetFixture, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim2;
    Network net2(sim2, seed);
    const NodeId x = net2.add_node("x");
    const NodeId y = net2.add_node("y");
    net2.set_handler(y, [](NodeId, MessagePtr) {});
    net2.link(x, y, ChannelConfig{ms(1), ms(3), 0.3, false});
    std::string accepted_pattern;
    for (int i = 0; i < 100; ++i) {
      accepted_pattern += net2.send(x, y, std::make_shared<TextMsg>("m")) ? '1' : '0';
    }
    sim2.run();
    return accepted_pattern;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));  // overwhelmingly likely
}

TEST_F(NetFixture, DuplicationDeliversCopies) {
  ChannelConfig config{ms(1), 0, 0.0, true};
  config.duplicate_probability = 1.0;  // every message doubled
  net.link(a, b, config);
  for (int i = 0; i < 10; ++i) net.send(a, b, std::make_shared<TextMsg>(std::to_string(i)));
  sim.run();
  EXPECT_EQ(received.size(), 20U);
  EXPECT_EQ(net.channel(a, b).stats().duplicated, 10U);
}

TEST_F(NetFixture, DuplicationPreservesFifoOrder) {
  ChannelConfig config{ms(2), ms(5), 0.0, /*fifo=*/true};
  config.duplicate_probability = 0.5;
  net.link(a, b, config);
  for (int i = 0; i < 50; ++i) net.send(a, b, std::make_shared<TextMsg>(std::to_string(i)));
  sim.run();
  // With FIFO on, neither originals nor copies ever overtake later sends:
  // the values seen in arrival order are non-decreasing.
  int last = -1;
  for (const auto& [from, text] : received) {
    const int value = std::stoi(text);
    EXPECT_GE(value, last) << "duplicate/reordering violation";
    last = std::max(last, value);
  }
}

struct SizedMsg final : Message {
  std::size_t bytes;
  explicit SizedMsg(std::size_t b) : bytes(b) {}
  std::string type_name() const override { return "sized"; }
  std::size_t size_bytes() const override { return bytes; }
};

TEST_F(NetFixture, BandwidthDelaysLargeMessages) {
  ChannelConfig config{ms(1), 0, 0.0, true};
  config.bytes_per_second = 1000;  // 1 KB/s: a 500-byte message takes 500ms
  net.link(a, b, config);
  net.set_handler(b, [this](NodeId from, MessagePtr) { received.emplace_back(from, ""); });
  net.send(a, b, std::make_shared<SizedMsg>(500));
  sim.run();
  EXPECT_EQ(sim.now(), ms(501));  // 500ms transmission + 1ms propagation
}

TEST_F(NetFixture, BandwidthSerializesBackToBackSends) {
  ChannelConfig config{ms(1), 0, 0.0, true};
  config.bytes_per_second = 1000;
  net.link(a, b, config);
  std::vector<Time> arrivals;
  net.set_handler(b, [&](NodeId, MessagePtr) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) net.send(a, b, std::make_shared<SizedMsg>(100));
  sim.run();
  // 100ms per transmission, queued behind one another: 101, 201, 301.
  ASSERT_EQ(arrivals.size(), 3U);
  EXPECT_EQ(arrivals[0], ms(101));
  EXPECT_EQ(arrivals[1], ms(201));
  EXPECT_EQ(arrivals[2], ms(301));
}

TEST_F(NetFixture, UnlimitedBandwidthByDefault) {
  net.link(a, b, ChannelConfig{ms(1), 0, 0.0, true});
  net.set_handler(b, [this](NodeId from, MessagePtr) { received.emplace_back(from, ""); });
  for (int i = 0; i < 3; ++i) net.send(a, b, std::make_shared<SizedMsg>(1'000'000));
  sim.run();
  EXPECT_EQ(sim.now(), ms(1));  // all arrive together
}

TEST_F(NetFixture, LinkBidirectionalCreatesBothChannels) {
  net.link_bidirectional(a, b, {});
  EXPECT_TRUE(net.has_channel(a, b));
  EXPECT_TRUE(net.has_channel(b, a));
}

}  // namespace
}  // namespace sa::sim
