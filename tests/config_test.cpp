#include <gtest/gtest.h>

#include "config/configuration.hpp"
#include "config/invariants.hpp"
#include "config/registry.hpp"

namespace sa::config {
namespace {

ComponentRegistry paper_registry() {
  ComponentRegistry registry;
  registry.add("E1", 0);
  registry.add("E2", 0);
  registry.add("D1", 1);
  registry.add("D2", 1);
  registry.add("D3", 1);
  registry.add("D4", 2);
  registry.add("D5", 2);
  return registry;
}

// --- ComponentRegistry ---------------------------------------------------------

TEST(Registry, AssignsDenseIds) {
  const auto registry = paper_registry();
  EXPECT_EQ(registry.size(), 7U);
  EXPECT_EQ(registry.require("E1"), 0U);
  EXPECT_EQ(registry.require("D5"), 6U);
  EXPECT_EQ(registry.name(3), "D2");
  EXPECT_EQ(registry.process(0), 0U);
  EXPECT_EQ(registry.process(4), 1U);
}

TEST(Registry, FindReturnsNulloptForUnknown) {
  const auto registry = paper_registry();
  EXPECT_FALSE(registry.find("nope").has_value());
  EXPECT_TRUE(registry.find("D3").has_value());
}

TEST(Registry, RequireThrowsWithName) {
  const auto registry = paper_registry();
  try {
    registry.require("Zed");
    FAIL();
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("Zed"), std::string::npos);
  }
}

TEST(Registry, RejectsDuplicatesAndEmpty) {
  ComponentRegistry registry;
  registry.add("A", 0);
  EXPECT_THROW(registry.add("A", 1), std::invalid_argument);
  EXPECT_THROW(registry.add("", 0), std::invalid_argument);
}

TEST(Registry, CapsAt64Components) {
  ComponentRegistry registry;
  for (int i = 0; i < 64; ++i) registry.add("c" + std::to_string(i), 0);
  EXPECT_THROW(registry.add("c64", 0), std::invalid_argument);
}

TEST(Registry, ProcessesSortedUnique) {
  const auto registry = paper_registry();
  EXPECT_EQ(registry.processes(), (std::vector<ProcessId>{0, 1, 2}));
}

// --- Configuration ----------------------------------------------------------------

TEST(Configuration, EmptyByDefault) {
  Configuration config;
  EXPECT_TRUE(config.empty());
  EXPECT_EQ(config.count(), 0U);
}

TEST(Configuration, WithWithoutContains) {
  Configuration config;
  config = config.with(3).with(5);
  EXPECT_TRUE(config.contains(3));
  EXPECT_TRUE(config.contains(5));
  EXPECT_FALSE(config.contains(4));
  EXPECT_EQ(config.count(), 2U);
  config = config.without(3);
  EXPECT_FALSE(config.contains(3));
  EXPECT_EQ(config.count(), 1U);
}

TEST(Configuration, WithIsIdempotent) {
  const Configuration config = Configuration().with(2).with(2);
  EXPECT_EQ(config.count(), 1U);
}

TEST(Configuration, SetAlgebra) {
  const Configuration a(0b0110);
  const Configuration b(0b0011);
  EXPECT_EQ(a.minus(b).bits(), 0b0100U);
  EXPECT_EQ(a.intersect(b).bits(), 0b0010U);
  EXPECT_EQ(a.unite(b).bits(), 0b0111U);
}

TEST(Configuration, OfNamesBuildsMask) {
  const auto registry = paper_registry();
  const Configuration config = Configuration::of(registry, {"D4", "D1", "E1"});
  EXPECT_TRUE(config.contains(registry.require("D4")));
  EXPECT_TRUE(config.contains(registry.require("D1")));
  EXPECT_TRUE(config.contains(registry.require("E1")));
  EXPECT_EQ(config.count(), 3U);
}

TEST(Configuration, PaperBitStringRoundTrip) {
  const auto registry = paper_registry();
  // Paper source configuration: (D5,D4,D3,D2,D1,E2,E1) = 0100101 = {D4,D1,E1}.
  const Configuration config = Configuration::from_bit_string("0100101", registry.size());
  EXPECT_EQ(config, Configuration::of(registry, {"D4", "D1", "E1"}));
  EXPECT_EQ(config.to_bit_string(registry.size()), "0100101");
}

TEST(Configuration, FromBitStringValidates) {
  EXPECT_THROW(Configuration::from_bit_string("01", 3), std::invalid_argument);
  EXPECT_THROW(Configuration::from_bit_string("01x", 3), std::invalid_argument);
}

TEST(Configuration, DescribeMatchesPaperOrdering) {
  const auto registry = paper_registry();
  const Configuration config = Configuration::from_bit_string("1101001", registry.size());
  EXPECT_EQ(config.describe(registry), "D5,D4,D2,E1");
}

TEST(Configuration, ComponentsAscending) {
  const Configuration config(0b101001);
  EXPECT_EQ(config.components(6), (std::vector<ComponentId>{0, 3, 5}));
}

TEST(Configuration, HashAndOrdering) {
  const Configuration a(1), b(2);
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<Configuration>{}(a), std::hash<Configuration>{}(b));
}

// --- InvariantSet -------------------------------------------------------------------

TEST(InvariantSet, SatisfiedAndViolations) {
  const auto registry = paper_registry();
  InvariantSet invariants(registry);
  invariants.add("resource", "one(D1, D2, D3)");
  invariants.add("security", "one(E1, E2)");

  const Configuration good = Configuration::of(registry, {"D1", "E1"});
  EXPECT_TRUE(invariants.satisfied(good));
  EXPECT_TRUE(invariants.violations(good).empty());

  const Configuration bad = Configuration::of(registry, {"D1", "D2"});
  EXPECT_FALSE(invariants.satisfied(bad));
  EXPECT_EQ(invariants.violations(bad),
            (std::vector<std::string>{"resource", "security"}));
}

TEST(InvariantSet, RejectsUnknownComponentNames) {
  const auto registry = paper_registry();
  InvariantSet invariants(registry);
  EXPECT_THROW(invariants.add("typo", "E1 -> D9"), std::out_of_range);
}

TEST(InvariantSet, ReferencedComponents) {
  const auto registry = paper_registry();
  InvariantSet invariants(registry);
  invariants.add("dep", "E1 -> (D1 | D2) & D4");
  const auto ids = invariants.referenced_components(0);
  EXPECT_EQ(ids.size(), 4U);  // E1, D1, D2, D4 (sorted by name from variables())
}

TEST(InvariantSet, EmptySetSatisfiedByAnything) {
  const auto registry = paper_registry();
  const InvariantSet invariants(registry);
  EXPECT_TRUE(invariants.satisfied(Configuration(0b1111111)));
  EXPECT_TRUE(invariants.satisfied(Configuration()));
}

TEST(InvariantSet, AcceptsPrebuiltExpressions) {
  const auto registry = paper_registry();
  InvariantSet invariants(registry);
  invariants.add("manual", expr::implies(expr::var("E2"), expr::var("D5")));
  EXPECT_FALSE(invariants.satisfied(Configuration::of(registry, {"E2"})));
  EXPECT_TRUE(invariants.satisfied(Configuration::of(registry, {"E2", "D5"})));
}

}  // namespace
}  // namespace sa::config
