#include <gtest/gtest.h>

#include "proto/adaptable_process.hpp"
#include "spec/monitor.hpp"
#include "spec/monitored_process.hpp"
#include "sim/simulator.hpp"

namespace sa::spec {
namespace {

// --- segment tracking ----------------------------------------------------------

TEST(Monitor, SafeWhenNothingDeclared) {
  SafeStateMonitor monitor;
  EXPECT_TRUE(monitor.safe());
  monitor.on_event("anything");
  EXPECT_TRUE(monitor.safe());
}

TEST(Monitor, UnkeyedSegmentOpensAndCloses) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"packet", "pkt_start", "pkt_end", false});
  EXPECT_TRUE(monitor.safe());
  monitor.on_event("pkt_start");
  EXPECT_FALSE(monitor.safe());
  monitor.on_event("pkt_end");
  EXPECT_TRUE(monitor.safe());
}

TEST(Monitor, UnkeyedSegmentNests) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"session", "open", "close", false});
  monitor.on_event("open");
  monitor.on_event("open");
  monitor.on_event("close");
  EXPECT_FALSE(monitor.safe());  // one level still open
  monitor.on_event("close");
  EXPECT_TRUE(monitor.safe());
  // Spurious extra close does not underflow.
  monitor.on_event("close");
  EXPECT_TRUE(monitor.safe());
}

TEST(Monitor, KeyedSegmentsTrackInstancesIndependently) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"frame", "frame_start", "frame_end", true});
  monitor.on_event("frame_start", 1);
  monitor.on_event("frame_start", 2);
  monitor.on_event("frame_end", 1);
  EXPECT_FALSE(monitor.safe());  // frame 2 still in flight
  const auto reasons = monitor.open_obligations();
  ASSERT_EQ(reasons.size(), 1U);
  EXPECT_NE(reasons[0].find("frame"), std::string::npos);
  EXPECT_NE(reasons[0].find("1 instance"), std::string::npos);
  monitor.on_event("frame_end", 2);
  EXPECT_TRUE(monitor.safe());
}

TEST(Monitor, UnrelatedEventsIgnoredBySegments) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"frame", "frame_start", "frame_end", true});
  monitor.on_event("heartbeat");
  EXPECT_TRUE(monitor.safe());
  EXPECT_EQ(monitor.events_observed(), 1U);
}

TEST(Monitor, DeclarationValidation) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"a", "x", "y", false});
  EXPECT_THROW(monitor.declare_segment({"a", "p", "q", false}), std::invalid_argument);
  EXPECT_THROW(monitor.declare_segment({"b", "x", "z", false}), std::invalid_argument);
  EXPECT_THROW(monitor.declare_segment({"c", "w", "y", false}), std::invalid_argument);
  EXPECT_THROW(monitor.declare_segment({"d", "same", "same", false}), std::invalid_argument);
  EXPECT_THROW(monitor.declare_segment({"", "m", "n", false}), std::invalid_argument);
}

// --- ptLTL obligations -----------------------------------------------------------

TEST(Monitor, ObligationMustHoldForSafety) {
  SafeStateMonitor monitor;
  // "every request answered": unsafe between req and resp.
  monitor.add_obligation("request answered", "!(O req & !O resp)");
  EXPECT_TRUE(monitor.safe());
  monitor.on_event("req");
  EXPECT_FALSE(monitor.safe());
  EXPECT_EQ(monitor.open_obligations(),
            (std::vector<std::string>{"obligation 'request answered' unsatisfied"}));
  monitor.on_event("resp");
  EXPECT_TRUE(monitor.safe());
}

TEST(Monitor, SegmentsAndObligationsCompose) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"packet", "pkt_start", "pkt_end", false});
  monitor.add_obligation("handshake done", "O hello");
  monitor.on_event("pkt_start");
  monitor.on_event("pkt_end");
  EXPECT_FALSE(monitor.safe());  // no hello yet
  monitor.on_event("hello");
  EXPECT_TRUE(monitor.safe());
  monitor.on_event("pkt_start");
  EXPECT_FALSE(monitor.safe());  // segment reopened
}

// --- notifications -----------------------------------------------------------------

TEST(Monitor, NotifyFiresImmediatelyWhenAlreadySafe) {
  SafeStateMonitor monitor;
  int fired = 0;
  monitor.notify_when_safe([&] { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(Monitor, NotifyDeferredUntilSafeTransition) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"frame", "fs", "fe", true});
  monitor.on_event("fs", 7);
  int fired = 0;
  monitor.notify_when_safe([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  monitor.on_event("fe", 7);
  EXPECT_EQ(fired, 1);
  // One-shot: later unsafe/safe cycles do not re-fire.
  monitor.on_event("fs", 8);
  monitor.on_event("fe", 8);
  EXPECT_EQ(fired, 1);
}

TEST(Monitor, CancelPendingNotifications) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"frame", "fs", "fe", true});
  monitor.on_event("fs", 1);
  int fired = 0;
  monitor.notify_when_safe([&] { ++fired; });
  monitor.cancel_pending_notifications();
  monitor.on_event("fe", 1);
  EXPECT_EQ(fired, 0);
}

TEST(Monitor, ResetClearsEverything) {
  SafeStateMonitor monitor;
  monitor.declare_segment({"frame", "fs", "fe", true});
  monitor.add_obligation("answered", "!(O req & !O resp)");
  monitor.on_event("fs", 1);
  monitor.on_event("req");
  EXPECT_FALSE(monitor.safe());
  monitor.reset();
  EXPECT_TRUE(monitor.safe());
  EXPECT_EQ(monitor.events_observed(), 0U);
}

// --- MonitoredProcess integration ----------------------------------------------------

struct RecordingProcess : proto::AdaptableProcess {
  int reach_calls = 0, aborts = 0, applies = 0, resumes = 0;
  std::function<void()> pending;
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override {
    ++reach_calls;
    reached();
  }
  void abort_safe_state() override { ++aborts; }
  bool apply(const proto::LocalCommand&) override {
    ++applies;
    return true;
  }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override { ++resumes; }
};

TEST(MonitoredProcess, DelaysQuiescenceUntilMonitorSafe) {
  RecordingProcess inner;
  SafeStateMonitor monitor;
  monitor.declare_segment({"frame", "fs", "fe", true});
  MonitoredProcess process(inner, monitor);

  monitor.on_event("fs", 3);  // mid-frame
  bool reached = false;
  process.reach_safe_state(false, [&] { reached = true; });
  EXPECT_FALSE(reached);
  EXPECT_EQ(inner.reach_calls, 0);  // not even asked to quiesce yet

  monitor.on_event("fe", 3);  // frame boundary
  EXPECT_TRUE(reached);
  EXPECT_EQ(inner.reach_calls, 1);
}

TEST(MonitoredProcess, ImmediateWhenMonitorAlreadySafe) {
  RecordingProcess inner;
  SafeStateMonitor monitor;
  MonitoredProcess process(inner, monitor);
  bool reached = false;
  process.reach_safe_state(true, [&] { reached = true; });
  EXPECT_TRUE(reached);
}

TEST(MonitoredProcess, AbortCancelsPendingWait) {
  RecordingProcess inner;
  SafeStateMonitor monitor;
  monitor.declare_segment({"frame", "fs", "fe", true});
  MonitoredProcess process(inner, monitor);

  monitor.on_event("fs", 1);
  bool reached = false;
  process.reach_safe_state(false, [&] { reached = true; });
  process.abort_safe_state();
  monitor.on_event("fe", 1);
  EXPECT_FALSE(reached);
  EXPECT_EQ(inner.aborts, 1);
}

TEST(MonitoredProcess, DelegatesOtherOperations) {
  RecordingProcess inner;
  SafeStateMonitor monitor;
  MonitoredProcess process(inner, monitor);
  proto::LocalCommand command;
  EXPECT_TRUE(process.prepare(command));
  EXPECT_TRUE(process.apply(command));
  process.resume();
  EXPECT_EQ(inner.applies, 1);
  EXPECT_EQ(inner.resumes, 1);
}

}  // namespace
}  // namespace sa::spec
