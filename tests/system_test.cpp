#include <gtest/gtest.h>

#include "core/system.hpp"
#include "proto/adaptable_process.hpp"

namespace sa::core {
namespace {

/// Minimal process stub for facade-level tests.
struct StubProcess : proto::AdaptableProcess {
  int applies = 0;
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override {
    ++applies;
    return true;
  }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

TEST(System, LifecycleGuards) {
  SafeAdaptationSystem system;
  system.registry().add("A", 0);
  system.registry().add("B", 0);
  system.add_invariant("pick one", "one(A, B)");
  system.add_action("swap", {"A"}, {"B"}, 5);

  EXPECT_THROW(system.manager(), std::logic_error);
  EXPECT_THROW(system.current_configuration(), std::logic_error);

  StubProcess process;
  system.attach_process(0, process);
  system.finalize();
  EXPECT_TRUE(system.finalized());
  EXPECT_THROW(system.finalize(), std::logic_error);
  EXPECT_THROW(system.add_invariant("late", "A"), std::logic_error);
  EXPECT_THROW(system.add_action("late", {"A"}, {"B"}, 1), std::logic_error);
  EXPECT_THROW(system.attach_process(1, process), std::logic_error);
  EXPECT_THROW(system.agent(9), std::out_of_range);
  EXPECT_THROW(system.agent_node(9), std::out_of_range);
}

TEST(System, MinimalTwoComponentAdaptation) {
  SafeAdaptationSystem system;
  system.registry().add("A", 0);
  system.registry().add("B", 0);
  system.add_invariant("pick one", "one(A, B)");
  system.add_action("swap", {"A"}, {"B"}, 5, "A -> B");

  StubProcess process;
  system.attach_process(0, process);
  system.finalize();

  const auto a = config::Configuration::of(system.registry(), {"A"});
  const auto b = config::Configuration::of(system.registry(), {"B"});
  system.set_current_configuration(a);

  const auto result = system.adapt_and_wait(b);
  EXPECT_EQ(result.outcome, proto::AdaptationOutcome::Success);
  EXPECT_EQ(result.steps_committed, 1U);
  EXPECT_EQ(process.applies, 1);
  EXPECT_EQ(system.current_configuration(), b);
  // The reverse direction has no action: honest failure.
  EXPECT_EQ(system.adapt_and_wait(a).outcome, proto::AdaptationOutcome::NoPathFound);
}

TEST(System, SafeConfigurationEnumerationIsExposed) {
  SafeAdaptationSystem system;
  system.registry().add("A", 0);
  system.registry().add("B", 0);
  system.registry().add("C", 0);
  system.add_invariant("one of three", "one(A, B, C)");
  StubProcess process;
  system.attach_process(0, process);
  system.finalize();
  EXPECT_EQ(system.manager().safe_configurations().size(), 3U);
}

TEST(System, MultiProcessRouting) {
  // Components on distinct processes must be commanded on the right agents.
  SafeAdaptationSystem system;
  system.registry().add("X", 0);
  system.registry().add("Y", 1);
  system.registry().add("X2", 0);
  system.registry().add("Y2", 1);
  system.add_invariant("x", "one(X, X2)");
  system.add_invariant("y", "one(Y, Y2)");
  system.add_action("swap-x", {"X"}, {"X2"}, 1);
  system.add_action("swap-y", {"Y"}, {"Y2"}, 1);

  StubProcess p0, p1;
  system.attach_process(0, p0, 0);
  system.attach_process(1, p1, 1);
  system.finalize();
  system.set_current_configuration(config::Configuration::of(system.registry(), {"X", "Y"}));

  const auto result = system.adapt_and_wait(
      config::Configuration::of(system.registry(), {"X2", "Y2"}));
  EXPECT_EQ(result.outcome, proto::AdaptationOutcome::Success);
  EXPECT_EQ(result.steps_committed, 2U);
  EXPECT_EQ(p0.applies, 1);
  EXPECT_EQ(p1.applies, 1);
}

TEST(System, AdaptAndWaitThrowsWhenRequestCannotTerminate) {
  SafeAdaptationSystem system;
  system.registry().add("A", 0);
  system.registry().add("B", 0);
  system.add_action("swap", {"A"}, {"B"}, 5);
  StubProcess process;
  system.attach_process(0, process);
  system.finalize();
  system.set_current_configuration(config::Configuration::of(system.registry(), {"A"}));
  // A tiny event budget cannot cover the adaptation: the facade reports it
  // instead of spinning forever.
  EXPECT_THROW(system.adapt_and_wait(config::Configuration::of(system.registry(), {"B"}), 3),
               std::runtime_error);
}

}  // namespace
}  // namespace sa::core
