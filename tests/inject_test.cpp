// Unit tests for the fault-injection building blocks: FaultPlan (validation,
// JSON round-trip, deterministic generation) and the FaultyTransport /
// FaultyClock decorators' semantics — partition drops at send while in-flight
// messages survive, crash additionally kills in-flight deliveries, extra
// loss/duplication layer on top of the inner transport, and timer skew scales
// scheduled delays.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "inject/fault_plan.hpp"
#include "inject/faulty_runtime.hpp"
#include "runtime/sim_runtime.hpp"

namespace sa::inject {
namespace {

// --- FaultPlan ---------------------------------------------------------------

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.events.push_back({FaultKind::Loss, 0, runtime::ms(10), 0, 0.3, 1.0});
  plan.events.push_back({FaultKind::Duplicate, runtime::ms(5), runtime::ms(20), 0, 0.8, 1.0});
  plan.events.push_back({FaultKind::PartitionNode, 100, 200, 1, 0.0, 1.0});
  plan.events.push_back({FaultKind::PartitionPair, 100, 200, 2, 0.0, 1.0});
  plan.events.push_back({FaultKind::Crash, 0, runtime::seconds(1), 0, 0.0, 1.0});
  plan.events.push_back({FaultKind::FailToReset, 50, 60, 1, 0.0, 1.0});
  plan.events.push_back({FaultKind::TimerSkew, 0, runtime::ms(100), 0, 0.0, 2.5});
  return plan;
}

TEST(FaultPlanTest, KindNamesRoundTrip) {
  for (const FaultKind kind :
       {FaultKind::Loss, FaultKind::Duplicate, FaultKind::PartitionNode,
        FaultKind::PartitionPair, FaultKind::Crash, FaultKind::FailToReset,
        FaultKind::TimerSkew}) {
    EXPECT_EQ(fault_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(fault_kind_from_string("meteor-strike"), std::invalid_argument);
}

TEST(FaultPlanTest, JsonRoundTripPreservesEveryKind) {
  const FaultPlan plan = sample_plan();
  const FaultPlan back = plan_from_json(to_json(plan));
  EXPECT_EQ(back, plan);
}

TEST(FaultPlanTest, ValidateRejectsMalformedWindows) {
  FaultPlan plan;
  plan.events.push_back({FaultKind::Loss, 10, 10, 0, 0.5, 1.0});  // empty window
  EXPECT_THROW(validate(plan), std::invalid_argument);
  plan.events[0] = {FaultKind::Loss, -1, 10, 0, 0.5, 1.0};  // negative start
  EXPECT_THROW(validate(plan), std::invalid_argument);
  plan.events[0] = {FaultKind::Loss, 0, 10, 0, std::nan(""), 1.0};
  EXPECT_THROW(validate(plan), std::invalid_argument);
  plan.events[0] = {FaultKind::Duplicate, 0, 10, 0, 1.5, 1.0};
  EXPECT_THROW(validate(plan), std::invalid_argument);
  plan.events[0] = {FaultKind::TimerSkew, 0, 10, 0, 0.0, 0.0};  // zero factor
  EXPECT_THROW(validate(plan), std::invalid_argument);
  plan.events[0] = {FaultKind::TimerSkew, 0, 10, 0, 0.0, -2.0};
  EXPECT_THROW(validate(plan), std::invalid_argument);
}

TEST(FaultPlanTest, FromJsonRejectsGarbage) {
  EXPECT_THROW(plan_from_json("{\"not\": \"an array\"}"), std::runtime_error);
  EXPECT_THROW(plan_from_json("[42]"), std::runtime_error);
  EXPECT_THROW(plan_from_json("[{\"start\": 0, \"end\": 5}]"), std::runtime_error);
  EXPECT_THROW(plan_from_json("[{\"kind\": \"loss\", \"start\": 5, \"end\": 2}]"),
               std::invalid_argument);
}

TEST(FaultPlanTest, GeneratorIsDeterministicInTheSeed) {
  PlanShape shape;
  shape.processes = {0, 1, 2};
  util::Rng a(1234);
  util::Rng b(1234);
  util::Rng c(1235);
  const FaultPlan first = generate_plan(a, shape);
  EXPECT_EQ(first, generate_plan(b, shape));
  // A neighbouring seed should (for this seed pair) give a different plan.
  EXPECT_NE(first, generate_plan(c, shape));
  EXPECT_NO_THROW(validate(first));
  EXPECT_GE(first.events.size(), 1u);
  EXPECT_LE(first.events.size(), shape.max_events);
}

TEST(FaultPlanTest, GeneratedPlansAreAlwaysValid) {
  PlanShape shape;
  shape.processes = {0, 1, 2};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed);
    EXPECT_NO_THROW(validate(generate_plan(rng, shape))) << "seed " << seed;
  }
}

// --- decorator semantics -----------------------------------------------------

struct TestMessage final : runtime::Message {
  std::string type_name() const override { return "test"; }
};

runtime::MessagePtr msg() { return std::make_shared<TestMessage>(); }

struct DecoratorFixture : ::testing::Test {
  runtime::SimRuntime sim{1};
  FaultyRuntime frt{sim, 2};
  FaultyTransport& net = frt.faulty_transport();
  runtime::NodeId a = 0, b = 0;
  int delivered_to_b = 0;

  void SetUp() override {
    a = net.add_node("a");
    b = net.add_node("b", [this](runtime::NodeId, runtime::MessagePtr) { ++delivered_to_b; });
    net.connect_bidirectional(a, b);  // default latency 1ms
  }

  void run() { frt.advance(runtime::ms(10)); }
};

TEST_F(DecoratorFixture, CleanSendDelivers) {
  EXPECT_TRUE(net.send(a, b, msg()));
  run();
  EXPECT_EQ(delivered_to_b, 1);
}

TEST_F(DecoratorFixture, PartitionDropsAtSendButInFlightArrives) {
  EXPECT_TRUE(net.send(a, b, msg()));  // in flight when the partition opens
  net.partition_node(b, true);
  EXPECT_FALSE(net.send(a, b, msg()));  // dropped at send
  run();
  EXPECT_EQ(delivered_to_b, 1) << "in-flight message must survive a link partition";
  EXPECT_EQ(net.stats().dropped_partition, 1u);

  net.partition_node(b, false);
  EXPECT_TRUE(net.send(a, b, msg()));
  run();
  EXPECT_EQ(delivered_to_b, 2);
}

TEST_F(DecoratorFixture, PartitionPairCutsBothDirections) {
  net.partition_pair(a, b, true);
  EXPECT_FALSE(net.send(a, b, msg()));
  EXPECT_FALSE(net.send(b, a, msg()));
  EXPECT_EQ(net.stats().dropped_partition, 2u);
  net.partition_pair(b, a, false);  // order-insensitive (normalized pair)
  EXPECT_TRUE(net.send(a, b, msg()));
  run();
  EXPECT_EQ(delivered_to_b, 1);
}

TEST_F(DecoratorFixture, CrashDropsInFlightDeliveries) {
  EXPECT_TRUE(net.send(a, b, msg()));  // in flight when the node crashes
  net.set_crashed(b, true);
  run();
  EXPECT_EQ(delivered_to_b, 0) << "a crashed node must not receive in-flight messages";
  EXPECT_EQ(net.stats().dropped_crash_delivery, 1u);

  EXPECT_FALSE(net.send(a, b, msg()));  // unreachable while down
  EXPECT_EQ(net.stats().dropped_crash_send, 1u);

  net.set_crashed(b, false);  // restart: reachable again
  EXPECT_TRUE(net.send(a, b, msg()));
  run();
  EXPECT_EQ(delivered_to_b, 1);
}

TEST_F(DecoratorFixture, ExtraLossAndDuplicationWindows) {
  net.set_extra_loss(1.0);
  EXPECT_FALSE(net.send(a, b, msg()));
  run();
  EXPECT_EQ(delivered_to_b, 0);
  EXPECT_EQ(net.stats().dropped_loss, 1u);

  net.set_extra_loss(0.0);
  net.set_extra_duplication(1.0);
  EXPECT_TRUE(net.send(a, b, msg()));
  run();
  EXPECT_EQ(delivered_to_b, 2) << "p=1 duplication must deliver a trailing copy";
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST_F(DecoratorFixture, DecoratorTraceRecordsWhatTheProtocolObserved) {
  net.set_tracing(true);
  EXPECT_TRUE(net.send(a, b, msg()));
  net.set_crashed(b, true);
  run();
  net.set_crashed(b, false);
  EXPECT_TRUE(net.send(a, b, msg()));
  run();
  ASSERT_EQ(net.trace().size(), 2u);
  EXPECT_FALSE(net.trace()[0].delivered);  // died at the crashed doorstep
  EXPECT_TRUE(net.trace()[1].delivered);
  net.clear_trace();
  EXPECT_TRUE(net.trace().empty());
}

TEST_F(DecoratorFixture, TimerSkewScalesScheduledDelays) {
  int fired = 0;
  frt.faulty_clock().set_skew(2.0);
  frt.clock().schedule_after(runtime::ms(10), [&fired] { ++fired; });
  frt.faulty_clock().set_skew(1.0);
  frt.advance(runtime::ms(15));
  EXPECT_EQ(fired, 0) << "a 10ms delay under 2x skew must not fire at 15ms";
  frt.advance(runtime::ms(10));
  EXPECT_EQ(fired, 1);

  // The campaign's own bookkeeping goes through the unskewed inner clock.
  int inner_fired = 0;
  frt.faulty_clock().set_skew(4.0);
  frt.faulty_clock().inner().schedule_after(runtime::ms(10), [&inner_fired] { ++inner_fired; });
  frt.advance(runtime::ms(12));
  EXPECT_EQ(inner_fired, 1) << "plan window edges must never be skewed";
}

}  // namespace
}  // namespace sa::inject
