// Multi-process supervisor: child lifecycle primitives (spawn / reap /
// kill -9 / terminate) and the distributed §4.4 recovery paths driven
// through real OS processes:
//
//   * a network partition opened while agents sit in the blocked window must
//     end in a legal §4.4 outcome (ride-out via retries, or rollback to the
//     source) with every agent back in Running;
//   * kill -9 of an agent mid-adaptation followed by re-exec must recover
//     from the on-disk journal (recoveries >= 1) and still terminate legally;
//   * children are reaped exactly once (no zombies), nonzero exits and
//     terminating signals are propagated, wait_exit times out cleanly.
#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/supervisor.hpp"
#include "inject/fault_plan.hpp"

namespace sa::core {
namespace {

// Paper §5 configurations: source {D4, D1, E1} = 0b0100101, target
// {D5, D3, E2} = 0b1010010 (MSB = highest ComponentId).
constexpr std::uint64_t kSourceBits = 0b0100101;
constexpr std::uint64_t kTargetBits = 0b1010010;

const std::vector<std::string> kLegalOutcomes = {
    "success", "no-path-found", "rolled-back-to-source", "user-intervention-required",
    "stalled-after-resume"};

bool legal_outcome(const std::string& outcome) {
  return std::find(kLegalOutcomes.begin(), kLegalOutcomes.end(), outcome) !=
         kLegalOutcomes.end();
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) out += (out.empty() ? "" : "; ") + p;
  return out;
}

std::string log_path(const char* name) {
  return ::testing::TempDir() + "/" + name + "." + std::to_string(::getpid()) + ".log";
}

// --- child lifecycle primitives ----------------------------------------------

TEST(SupervisorPrimitives, PropagatesNonzeroExitCodes) {
  Supervisor supervisor;
  const pid_t pid = supervisor.spawn("/bin/sh", {"-c", "exit 3"}, "failing-child",
                                     log_path("failing-child"));
  ASSERT_GT(pid, 0);
  const Supervisor::Exit exit = supervisor.wait_exit(pid, runtime::seconds(10));
  ASSERT_EQ(exit.pid, pid) << "wait_exit timed out";
  EXPECT_EQ(exit.name, "failing-child");
  EXPECT_FALSE(exit.signaled);
  EXPECT_EQ(exit.code, 3);
  EXPECT_EQ(supervisor.live_count(), 0u);
  EXPECT_FALSE(supervisor.alive(pid));
}

TEST(SupervisorPrimitives, ExecFailureSurfacesAs127) {
  Supervisor supervisor;
  const pid_t pid = supervisor.spawn("/no/such/binary", {}, "enoent",
                                     log_path("enoent"));
  ASSERT_GT(pid, 0);  // the fork succeeds; the exec inside the child fails
  const Supervisor::Exit exit = supervisor.wait_exit(pid, runtime::seconds(10));
  ASSERT_EQ(exit.pid, pid);
  EXPECT_FALSE(exit.signaled);
  EXPECT_EQ(exit.code, 127);
}

TEST(SupervisorPrimitives, Kill9ReportsTerminatingSignal) {
  Supervisor supervisor;
  const pid_t pid =
      supervisor.spawn("/bin/sh", {"-c", "sleep 30"}, "victim", log_path("victim"));
  ASSERT_GT(pid, 0);
  EXPECT_TRUE(supervisor.alive(pid));
  EXPECT_TRUE(supervisor.kill9(pid));
  const Supervisor::Exit exit = supervisor.wait_exit(pid, runtime::seconds(10));
  ASSERT_EQ(exit.pid, pid);
  EXPECT_TRUE(exit.signaled);
  EXPECT_EQ(exit.code, SIGKILL);
  // Killing an already-reaped pid is a no-op, not a stray signal.
  EXPECT_FALSE(supervisor.kill9(pid));
}

TEST(SupervisorPrimitives, PollExitsReapsEveryChildExactlyOnce) {
  Supervisor supervisor;
  constexpr int kChildren = 5;
  for (int i = 0; i < kChildren; ++i) {
    ASSERT_GT(supervisor.spawn("/bin/sh", {"-c", "exit 0"},
                               "child-" + std::to_string(i), log_path("child")),
              0);
  }
  std::vector<Supervisor::Exit> exits;
  for (int tries = 0; tries < 5000 && exits.size() < kChildren; ++tries) {
    for (Supervisor::Exit& exit : supervisor.poll_exits()) exits.push_back(exit);
  }
  ASSERT_EQ(exits.size(), static_cast<std::size_t>(kChildren));
  EXPECT_EQ(supervisor.live_count(), 0u);  // no zombies left behind
  EXPECT_TRUE(supervisor.poll_exits().empty());
}

TEST(SupervisorPrimitives, WaitExitTimesOutOnLivingChild) {
  Supervisor supervisor;
  const pid_t pid =
      supervisor.spawn("/bin/sh", {"-c", "sleep 30"}, "lingerer", log_path("lingerer"));
  ASSERT_GT(pid, 0);
  const Supervisor::Exit exit = supervisor.wait_exit(pid, runtime::ms(50));
  EXPECT_EQ(exit.pid, -1);  // timeout sentinel; child untouched
  EXPECT_TRUE(supervisor.alive(pid));

  const std::vector<Supervisor::Exit> exits = supervisor.terminate_all(runtime::seconds(5));
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(exits[0].pid, pid);
  EXPECT_TRUE(exits[0].signaled);  // sleep dies to SIGTERM (or SIGKILL fallback)
  EXPECT_EQ(supervisor.live_count(), 0u);
}

// --- distributed §4.4 recovery ----------------------------------------------

DistributedOptions base_options(std::uint64_t seed) {
  DistributedOptions options;
  options.seed = seed;
  options.sa_node = SA_NODE_PATH;
  options.max_wait = runtime::seconds(30);
  return options;
}

TEST(SupervisorDistributed, PartitionDuringBlockedWindowEndsLegally) {
  // Cut the handheld agent (process 1 -> node 2) off the network across the
  // window where the paper scenario has it blocked mid-step. The manager must
  // either ride it out on retries or roll back per §4.4 — never wedge, never
  // rest outside the legal outcome set.
  inject::FaultPlan plan;
  inject::FaultEvent cut;
  cut.kind = inject::FaultKind::PartitionNode;
  cut.start = runtime::ms(20);
  cut.end = runtime::ms(250);
  cut.process = 1;
  plan.events.push_back(cut);

  DistributedOptions options = base_options(11);
  options.plan_json = inject::to_json(plan);
  const DistributedReport report = run_distributed_paper(options);

  ASSERT_TRUE(report.infra_ok) << join(report.infra_errors);
  ASSERT_TRUE(legal_outcome(report.outcome)) << "outcome: " << report.outcome;
  if (report.outcome == "success") {
    EXPECT_EQ(report.final_config_bits, kTargetBits);
  } else if (report.outcome == "rolled-back-to-source" ||
             report.outcome == "no-path-found") {
    EXPECT_EQ(report.final_config_bits, kSourceBits);
  }
  ASSERT_EQ(report.agent_states.size(), 3u);
  if (report.outcome != "stalled-after-resume") {
    for (const auto& [name, state] : report.agent_states) {
      EXPECT_EQ(state, "running") << name;
    }
  }
}

TEST(SupervisorDistributed, Kill9MidAdaptationRecoversFromJournal) {
  // Real crash fault: SIGKILL the handheld agent 30 ms in (mid-step for the
  // paper timings), re-exec it at 600 ms. The respawned process must restore
  // its journal (§4.4 crash recovery), rejoin, and the run must terminate in
  // a legal outcome with the recovery visible in its state file.
  DistributedOptions options = base_options(42);
  options.crashes.push_back({runtime::ms(30), runtime::ms(600), "handheld-agent"});
  const DistributedReport report = run_distributed_paper(options);

  ASSERT_TRUE(report.infra_ok) << join(report.infra_errors);
  EXPECT_EQ(report.kills, 1u);
  EXPECT_EQ(report.respawns, 1u);
  ASSERT_TRUE(legal_outcome(report.outcome)) << "outcome: " << report.outcome;
  const auto recoveries = report.agent_recoveries.find("handheld-agent");
  ASSERT_NE(recoveries, report.agent_recoveries.end());
  EXPECT_GE(recoveries->second, 1u);
  if (report.outcome == "success") {
    EXPECT_EQ(report.final_config_bits, kTargetBits);
    for (const auto& [name, state] : report.agent_states) {
      EXPECT_EQ(state, "running") << name;
    }
  }
}

}  // namespace
}  // namespace sa::core
