#include <gtest/gtest.h>

#include <map>

#include "core/composite.hpp"
#include "core/paper_scenario.hpp"
#include "proto/conformance.hpp"
#include "sim/network.hpp"

namespace sa::core {
namespace {

struct StubProcess : proto::AdaptableProcess {
  int applies = 0;
  bool fail_to_quiesce = false;
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override {
    if (!fail_to_quiesce) reached();
  }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override {
    ++applies;
    return true;
  }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

/// k independent clusters: components X<i>/Y<i> on process i, one(X,Y)
/// invariant, a swap action per cluster.
struct ClusterFixture {
  CompositeAdaptationSystem system;
  std::map<config::ProcessId, std::unique_ptr<StubProcess>> processes;
  std::size_t clusters;

  explicit ClusterFixture(std::size_t k, CompositeConfig config = {})
      : system(config), clusters(k) {
    for (std::size_t c = 0; c < k; ++c) {
      const std::string s = std::to_string(c);
      system.registry().add("X" + s, static_cast<config::ProcessId>(c));
      system.registry().add("Y" + s, static_cast<config::ProcessId>(c));
    }
    for (std::size_t c = 0; c < k; ++c) {
      const std::string s = std::to_string(c);
      system.add_invariant("one" + s, "one(X" + s + ", Y" + s + ")");
      system.add_action("swap" + s, {"X" + s}, {"Y" + s}, 10);
      system.add_action("back" + s, {"Y" + s}, {"X" + s}, 10);
    }
    for (std::size_t c = 0; c < k; ++c) {
      auto process = std::make_unique<StubProcess>();
      system.attach_process(static_cast<config::ProcessId>(c), *process, 0);
      processes.emplace(static_cast<config::ProcessId>(c), std::move(process));
    }
    system.finalize();
  }

  config::Configuration all_x() const {
    config::Configuration config;
    for (std::size_t c = 0; c < clusters; ++c) {
      config = config.with(static_cast<config::ComponentId>(2 * c));
    }
    return config;
  }
  config::Configuration all_y() const {
    config::Configuration config;
    for (std::size_t c = 0; c < clusters; ++c) {
      config = config.with(static_cast<config::ComponentId>(2 * c + 1));
    }
    return config;
  }
};

TEST(Composite, ShardsByCollaborativeSet) {
  ClusterFixture fixture(4);
  EXPECT_EQ(fixture.system.shard_count(), 4U);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(fixture.system.shard_members(shard).size(), 2U);
    // Each shard plans over a 2-component sub-scenario: 2 safe configs.
    EXPECT_EQ(fixture.system.shard_manager(shard).safe_configurations().size(), 2U);
  }
}

TEST(Composite, AdaptsAllClustersConcurrently) {
  ClusterFixture fixture(4);
  fixture.system.set_current_configuration(fixture.all_x());
  const auto result = fixture.system.adapt_and_wait(fixture.all_y());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.shard_results.size(), 4U);
  EXPECT_EQ(result.final_config, fixture.all_y());
  EXPECT_EQ(fixture.system.current_configuration(), fixture.all_y());
  for (auto& [process, stub] : fixture.processes) EXPECT_EQ(stub->applies, 1);

  // Concurrency: four disjoint single-step adaptations take barely longer
  // than one (they overlap on the virtual timeline), far less than 4x.
  ClusterFixture solo(1);
  solo.system.set_current_configuration(solo.all_x());
  const auto single = solo.system.adapt_and_wait(solo.all_y());
  const sim::Time composite_duration = result.finished - result.started;
  const sim::Time single_duration = single.finished - single.started;
  EXPECT_LT(composite_duration, 2 * single_duration)
      << "composite " << composite_duration << "us vs single " << single_duration << "us";
}

TEST(Composite, SubsetRequestTouchesOnlyInvolvedShards) {
  ClusterFixture fixture(3);
  fixture.system.set_current_configuration(fixture.all_x());
  // Flip only cluster 1.
  auto target = fixture.all_x()
                    .without(2)  // X1
                    .with(3);    // Y1
  const auto result = fixture.system.adapt_and_wait(target);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.shard_results.size(), 1U);  // only one shard worked
  EXPECT_EQ(fixture.processes.at(1)->applies, 1);
  EXPECT_EQ(fixture.processes.at(0)->applies, 0);
  EXPECT_EQ(fixture.processes.at(2)->applies, 0);
  EXPECT_EQ(fixture.system.current_configuration(), target);
}

TEST(Composite, NoOpRequestSucceedsImmediately) {
  ClusterFixture fixture(2);
  fixture.system.set_current_configuration(fixture.all_x());
  const auto result = fixture.system.adapt_and_wait(fixture.all_x());
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.shard_results.empty());
}

TEST(Composite, PartialFailureIsolatedToItsShard) {
  ClusterFixture fixture(3, [] {
    CompositeConfig config;
    config.manager.reset_timeout = sim::ms(50);
    config.manager.message_retries = 1;
    return config;
  }());
  fixture.processes.at(1)->fail_to_quiesce = true;
  fixture.system.set_current_configuration(fixture.all_x());
  const auto result = fixture.system.adapt_and_wait(fixture.all_y());

  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.shard_results.size(), 3U);
  int successes = 0;
  for (const auto& shard_result : result.shard_results) {
    successes += shard_result.outcome == proto::AdaptationOutcome::Success;
  }
  EXPECT_EQ(successes, 2);  // the two healthy clusters adapted
  // The stitched configuration is safe in every shard.
  const auto final_config = fixture.system.current_configuration();
  EXPECT_TRUE(final_config.contains(1));   // Y0 swapped
  EXPECT_TRUE(final_config.contains(2));   // X1 still in place
  EXPECT_TRUE(final_config.contains(5));   // Y2 swapped
}

TEST(Composite, SharedProcessForcesSerialLane) {
  // Two clusters whose components live on the SAME process: they must share a
  // lane, serializing their adaptations — and both still succeed.
  CompositeAdaptationSystem system;
  system.registry().add("X0", 0);
  system.registry().add("Y0", 0);
  system.registry().add("X1", 0);  // same process as cluster 0
  system.registry().add("Y1", 0);
  system.add_invariant("one0", "one(X0, Y0)");
  system.add_invariant("one1", "one(X1, Y1)");
  system.add_action("swap0", {"X0"}, {"Y0"}, 10);
  system.add_action("swap1", {"X1"}, {"Y1"}, 10);
  StubProcess process;
  system.attach_process(0, process, 0);
  system.finalize();
  EXPECT_EQ(system.shard_count(), 2U);

  const auto source = config::Configuration::of(system.registry(), {"X0", "X1"});
  const auto target = config::Configuration::of(system.registry(), {"Y0", "Y1"});
  system.set_current_configuration(source);
  const auto result = system.adapt_and_wait(target);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.final_config, target);
  EXPECT_EQ(process.applies, 2);
}

TEST(Composite, PaperScenarioCollapsesToOneShard) {
  // The case study's invariants connect everything: sharding must be a no-op
  // and produce the same MAP behaviour as the plain system.
  CompositeAdaptationSystem system;
  register_paper_components(system.registry());
  system.add_invariant("resource constraint", "one(D1, D2, D3)");
  system.add_invariant("security constraint", "one(E1, E2)");
  system.add_invariant("E1 dependency", "E1 -> (D1 | D2) & D4");
  system.add_invariant("E2 dependency", "E2 -> (D3 | D2) & D5");
  system.add_action("A1", {"E1"}, {"E2"}, 10);
  system.add_action("A2", {"D1"}, {"D2"}, 10);
  system.add_action("A4", {"D2"}, {"D3"}, 10);
  system.add_action("A16", {"D4"}, {}, 10);
  system.add_action("A17", {}, {"D5"}, 10);
  StubProcess server, handheld, laptop;
  system.attach_process(kServerProcess, server, 0);
  system.attach_process(kHandheldProcess, handheld, 1);
  system.attach_process(kLaptopProcess, laptop, 1);
  system.finalize();
  EXPECT_EQ(system.shard_count(), 1U);

  system.set_current_configuration(paper_source(system.registry()));
  const auto result = system.adapt_and_wait(paper_target(system.registry()));
  EXPECT_TRUE(result.success);
  ASSERT_EQ(result.shard_results.size(), 1U);
  EXPECT_EQ(result.shard_results[0].steps_committed, 5U);
  EXPECT_EQ(result.final_config, paper_target(system.registry()));
}

TEST(Composite, LifecycleGuards) {
  CompositeAdaptationSystem system;
  system.registry().add("A", 0);
  system.registry().add("B", 0);
  system.add_invariant("one", "one(A, B)");
  system.add_action("swap", {"A"}, {"B"}, 10);
  StubProcess process;
  system.attach_process(0, process, 0);
  EXPECT_THROW(system.set_current_configuration({}), std::logic_error);
  system.finalize();
  EXPECT_THROW(system.finalize(), std::logic_error);
  EXPECT_THROW(system.add_invariant("late", "A"), std::logic_error);
  EXPECT_THROW(system.add_action("late", {"A"}, {}, 1), std::logic_error);
  EXPECT_THROW(system.attach_process(1, process, 0), std::logic_error);

  const auto a = config::Configuration::of(system.registry(), {"A"});
  const auto b = config::Configuration::of(system.registry(), {"B"});
  system.set_current_configuration(a);
  system.request_adaptation(b, nullptr);  // in flight (needs protocol rounds)
  EXPECT_THROW(system.request_adaptation(b, nullptr), std::logic_error);
  system.simulator().run(100'000);
  EXPECT_EQ(system.current_configuration(), b);
}

TEST(Composite, ZeroSetsFinalizesAndCompletesRequests) {
  // No components at all: the tree degenerates to a lone root over zero
  // lanes, and a request completes through an empty epoch.
  CompositeAdaptationSystem system;
  system.finalize();
  EXPECT_EQ(system.shard_count(), 0U);
  EXPECT_EQ(system.lane_count(), 0U);
  EXPECT_EQ(system.coordinator_count(), 1U);
  EXPECT_EQ(system.tree_depth(), 1U);
  system.set_current_configuration({});
  const auto result = system.adapt_and_wait({});
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.shard_results.empty());
  EXPECT_EQ(result.orphaned, 0U);
}

TEST(Composite, SingleSetCollapsesToLoneRootCoordinator) {
  // One collaborative set: no interior levels, no coordinator links — the
  // root IS the leaf and drives the single lane directly.
  ClusterFixture fixture(1);
  EXPECT_EQ(fixture.system.coordinator_count(), 1U);
  EXPECT_EQ(fixture.system.tree_depth(), 1U);
  EXPECT_TRUE(fixture.system.coordinator_links().empty());
  EXPECT_EQ(&fixture.system.root_coordinator(), &fixture.system.coordinator(0));
  fixture.system.set_current_configuration(fixture.all_x());
  const auto result = fixture.system.adapt_and_wait(fixture.all_y());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.epoch, 1U);
}

TEST(Composite, TopologyShapesTheCoordinatorTree) {
  CompositeConfig config;
  config.topology.lanes_per_leaf = 1;  // one leaf per lane
  config.topology.fanout = 2;
  ClusterFixture fixture(4, config);
  // 4 lanes -> 4 leaves -> 2 interior -> 1 root.
  EXPECT_EQ(fixture.system.coordinator_count(), 7U);
  EXPECT_EQ(fixture.system.tree_depth(), 3U);
  EXPECT_EQ(fixture.system.coordinator_links().size(), 6U);
  fixture.system.set_current_configuration(fixture.all_x());
  const auto result = fixture.system.adapt_and_wait(fixture.all_y());
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.shard_results.size(), 4U);
  EXPECT_EQ(fixture.system.current_configuration(), fixture.all_y());
}

TEST(Composite, SameSeedRunsAreBitIdentical) {
  // Lane serialization and epoch batching are deterministic: two systems
  // built identically over the same seed produce the same timeline, epoch,
  // and per-shard outcomes.
  const auto run = [] {
    CompositeConfig config;
    config.seed = 7;
    config.topology.lanes_per_leaf = 2;
    config.topology.fanout = 2;
    ClusterFixture fixture(6, config);
    fixture.system.set_current_configuration(fixture.all_x());
    return fixture.system.adapt_and_wait(fixture.all_y());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.started, b.started);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.final_config, b.final_config);
  ASSERT_EQ(a.shard_results.size(), b.shard_results.size());
  for (std::size_t i = 0; i < a.shard_results.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].shard, b.outcomes[i].shard);
    EXPECT_EQ(a.shard_results[i].outcome, b.shard_results[i].outcome);
    EXPECT_EQ(a.shard_results[i].started, b.shard_results[i].started);
    EXPECT_EQ(a.shard_results[i].finished, b.shard_results[i].finished);
  }
}

TEST(Composite, TreeTraceConformsOverCoordinatorAndManagerVocabularies) {
  CompositeConfig config;
  config.topology.lanes_per_leaf = 1;
  config.topology.fanout = 2;
  ClusterFixture fixture(4, config);
  fixture.system.network().set_tracing(true);
  fixture.system.set_current_configuration(fixture.all_x());
  const auto result = fixture.system.adapt_and_wait(fixture.all_y());
  EXPECT_TRUE(result.success);
  const proto::ConformanceChecker checker(fixture.system.manager_nodes());
  const auto violations = checker.check(fixture.system.network().trace());
  for (const auto& v : violations) ADD_FAILURE() << v.time << ": " << v.description;
}

TEST(Composite, OutOfEpochCommitIsCaughtByTheConformanceGate) {
  // The seeded coordinator bug: from the second epoch on the root announces a
  // stale epoch number. Children absorb the "duplicate", their shards orphan
  // at the commit timeout, and the delivered trace shows one epoch committed
  // twice with different targets — which the checker must flag.
  CompositeConfig config;
  config.topology.lanes_per_leaf = 1;
  config.topology.fanout = 2;
  config.topology.commit_timeout = sim::ms(100);  // keep the orphan path quick
  ClusterFixture fixture(2, config);
  fixture.system.network().set_tracing(true);
  fixture.system.root_coordinator().inject_fault(proto::CoordinatorFault::CommitOutOfEpoch);
  fixture.system.set_current_configuration(fixture.all_x());

  const auto first = fixture.system.adapt_and_wait(fixture.all_y());
  EXPECT_TRUE(first.success);  // epoch 1 is announced honestly
  const auto second = fixture.system.adapt_and_wait(fixture.all_x());
  EXPECT_FALSE(second.success);  // children dedup the stale commit
  EXPECT_EQ(second.orphaned, second.outcomes.size());

  const proto::ConformanceChecker checker(fixture.system.manager_nodes());
  const auto violations = checker.check(fixture.system.network().trace());
  ASSERT_FALSE(violations.empty()) << "seeded out-of-epoch commit was not caught";
  bool flagged = false;
  for (const auto& violation : violations) {
    flagged = flagged ||
              violation.description.find("out-of-epoch commit") != std::string::npos;
  }
  EXPECT_TRUE(flagged) << "violations did not name the out-of-epoch commit";
}

}  // namespace
}  // namespace sa::core
