// Bounded interleaving explorer (src/check): clean scenarios stay clean under
// exhaustive / bounded / randomized search, deliberately broken cores are
// caught, and every counterexample replays deterministically.
#include <gtest/gtest.h>

#include <string>

#include "check/explorer.hpp"
#include "check/model.hpp"
#include "check/scenario.hpp"

namespace sa::check {
namespace {

void expect_clean(const ExploreResult& result) {
  if (result.counterexample) {
    for (const std::string& v : result.counterexample->violations) {
      ADD_FAILURE() << "unexpected violation: " << v;
    }
  }
}

TEST(Explorer, TinyScenarioExhaustiveDfsIsClean) {
  const Scenario scenario = make_tiny_scenario();
  ExploreOptions options;
  options.max_depth = 300;
  options.max_states = 2'000'000;
  const ExploreResult result = explore_dfs(scenario, options);
  expect_clean(result);
  // Every schedule fits the budgets, so this is a proof over the whole
  // space: delivery orders and timer races, including the full §4.4 chain.
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.stats.runs_completed, 0U);
  EXPECT_EQ(result.stats.depth_capped, 0U);
  EXPECT_TRUE(result.stats.outcomes.count("success"));
  EXPECT_TRUE(result.stats.outcomes.count("rolled-back-to-source"));
  EXPECT_TRUE(result.stats.outcomes.count("user-intervention-required"));
}

TEST(Explorer, TinyScenarioWithMessageDropIsClean) {
  const Scenario scenario = make_tiny_scenario();
  ExploreOptions options;
  options.max_depth = 300;
  options.max_states = 150'000;
  options.drop_budget = 1;
  expect_clean(explore_dfs(scenario, options));
}

TEST(Explorer, PairScenarioBoundedDfsIsClean) {
  const Scenario scenario = make_pair_scenario();
  ExploreOptions options;
  options.max_depth = 24;
  options.max_states = 300'000;
  const ExploreResult result = explore_dfs(scenario, options);
  expect_clean(result);
  EXPECT_GT(result.stats.states_explored, 0U);
}

TEST(Explorer, PairScenarioWithReorderingIsClean) {
  const Scenario scenario = make_pair_scenario();
  ExploreOptions options;
  options.max_depth = 20;
  options.max_states = 200'000;
  options.reorder = true;
  options.dup_budget = 1;
  expect_clean(explore_dfs(scenario, options));
}

TEST(Explorer, RandomWalksOnAllScenariosAreClean) {
  ExploreOptions options;
  options.drop_budget = 2;
  options.dup_budget = 2;
  for (const char* name : {"tiny", "pair", "paper"}) {
    const Scenario scenario = make_scenario(name);
    const ExploreResult result = explore_random(scenario, options, /*seed=*/17, /*runs=*/300);
    expect_clean(result);
    EXPECT_EQ(result.stats.runs_completed, 300U) << name;
  }
}

TEST(Explorer, FailingAgentDrivesFailureChainCleanly) {
  const Scenario scenario = make_tiny_scenario();
  ExploreOptions options;
  options.max_depth = 300;
  options.max_states = 500'000;
  options.fail_to_reset = {0};
  const ExploreResult result = explore_dfs(scenario, options);
  expect_clean(result);
  // The agent never quiesces, so no run can succeed — every leaf must still
  // end in a legal failure outcome.
  EXPECT_GT(result.stats.runs_completed, 0U);
  EXPECT_EQ(result.stats.outcomes.count("success"), 0U);
}

TEST(Explorer, SimPolicyDrainsToSuccess) {
  const Scenario scenario = make_tiny_scenario();
  Model model = make_model(scenario, ExploreOptions{});
  int guard = 0;
  while (const auto choice = model.sim_choice()) {
    ASSERT_TRUE(model.apply(*choice));
    ASSERT_LT(++guard, 10'000);
  }
  model.finalize();
  EXPECT_TRUE(model.violations().empty());
  ASSERT_TRUE(model.outcome().has_value());
  EXPECT_EQ(model.outcome()->outcome, proto::AdaptationOutcome::Success);
}

// --- mutation checks: a broken manager core must be caught -------------------

TEST(Explorer, ResumeBeforeLastAdaptDoneIsCaughtAndReplays) {
  const Scenario scenario = make_pair_scenario();
  ExploreOptions options;
  options.max_depth = 40;
  options.fault = proto::ManagerFault::ResumeBeforeLastAdaptDone;
  const ExploreResult result = explore_dfs(scenario, options);
  ASSERT_TRUE(result.counterexample.has_value());
  ASSERT_FALSE(result.counterexample->violations.empty());
  EXPECT_NE(result.counterexample->violations.front().find("§4.3"), std::string::npos);

  const ReplayResult replayed = replay(scenario, options, result.counterexample->schedule);
  EXPECT_TRUE(replayed.schedule_valid);
  ASSERT_EQ(replayed.violations.size(), result.counterexample->violations.size());
  for (std::size_t i = 0; i < replayed.violations.size(); ++i) {
    EXPECT_EQ(replayed.violations[i].description, result.counterexample->violations[i]);
  }
}

TEST(Explorer, RollbackAfterResumeIsCaughtAndReplays) {
  Scenario scenario = make_tiny_scenario();
  // One retransmission round per phase: a single dropped resume done already
  // exhausts the resume phase, which is where the mutated core misbehaves.
  scenario.manager_config.message_retries = 0;
  scenario.manager_config.run_to_completion_retries = 0;
  ExploreOptions options;
  options.max_depth = 60;
  options.max_states = 500'000;
  options.drop_budget = 1;
  options.fault = proto::ManagerFault::RollbackAfterResume;
  const ExploreResult result = explore_dfs(scenario, options);
  ASSERT_TRUE(result.counterexample.has_value());
  ASSERT_FALSE(result.counterexample->violations.empty());
  EXPECT_NE(result.counterexample->violations.front().find("§4.4"), std::string::npos);

  const ReplayResult replayed = replay(scenario, options, result.counterexample->schedule);
  EXPECT_TRUE(replayed.schedule_valid);
  ASSERT_FALSE(replayed.violations.empty());
  EXPECT_EQ(replayed.violations.front().description, result.counterexample->violations.front());
}

TEST(Explorer, CounterexampleJsonRoundTrips) {
  const Scenario scenario = make_pair_scenario();
  ExploreOptions options;
  options.max_depth = 40;
  options.fault = proto::ManagerFault::ResumeBeforeLastAdaptDone;
  const ExploreResult result = explore_dfs(scenario, options);
  ASSERT_TRUE(result.counterexample.has_value());

  ScheduleFile file;
  file.scenario = scenario.name;
  file.options = options;
  file.schedule = result.counterexample->schedule;
  file.violations = result.counterexample->violations;

  const ScheduleFile parsed = schedule_from_json(to_json(file));
  EXPECT_EQ(parsed.scenario, file.scenario);
  EXPECT_EQ(parsed.options.max_depth, options.max_depth);
  EXPECT_EQ(parsed.options.drop_budget, options.drop_budget);
  EXPECT_EQ(parsed.options.fault, options.fault);
  ASSERT_EQ(parsed.schedule.size(), file.schedule.size());
  EXPECT_EQ(parsed.schedule, file.schedule);
  EXPECT_EQ(parsed.violations, file.violations);

  // The parsed file is self-contained: replaying it reproduces the violation.
  const Scenario fresh = make_scenario(parsed.scenario);
  const ReplayResult replayed = replay(fresh, parsed.options, parsed.schedule);
  EXPECT_TRUE(replayed.schedule_valid);
  ASSERT_FALSE(replayed.violations.empty());
  EXPECT_EQ(replayed.violations.front().description, file.violations.front());
}

}  // namespace
}  // namespace sa::check
