#include <gtest/gtest.h>

#include "components/filter.hpp"
#include "components/filter_chain.hpp"
#include "components/packet.hpp"
#include "sim/simulator.hpp"

namespace sa::components {
namespace {

Packet make_packet(std::uint64_t seq = 0) {
  return Packet::make(1, seq, Payload{1, 2, 3, 4, 5});
}

// --- Packet ------------------------------------------------------------------

TEST(Packet, ChecksumStampedAtCreation) {
  const Packet packet = make_packet();
  EXPECT_EQ(packet.plaintext_checksum, payload_checksum(packet.payload));
  EXPECT_TRUE(packet.intact());
}

TEST(Packet, TamperedPayloadDetected) {
  Packet packet = make_packet();
  packet.payload[0] ^= 0xFF;
  EXPECT_FALSE(packet.intact());
}

TEST(Packet, ResidualEncodingNotIntact) {
  Packet packet = make_packet();
  packet.encoding_stack.push_back("des64");
  EXPECT_FALSE(packet.intact());
}

TEST(Packet, ChecksumDiffersForDifferentPayloads) {
  EXPECT_NE(payload_checksum({1, 2, 3}), payload_checksum({1, 2, 4}));
  EXPECT_NE(payload_checksum({}), payload_checksum({0}));
}

// Known FNV-1a 64-bit digests: pins the word-batched implementation to the
// byte-wise definition (old and new code must agree on every input).
TEST(Packet, ChecksumMatchesKnownFnv1aDigests) {
  EXPECT_EQ(payload_checksum({}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(payload_checksum({'a'}), 0xaf63dc4c8601ec8cULL);
  const std::string foobar = "foobar";
  EXPECT_EQ(payload_checksum(reinterpret_cast<const std::uint8_t*>(foobar.data()),
                             foobar.size()),
            0x85944171f73967e8ULL);
  // Inputs longer than one 8-byte word exercise the batched loop + tail.
  Payload sixteen(16);
  for (std::size_t i = 0; i < sixteen.size(); ++i) sixteen[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(payload_checksum(sixteen), 0x7c84dc9477851775ULL);
  const std::string hello = "hello, world!";  // 13 bytes: one word + 5-byte tail
  EXPECT_EQ(payload_checksum(reinterpret_cast<const std::uint8_t*>(hello.data()),
                             hello.size()),
            0xe60e63e648826894ULL);
}

// The word loop must agree with the byte-wise definition at every length
// around the 8-byte boundaries (off-by-one in the tail would corrupt every
// checksum comparison in the system).
TEST(Packet, ChecksumWordBatchingAgreesWithByteLoopAtAllLengths) {
  Payload data(67);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  for (std::size_t len = 0; len <= data.size(); ++len) {
    std::uint64_t expected = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
      expected = (expected ^ data[i]) * 0x100000001b3ULL;
    }
    EXPECT_EQ(payload_checksum(data.data(), len), expected) << "length " << len;
  }
}

// --- simple filters -----------------------------------------------------------

TEST(Filters, PassThroughCountsProcessed) {
  PassThroughFilter filter("p");
  const auto out = filter.process(make_packet());
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->intact());
  EXPECT_EQ(filter.stats().processed, 1U);
}

TEST(Filters, TagUntagRoundTrip) {
  TagFilter tag("t", "fec");
  UntagFilter untag("u", "fec");
  auto tagged = tag.process(make_packet());
  ASSERT_TRUE(tagged.has_value());
  EXPECT_EQ(tagged->encoding_stack, (std::vector<std::string>{"fec"}));
  auto untagged = untag.process(std::move(*tagged));
  ASSERT_TRUE(untagged.has_value());
  EXPECT_TRUE(untagged->intact());
  EXPECT_EQ(untag.stats().processed, 1U);
  EXPECT_EQ(untag.stats().bypassed, 0U);
}

TEST(Filters, UntagBypassesWrongTag) {
  UntagFilter untag("u", "fec");
  Packet packet = make_packet();
  packet.encoding_stack.push_back("other");
  const auto out = untag.process(packet);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->encoding_stack, (std::vector<std::string>{"other"}));
  EXPECT_EQ(untag.stats().bypassed, 1U);
}

TEST(Filters, RefractExposesStats) {
  PassThroughFilter filter("p", sim::us(33));
  filter.process(make_packet());
  const auto snapshot = filter.refract();
  EXPECT_EQ(snapshot.at("name"), "p");
  EXPECT_EQ(snapshot.at("processed"), "1");
  EXPECT_EQ(snapshot.at("processing_time_us"), "33");
}

// --- FilterChain ------------------------------------------------------------------

struct ChainFixture : ::testing::Test {
  sim::Simulator sim;
  FilterChain chain{sim, "chain", sim::us(20)};
  std::vector<Packet> delivered;

  void SetUp() override {
    chain.set_output([this](Packet packet) { delivered.push_back(std::move(packet)); });
  }
};

TEST_F(ChainFixture, EmptyChainForwardsAfterOverhead) {
  chain.submit(make_packet());
  sim.run();
  ASSERT_EQ(delivered.size(), 1U);
  EXPECT_EQ(sim.now(), sim::us(20));
  EXPECT_TRUE(delivered[0].intact());
}

TEST_F(ChainFixture, FiltersAppliedInOrder) {
  chain.append_filter(std::make_shared<TagFilter>("t1", "a"));
  chain.append_filter(std::make_shared<TagFilter>("t2", "b"));
  chain.submit(make_packet());
  sim.run();
  ASSERT_EQ(delivered.size(), 1U);
  EXPECT_EQ(delivered[0].encoding_stack, (std::vector<std::string>{"a", "b"}));
}

TEST_F(ChainFixture, ProcessingTimeAccumulates) {
  chain.append_filter(std::make_shared<PassThroughFilter>("f1", sim::us(100)));
  chain.append_filter(std::make_shared<PassThroughFilter>("f2", sim::us(50)));
  chain.submit(make_packet());
  sim.run();
  EXPECT_EQ(sim.now(), sim::us(170));  // 20 overhead + 100 + 50
}

TEST_F(ChainFixture, PacketsSerializeThroughChain) {
  chain.submit(make_packet(0));
  chain.submit(make_packet(1));
  chain.submit(make_packet(2));
  sim.run();
  ASSERT_EQ(delivered.size(), 3U);
  EXPECT_EQ(sim.now(), sim::us(60));  // 3 x 20us, one at a time
  EXPECT_EQ(delivered[2].sequence, 2U);
  EXPECT_EQ(chain.stats().submitted, 3U);
  EXPECT_EQ(chain.stats().delivered, 3U);
}

TEST_F(ChainFixture, InsertRemoveReplace) {
  chain.append_filter(std::make_shared<PassThroughFilter>("a"));
  chain.append_filter(std::make_shared<PassThroughFilter>("c"));
  chain.insert_filter(1, std::make_shared<PassThroughFilter>("b"));
  EXPECT_EQ(chain.filter_names(), (std::vector<std::string>{"a", "b", "c"}));

  const FilterPtr removed = chain.remove_filter("b");
  ASSERT_TRUE(removed);
  EXPECT_EQ(removed->name(), "b");
  EXPECT_EQ(chain.filter_names(), (std::vector<std::string>{"a", "c"}));
  EXPECT_FALSE(chain.remove_filter("zzz"));

  const FilterPtr old = chain.replace_filter("c", std::make_shared<PassThroughFilter>("c2"));
  ASSERT_TRUE(old);
  EXPECT_EQ(old->name(), "c");
  EXPECT_EQ(chain.filter_names(), (std::vector<std::string>{"a", "c2"}));
  EXPECT_FALSE(chain.replace_filter("zzz", std::make_shared<PassThroughFilter>("x")));
}

TEST_F(ChainFixture, RejectsDuplicateAndNullFilters) {
  chain.append_filter(std::make_shared<PassThroughFilter>("a"));
  EXPECT_THROW(chain.append_filter(std::make_shared<PassThroughFilter>("a")),
               std::invalid_argument);
  EXPECT_THROW(chain.append_filter(nullptr), std::invalid_argument);
  EXPECT_THROW(chain.replace_filter("a", nullptr), std::invalid_argument);
}

TEST_F(ChainFixture, QuiescenceImmediateWhenIdle) {
  bool quiescent = false;
  chain.request_quiescence([&] { quiescent = true; });
  EXPECT_TRUE(quiescent);
  EXPECT_TRUE(chain.blocked());
}

TEST_F(ChainFixture, QuiescenceWaitsForInFlightPacket) {
  chain.append_filter(std::make_shared<PassThroughFilter>("slow", sim::ms(10)));
  chain.submit(make_packet());
  sim.run_until(sim::us(1));  // packet now mid-chain

  bool quiescent = false;
  chain.request_quiescence([&] { quiescent = true; });
  EXPECT_FALSE(quiescent);
  EXPECT_FALSE(chain.blocked());

  sim.run();
  EXPECT_TRUE(quiescent);
  EXPECT_TRUE(chain.blocked());
  EXPECT_EQ(delivered.size(), 1U);  // in-flight packet completed, not dropped
}

TEST_F(ChainFixture, PacketModeBlocksWithQueueRemaining) {
  chain.submit(make_packet(0));
  chain.submit(make_packet(1));
  chain.submit(make_packet(2));
  sim.run_until(sim::us(1));
  chain.request_quiescence([] {}, FilterChain::QuiescenceMode::Packet);
  sim.run();
  EXPECT_TRUE(chain.blocked());
  EXPECT_EQ(delivered.size(), 1U);  // only the in-flight packet finished
  EXPECT_EQ(chain.queued(), 2U);
}

TEST_F(ChainFixture, DrainModeEmptiesQueueBeforeBlocking) {
  chain.submit(make_packet(0));
  chain.submit(make_packet(1));
  chain.submit(make_packet(2));
  sim.run_until(sim::us(1));
  bool quiescent = false;
  chain.request_quiescence([&] { quiescent = true; }, FilterChain::QuiescenceMode::Drain);
  sim.run();
  EXPECT_TRUE(quiescent);
  EXPECT_TRUE(chain.blocked());
  EXPECT_EQ(delivered.size(), 3U);
  EXPECT_EQ(chain.queued(), 0U);
}

TEST_F(ChainFixture, BlockedChainQueuesThenResumes) {
  chain.request_quiescence([] {});
  chain.submit(make_packet(0));
  chain.submit(make_packet(1));
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(chain.queued(), 2U);

  chain.resume();
  sim.run();
  EXPECT_EQ(delivered.size(), 2U);
}

TEST_F(ChainFixture, PacketDelayMeasuredAcrossBlocking) {
  chain.set_delay_logging(true);
  chain.request_quiescence([] {});
  chain.submit(make_packet());
  sim.run_until(sim::ms(10));
  chain.resume();
  sim.run();
  ASSERT_EQ(chain.delay_log().size(), 1U);
  EXPECT_EQ(chain.delay_log()[0], sim::ms(10) + sim::us(20));
  EXPECT_EQ(chain.stats().max_delay, sim::ms(10) + sim::us(20));
}

TEST_F(ChainFixture, CancelQuiescenceUnblocksAndDrains) {
  chain.request_quiescence([] {});
  chain.submit(make_packet());
  chain.cancel_quiescence();
  sim.run();
  EXPECT_EQ(delivered.size(), 1U);
  EXPECT_FALSE(chain.blocked());
}

TEST_F(ChainFixture, CancelPendingQuiescenceRequest) {
  chain.append_filter(std::make_shared<PassThroughFilter>("slow", sim::ms(5)));
  chain.submit(make_packet());
  sim.run_until(sim::us(1));
  bool quiescent = false;
  chain.request_quiescence([&] { quiescent = true; });
  chain.cancel_quiescence();
  sim.run();
  EXPECT_FALSE(quiescent);
  EXPECT_FALSE(chain.blocked());
  EXPECT_EQ(delivered.size(), 1U);
}

TEST_F(ChainFixture, DoubleQuiescenceRequestRejected) {
  chain.append_filter(std::make_shared<PassThroughFilter>("slow", sim::ms(5)));
  chain.submit(make_packet());
  sim.run_until(sim::us(1));
  chain.request_quiescence([] {});
  EXPECT_THROW(chain.request_quiescence([] {}), std::logic_error);
}

TEST_F(ChainFixture, DroppingFilterCountsDrops) {
  class DropAll final : public Filter {
   public:
    DropAll() : Filter("drop") {}
    std::optional<Packet> process(Packet) override {
      note_dropped();
      return std::nullopt;
    }
  };
  chain.append_filter(std::make_shared<DropAll>());
  chain.submit(make_packet());
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(chain.stats().dropped_by_filters, 1U);
}

TEST_F(ChainFixture, StructuralChangeWhileBlockedAffectsQueuedPackets) {
  chain.request_quiescence([] {});  // blocks immediately
  chain.submit(make_packet());
  chain.append_filter(std::make_shared<TagFilter>("t", "late"));
  chain.resume();
  sim.run();
  ASSERT_EQ(delivered.size(), 1U);
  // The packet was queued before the filter was inserted but processed after:
  // recomposition while blocked applies to everything still queued.
  EXPECT_EQ(delivered[0].encoding_stack, (std::vector<std::string>{"late"}));
}

TEST_F(ChainFixture, RefractAndTransmute) {
  chain.append_filter(std::make_shared<PassThroughFilter>("a"));
  chain.append_filter(std::make_shared<PassThroughFilter>("b"));
  auto snapshot = chain.refract();
  EXPECT_EQ(snapshot.at("filters"), "a,b");
  EXPECT_EQ(snapshot.at("blocked"), "0");

  EXPECT_TRUE(chain.transmute("remove_filter", "a"));
  EXPECT_FALSE(chain.transmute("remove_filter", "a"));
  EXPECT_TRUE(chain.transmute("blocked", "1"));
  EXPECT_TRUE(chain.blocked());
  EXPECT_TRUE(chain.transmute("blocked", "0"));
  EXPECT_FALSE(chain.blocked());
  EXPECT_FALSE(chain.transmute("nonsense", "x"));
}

}  // namespace
}  // namespace sa::components
