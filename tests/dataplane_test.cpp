// Tests for the zero-copy batched data plane: PacketArena / PacketRef
// semantics, the span-based filter invocation interface (zero-copy bypass,
// FEC multi-output, DES in-arena transforms), FilterChain::process_batch
// equivalence with the per-packet path, and the multi-stream threaded pump
// including its §5.2 per-chain quiescence handshake under load.
#include <gtest/gtest.h>

#include <algorithm>

#include "components/arena.hpp"
#include "components/fec.hpp"
#include "components/filter.hpp"
#include "components/filter_chain.hpp"
#include "components/rle.hpp"
#include "crypto/codec_filters.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "video/pump.hpp"

namespace sa::components {
namespace {

Payload random_payload(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Payload payload(n);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  return payload;
}

// --- TagStack ----------------------------------------------------------------

TEST(TagStack, PushPopAndVectorInterop) {
  TagStack stack;
  EXPECT_TRUE(stack.empty());
  stack.push_back("des64");
  stack.push_back("fec:12");
  EXPECT_EQ(stack.size(), 2U);
  EXPECT_EQ(stack.back(), "fec:12");
  EXPECT_EQ(stack, (std::vector<std::string>{"des64", "fec:12"}));
  EXPECT_EQ(stack.to_vector(), (std::vector<std::string>{"des64", "fec:12"}));
  stack.pop_back();
  EXPECT_EQ(stack, (std::vector<std::string>{"des64"}));
}

TEST(TagStack, OverflowThrowsInsteadOfTruncating) {
  TagStack stack;
  for (std::size_t i = 0; i < TagStack::kMaxTags; ++i) stack.push_back("t");
  EXPECT_THROW(stack.push_back("one-too-many"), std::length_error);
  EXPECT_EQ(stack.size(), TagStack::kMaxTags);  // unchanged by the failed push
  std::string oversized(TagStack::kMaxTagLength + 1, 'x');
  stack.pop_back();
  EXPECT_THROW(stack.push_back(oversized), std::length_error);
  stack.push_back(std::string(TagStack::kMaxTagLength, 'x'));  // max length fits
  EXPECT_EQ(stack.back().size(), TagStack::kMaxTagLength);
}

// --- PacketArena / PacketRef --------------------------------------------------

TEST(Arena, MakeStampsChecksumAndRoundTripsToPacket) {
  PacketArena arena;
  const Payload payload = random_payload(100, 1);
  PacketRef ref = arena.make(7, 42, payload);
  EXPECT_EQ(ref.stream_id(), 7U);
  EXPECT_EQ(ref.sequence(), 42U);
  EXPECT_TRUE(ref.intact());

  const Packet packet = ref.to_packet();
  EXPECT_TRUE(packet.intact());
  EXPECT_EQ(packet.payload, payload);
}

TEST(Arena, ResetRecyclesChunksWithoutReallocating) {
  PacketArena arena(4096);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) arena.make_blank(1, i, 256);
    EXPECT_EQ(arena.live_packets(), 8U);
    arena.reset();
    EXPECT_EQ(arena.live_packets(), 0U);
  }
  // All rounds fit one chunk: exactly one heap chunk allocation ever.
  EXPECT_EQ(arena.stats().chunk_allocs, 1U);
  EXPECT_EQ(arena.stats().resets, 10U);
}

TEST(Arena, OversizedPayloadGetsDedicatedChunk) {
  PacketArena arena(4096);
  PacketRef big = arena.make_blank(1, 0, 1 << 20);
  EXPECT_EQ(big.size(), 1U << 20);
  EXPECT_GE(arena.stats().chunk_allocs, 1U);
}

TEST(Arena, AddressesStableAcrossManyHeaders) {
  PacketArena arena(1024);
  std::vector<PacketRef> refs;
  for (int i = 0; i < 1000; ++i) refs.push_back(arena.make(1, i, random_payload(64, i)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(refs[i].sequence(), static_cast<std::uint64_t>(i));
    EXPECT_TRUE(refs[i].intact());
  }
}

// --- zero-copy span invocation (satellite: move-only bypass) ------------------

TEST(SpanFilters, BypassForwardsSameBufferZeroCopies) {
  PacketArena arena;
  std::vector<PacketRef> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(arena.make_blank(1, i, 64));
  const std::uint64_t copies_before = arena.stats().payload_copies;
  const std::uint8_t* data0 = batch[0].data();

  UntagFilter untag("u", "absent-tag");
  std::vector<PacketRef> out;
  VectorSink sink(arena, out);
  untag.process_span(batch, sink);

  ASSERT_EQ(out.size(), 4U);
  EXPECT_EQ(out[0].data(), data0);  // the SAME buffer — pointer identity
  EXPECT_EQ(out[0].header(), batch[0].header());
  EXPECT_EQ(arena.stats().payload_copies, copies_before);  // zero payload copies
  EXPECT_EQ(untag.stats().bypassed, 4U);
}

TEST(SpanFilters, DefaultProcessAllAdaptorIsMoveOnly) {
  // The legacy bypass path must not copy the payload either: the owning
  // buffer pointer survives the whole process_all round trip.
  PassThroughFilter filter("p");
  Packet packet = Packet::make(1, 0, random_payload(512, 3));
  const std::uint8_t* buffer = packet.payload.data();
  std::vector<Packet> out = filter.process_all(std::move(packet));
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].payload.data(), buffer);  // moved, never copied
}

TEST(SpanFilters, TagFilterMutatesInPlace) {
  PacketArena arena;
  std::vector<PacketRef> batch{arena.make_blank(1, 0, 32)};
  TagFilter tag("t", "x");
  std::vector<PacketRef> out;
  VectorSink sink(arena, out);
  tag.process_span(batch, sink);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].tags(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(out[0].header(), batch[0].header());
}

// --- FEC under the span API (satellite 3) ------------------------------------

TEST(FecSpan, EncoderInterleavesParityAndKeepsOrder) {
  PacketArena arena;
  const std::size_t group = 3;
  XorFecEncoderFilter enc("fec-e", group);

  std::vector<PacketRef> batch;
  for (int i = 0; i < 7; ++i) batch.push_back(arena.make(1, i, random_payload(50, i)));

  std::vector<PacketRef> out;
  VectorSink sink(arena, out);
  enc.process_span(batch, sink);

  // 7 data packets, groups of 3 → parity after inputs 2 and 5: d0 d1 d2 P d3
  // d4 d5 P d6. Order exactly as the per-packet path produces it.
  ASSERT_EQ(out.size(), 9U);
  const std::vector<std::uint64_t> expected_seqs{0, 1, 2, 2, 3, 4, 5, 5, 6};
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].sequence(), expected_seqs[i]) << "position " << i;
  }
  EXPECT_TRUE(out[3].tags().back().starts_with("fec-parity:0:"));
  EXPECT_TRUE(out[7].tags().back().starts_with("fec-parity:1:"));
  EXPECT_TRUE(out[0].tags().back().starts_with("fec:0"));
  EXPECT_TRUE(out[8].tags().back().starts_with("fec:2"));

  // Stats exact: 7 processed (data), nothing bypassed or dropped.
  EXPECT_EQ(enc.stats().processed, 7U);
  EXPECT_EQ(enc.stats().bypassed, 0U);
  EXPECT_EQ(enc.stats().dropped, 0U);
  EXPECT_EQ(enc.parity_emitted(), 2U);
}

TEST(FecSpan, DecoderReconstructsDroppedPacketFromSpan) {
  PacketArena arena;
  const std::size_t group = 4;
  XorFecEncoderFilter enc("fec-e", group);
  XorFecDecoderFilter dec("fec-d");

  std::vector<PacketRef> batch;
  std::vector<Payload> originals;
  for (int i = 0; i < 4; ++i) {
    originals.push_back(random_payload(64, 100 + i));
    batch.push_back(arena.make(1, i, originals.back()));
  }
  std::vector<PacketRef> encoded;
  VectorSink enc_sink(arena, encoded);
  enc.process_span(batch, enc_sink);
  ASSERT_EQ(encoded.size(), 5U);  // 4 data + 1 parity

  // Drop data packet #1 on the "wire".
  std::vector<PacketRef> wire;
  for (PacketRef& ref : encoded) {
    if (!(ref.tags().back().starts_with("fec:") && ref.sequence() == 1)) wire.push_back(ref);
  }
  ASSERT_EQ(wire.size(), 4U);

  std::vector<PacketRef> delivered;
  VectorSink dec_sink(arena, delivered);
  dec.process_span(wire, dec_sink);

  // 3 surviving data packets + the reconstructed one (emitted at the parity
  // position, i.e. last).
  ASSERT_EQ(delivered.size(), 4U);
  EXPECT_EQ(dec.recovered(), 1U);
  std::vector<std::uint64_t> seqs;
  for (const PacketRef& ref : delivered) {
    EXPECT_TRUE(ref.intact());
    seqs.push_back(ref.sequence());
  }
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 2, 3, 1}));
  const PacketRef& rebuilt = delivered.back();
  EXPECT_EQ(rebuilt.payload().size(), originals[1].size());
  EXPECT_TRUE(std::equal(originals[1].begin(), originals[1].end(), rebuilt.data()));

  // Stats exact: decoder processed 3 data + 1 parity; nothing bypassed/dropped.
  EXPECT_EQ(dec.stats().processed, 4U);
  EXPECT_EQ(dec.stats().bypassed, 0U);
  EXPECT_EQ(dec.stats().dropped, 0U);
}

TEST(FecSpan, MatchesPerPacketPathOutputExactly) {
  // The span path and the process_all path must produce identical packet
  // streams for the same inputs.
  const std::size_t group = 3;
  XorFecEncoderFilter span_enc("a", group);
  XorFecEncoderFilter legacy_enc("b", group);

  PacketArena arena;
  std::vector<PacketRef> batch;
  std::vector<Packet> legacy_out;
  for (int i = 0; i < 9; ++i) {
    const Payload payload = random_payload(40, 500 + i);
    batch.push_back(arena.make(3, i, payload));
    for (Packet& p : legacy_enc.process_all(Packet::make(3, i, payload))) {
      legacy_out.push_back(std::move(p));
    }
  }
  std::vector<PacketRef> span_out;
  VectorSink sink(arena, span_out);
  span_enc.process_span(batch, sink);

  ASSERT_EQ(span_out.size(), legacy_out.size());
  for (std::size_t i = 0; i < span_out.size(); ++i) {
    const Packet from_span = span_out[i].to_packet();
    EXPECT_EQ(from_span.sequence, legacy_out[i].sequence) << i;
    EXPECT_EQ(from_span.payload, legacy_out[i].payload) << i;
    EXPECT_EQ(from_span.encoding_stack, legacy_out[i].encoding_stack) << i;
    EXPECT_EQ(from_span.plaintext_checksum, legacy_out[i].plaintext_checksum) << i;
  }
}

TEST(FecSpan, ReconstructionMatchesPerPacketPathUnderLoss) {
  // Same loss pattern through both decoder paths: the reconstructed packet
  // must be byte-identical, and the span path must build it arena-natively
  // (zero payload copies INTO the arena — no owning-Packet + adopt() detour).
  const std::size_t group = 4;
  XorFecEncoderFilter enc("fec-e", group);
  XorFecDecoderFilter span_dec("a");
  XorFecDecoderFilter legacy_dec("b");

  PacketArena arena;
  std::vector<PacketRef> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(arena.make(2, i, random_payload(48, 700 + i)));
  std::vector<PacketRef> encoded;
  VectorSink enc_sink(arena, encoded);
  enc.process_span(batch, enc_sink);
  ASSERT_EQ(encoded.size(), 10U);  // 8 data + 2 parity

  // Drop one data packet per group (seq 2 and seq 5) on the wire.
  std::vector<PacketRef> wire;
  for (PacketRef& ref : encoded) {
    const bool dropped = ref.tags().back().starts_with("fec:") &&
                         (ref.sequence() == 2 || ref.sequence() == 5);
    if (!dropped) wire.push_back(ref);
  }
  ASSERT_EQ(wire.size(), 8U);

  std::vector<Packet> legacy_out;
  for (const PacketRef& ref : wire) {
    for (Packet& p : legacy_dec.process_all(ref.to_packet())) {
      legacy_out.push_back(std::move(p));
    }
  }

  const std::uint64_t copies_before = arena.stats().payload_copies;
  std::vector<PacketRef> span_out;
  VectorSink dec_sink(arena, span_out);
  span_dec.process_span(wire, dec_sink);
  EXPECT_EQ(arena.stats().payload_copies, copies_before);

  EXPECT_EQ(span_dec.recovered(), 2U);
  EXPECT_EQ(legacy_dec.recovered(), 2U);
  ASSERT_EQ(span_out.size(), legacy_out.size());
  for (std::size_t i = 0; i < span_out.size(); ++i) {
    const Packet from_span = span_out[i].to_packet();
    EXPECT_EQ(from_span.stream_id, legacy_out[i].stream_id) << i;
    EXPECT_EQ(from_span.sequence, legacy_out[i].sequence) << i;
    EXPECT_EQ(from_span.payload, legacy_out[i].payload) << i;
    EXPECT_EQ(from_span.encoding_stack, legacy_out[i].encoding_stack) << i;
    EXPECT_EQ(from_span.plaintext_checksum, legacy_out[i].plaintext_checksum) << i;
    EXPECT_TRUE(from_span.intact()) << i;
  }
}

TEST(FecSpan, MalformedParityHandledEquivalentlyOnBothPaths) {
  const std::size_t group = 3;
  XorFecEncoderFilter enc("fec-e", group);

  PacketArena arena;
  std::vector<PacketRef> batch;
  for (int i = 0; i < 3; ++i) batch.push_back(arena.make(1, i, random_payload(32, 40 + i)));
  std::vector<PacketRef> encoded;
  VectorSink enc_sink(arena, encoded);
  enc.process_span(batch, enc_sink);
  ASSERT_EQ(encoded.size(), 4U);
  PacketRef parity = encoded.back();
  ASSERT_TRUE(parity.tags().back().starts_with("fec-parity:"));

  // Corrupt the parity's length_xor field (bytes 8..11) so the claimed
  // reconstruction length exceeds every accumulated payload: both paths must
  // refuse to reconstruct (and not crash or emit garbage).
  for (std::size_t i = 8; i < 12; ++i) parity.data()[i] = 0xff;
  // Lose data packet #1 so a reconstruction attempt actually fires.
  std::vector<PacketRef> wire{encoded[0], encoded[2], parity};

  XorFecDecoderFilter span_dec("a");
  std::vector<PacketRef> span_out;
  VectorSink dec_sink(arena, span_out);
  span_dec.process_span(wire, dec_sink);
  EXPECT_EQ(span_dec.recovered(), 0U);
  EXPECT_EQ(span_out.size(), 2U);  // survivors only, no rebuilt packet

  XorFecDecoderFilter legacy_dec("b");
  std::vector<Packet> legacy_out;
  for (const PacketRef& ref : wire) {
    for (Packet& p : legacy_dec.process_all(ref.to_packet())) {
      legacy_out.push_back(std::move(p));
    }
  }
  EXPECT_EQ(legacy_dec.recovered(), 0U);
  EXPECT_EQ(legacy_out.size(), 2U);

  // A truncated parity (< 12 byte header) is dropped, not absorbed, by both.
  XorFecDecoderFilter span_dec2("c");
  XorFecDecoderFilter legacy_dec2("d");
  PacketRef stub = arena.make(1, 9, random_payload(4, 9));
  stub.tags().push_back("fec-parity:7:3");
  std::vector<PacketRef> stub_wire{stub};
  std::vector<PacketRef> stub_out;
  VectorSink stub_sink(arena, stub_out);
  span_dec2.process_span(stub_wire, stub_sink);
  EXPECT_TRUE(stub_out.empty());
  EXPECT_EQ(span_dec2.stats().dropped, 1U);
  EXPECT_TRUE(legacy_dec2.process_all(stub.to_packet()).empty());
  EXPECT_EQ(legacy_dec2.stats().dropped, 1U);
}

// --- DES codecs in the arena --------------------------------------------------

TEST(DesSpan, EncodeDecodeRoundTripInArenaZeroCopies) {
  PacketArena arena;
  crypto::DesEncoderFilter enc("E1", crypto::Scheme::Des64);
  crypto::DesDecoderFilter dec("D1", true, false);

  std::vector<PacketRef> batch;
  std::vector<Payload> originals;
  for (int i = 0; i < 16; ++i) {
    originals.push_back(random_payload(100 + i, i));
    batch.push_back(arena.make(1, i, originals.back()));
  }
  const std::uint64_t copies_before = arena.stats().payload_copies;

  std::vector<PacketRef> encoded;
  VectorSink enc_sink(arena, encoded);
  enc.process_span(batch, enc_sink);
  ASSERT_EQ(encoded.size(), 16U);
  for (const PacketRef& ref : encoded) {
    EXPECT_EQ(ref.tags(), (std::vector<std::string>{"des64"}));
    EXPECT_EQ(ref.size() % 8, 0U);
  }

  std::vector<PacketRef> decoded;
  VectorSink dec_sink(arena, decoded);
  dec.process_span(encoded, dec_sink);
  ASSERT_EQ(decoded.size(), 16U);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(decoded[i].intact()) << i;
    EXPECT_EQ(decoded[i].payload().size(), originals[i].size());
    EXPECT_TRUE(std::equal(originals[i].begin(), originals[i].end(), decoded[i].data()));
  }
  // Encrypt writes into fresh arena buffers and decrypt works in place:
  // no payload bytes were copied INTO the arena after setup.
  EXPECT_EQ(arena.stats().payload_copies, copies_before);
}

TEST(DesSpan, Ede128RoundTripAndMismatchedDecoderBypasses) {
  PacketArena arena;
  crypto::DesEncoderFilter enc("E2", crypto::Scheme::Des128);
  crypto::DesDecoderFilter wrong("D1", true, false);   // 64-only decoder
  crypto::DesDecoderFilter right("D2", true, true);    // compatible decoder

  std::vector<PacketRef> batch{arena.make(1, 0, random_payload(64, 9))};
  std::vector<PacketRef> encoded;
  VectorSink enc_sink(arena, encoded);
  enc.process_span(batch, enc_sink);

  std::vector<PacketRef> bypassed;
  VectorSink wrong_sink(arena, bypassed);
  wrong.process_span(encoded, wrong_sink);
  ASSERT_EQ(bypassed.size(), 1U);
  EXPECT_EQ(bypassed[0].tags(), (std::vector<std::string>{"des128"}));
  EXPECT_EQ(wrong.stats().bypassed, 1U);

  std::vector<PacketRef> decoded;
  VectorSink right_sink(arena, decoded);
  right.process_span(bypassed, right_sink);
  ASSERT_EQ(decoded.size(), 1U);
  EXPECT_TRUE(decoded[0].intact());
}

// --- RLE codecs in the arena --------------------------------------------------

Payload run_structured_payload(std::size_t runs, std::uint64_t seed) {
  util::Rng rng(seed);
  Payload payload;
  for (std::size_t r = 0; r < runs; ++r) {
    const auto byte = static_cast<std::uint8_t>(rng.next_u64());
    const std::size_t len = 1 + rng.next_u64() % 300;  // some runs exceed 255
    payload.insert(payload.end(), len, byte);
  }
  return payload;
}

TEST(RleSpan, CompressMatchesPerPacketPathExactly) {
  RleCompressFilter span_enc("a");
  RleCompressFilter legacy_enc("b");

  PacketArena arena;
  std::vector<PacketRef> batch;
  std::vector<Packet> legacy_out;
  for (int i = 0; i < 8; ++i) {
    // Mix compressible (run-structured) and expanding (random) payloads.
    const Payload payload =
        i % 2 == 0 ? run_structured_payload(6, 40 + i) : random_payload(120, 40 + i);
    batch.push_back(arena.make(5, i, payload));
    legacy_out.push_back(*legacy_enc.process(Packet::make(5, i, payload)));
  }
  std::vector<PacketRef> span_out;
  VectorSink sink(arena, span_out);
  span_enc.process_span(batch, sink);

  ASSERT_EQ(span_out.size(), legacy_out.size());
  for (std::size_t i = 0; i < span_out.size(); ++i) {
    const Packet from_span = span_out[i].to_packet();
    EXPECT_EQ(from_span.sequence, legacy_out[i].sequence) << i;
    EXPECT_EQ(from_span.payload, legacy_out[i].payload) << i;
    EXPECT_EQ(from_span.encoding_stack, legacy_out[i].encoding_stack) << i;
  }
  EXPECT_EQ(span_enc.stats().processed, legacy_enc.stats().processed);
  EXPECT_DOUBLE_EQ(span_enc.ratio(), legacy_enc.ratio());
}

TEST(RleSpan, DecompressMatchesPerPacketPathIncludingBypassAndDrop) {
  RleCompressFilter enc("e");
  RleDecompressFilter span_dec("a");
  RleDecompressFilter legacy_dec("b");

  PacketArena arena;
  std::vector<PacketRef> wire;
  std::vector<Packet> legacy_in;

  // Two well-formed encoded packets.
  for (int i = 0; i < 2; ++i) {
    const Payload payload = run_structured_payload(4, 90 + i);
    wire.push_back(arena.make(7, i, payload));
    legacy_in.push_back(Packet::make(7, i, payload));
  }
  std::vector<PacketRef> encoded;
  VectorSink enc_sink(arena, encoded);
  enc.process_span(wire, enc_sink);
  for (Packet& p : legacy_in) p = *enc.process(std::move(p));

  // One untagged packet (bypass) and two malformed tagged ones (drop):
  // odd length, and a zero run count.
  encoded.push_back(arena.make(7, 2, random_payload(33, 92)));
  legacy_in.push_back(Packet::make(7, 2, encoded.back().to_packet().payload));

  const Payload odd{1, 7, 9};
  encoded.push_back(arena.make(7, 3, odd));
  encoded.back().tags().push_back(kTagRle);
  legacy_in.push_back(Packet::make(7, 3, odd));
  legacy_in.back().encoding_stack.emplace_back(kTagRle);

  const Payload zero_count{0, 42};
  encoded.push_back(arena.make(7, 4, zero_count));
  encoded.back().tags().push_back(kTagRle);
  legacy_in.push_back(Packet::make(7, 4, zero_count));
  legacy_in.back().encoding_stack.emplace_back(kTagRle);

  std::vector<PacketRef> span_out;
  VectorSink dec_sink(arena, span_out);
  span_dec.process_span(encoded, dec_sink);

  std::vector<Packet> legacy_out;
  for (Packet& p : legacy_in) {
    if (auto result = legacy_dec.process(std::move(p))) legacy_out.push_back(std::move(*result));
  }

  ASSERT_EQ(span_out.size(), legacy_out.size());
  for (std::size_t i = 0; i < span_out.size(); ++i) {
    const Packet from_span = span_out[i].to_packet();
    EXPECT_EQ(from_span.sequence, legacy_out[i].sequence) << i;
    EXPECT_EQ(from_span.payload, legacy_out[i].payload) << i;
    EXPECT_EQ(from_span.encoding_stack, legacy_out[i].encoding_stack) << i;
    EXPECT_TRUE(span_out[i].intact()) << i;
  }
  EXPECT_EQ(span_dec.stats().processed, legacy_dec.stats().processed);
  EXPECT_EQ(span_dec.stats().bypassed, legacy_dec.stats().bypassed);
  EXPECT_EQ(span_dec.stats().dropped, legacy_dec.stats().dropped);
  EXPECT_EQ(span_dec.stats().dropped, 2U);
}

TEST(RleSpan, BypassForwardsSameBufferAndRoundTripRecoversInput) {
  PacketArena arena;
  RleCompressFilter enc("E");
  RleDecompressFilter dec("D");

  const Payload original = run_structured_payload(10, 77);
  std::vector<PacketRef> batch{arena.make(9, 0, original)};

  std::vector<PacketRef> encoded;
  VectorSink enc_sink(arena, encoded);
  enc.process_span(batch, enc_sink);
  ASSERT_EQ(encoded.size(), 1U);
  EXPECT_EQ(encoded[0].tags(), (std::vector<std::string>{"rle"}));

  std::vector<PacketRef> decoded;
  VectorSink dec_sink(arena, decoded);
  dec.process_span(encoded, dec_sink);
  ASSERT_EQ(decoded.size(), 1U);
  EXPECT_TRUE(decoded[0].tags().empty());
  EXPECT_TRUE(decoded[0].intact());
  ASSERT_EQ(decoded[0].size(), original.size());
  EXPECT_TRUE(std::equal(original.begin(), original.end(), decoded[0].data()));

  // Untagged input bypasses with the exact same buffer — zero copies.
  std::vector<PacketRef> plain{arena.make(9, 1, original)};
  const std::uint8_t* before = plain[0].data();
  std::vector<PacketRef> forwarded;
  VectorSink fwd_sink(arena, forwarded);
  dec.process_span(plain, fwd_sink);
  ASSERT_EQ(forwarded.size(), 1U);
  EXPECT_EQ(forwarded[0].data(), before);
  EXPECT_EQ(dec.stats().bypassed, 1U);
}

// --- FilterChain::process_batch -----------------------------------------------

TEST(ChainBatch, MovesSpansThroughWholeChainWithBatchAccounting) {
  sim::Simulator simulator;
  FilterChain chain(simulator, "chain");
  chain.append_filter(std::make_shared<TagFilter>("t", "x"));
  chain.append_filter(std::make_shared<UntagFilter>("u", "x"));

  PacketArena arena;
  std::vector<PacketRef> batch;
  for (int i = 0; i < 32; ++i) batch.push_back(arena.make(1, i, random_payload(64, i)));

  std::vector<PacketRef> out;
  VectorSink sink(arena, out);
  EXPECT_EQ(chain.process_batch(batch, sink), 32U);

  ASSERT_EQ(out.size(), 32U);
  for (const PacketRef& ref : out) EXPECT_TRUE(ref.intact());
  EXPECT_EQ(chain.stats().submitted, 32U);
  EXPECT_EQ(chain.stats().delivered, 32U);
  EXPECT_EQ(chain.stats().batches, 1U);
  // One accounting pass per batch: 20us overhead + 20us + 20us filters.
  EXPECT_EQ(chain.stats().batch_virtual_time, runtime::us(60));
}

TEST(ChainBatch, QuiescenceBlocksAtBatchBoundaryNotMidSpan) {
  sim::Simulator simulator;
  FilterChain chain(simulator, "chain");
  chain.append_filter(std::make_shared<PassThroughFilter>("p"));

  PacketArena arena;
  std::vector<PacketRef> batch{arena.make(1, 0, random_payload(16, 0))};
  std::vector<PacketRef> out;
  VectorSink sink(arena, out);

  // Idle chain: request fires immediately and the chain blocks.
  bool quiescent = false;
  chain.request_quiescence([&] { quiescent = true; });
  EXPECT_TRUE(quiescent);
  EXPECT_TRUE(chain.blocked());
  // Batch submission while blocked is a protocol violation.
  EXPECT_THROW(chain.process_batch(batch, sink), std::logic_error);
  chain.resume();
  EXPECT_EQ(chain.process_batch(batch, sink), 1U);
}

TEST(ChainBatch, MatchesLegacyPerPacketDeliveryWithFecAndDes) {
  // Same filters, same inputs: the batched chain and the clock-scheduled
  // chain must deliver identical packet streams.
  sim::Simulator simulator;
  FilterChain legacy(simulator, "legacy");
  legacy.append_filter(std::make_shared<XorFecEncoderFilter>("fec-e", 4));
  legacy.append_filter(std::make_shared<crypto::DesEncoderFilter>("E1", crypto::Scheme::Des64));
  legacy.append_filter(std::make_shared<crypto::DesDecoderFilter>("D1", true, false));
  legacy.append_filter(std::make_shared<XorFecDecoderFilter>("fec-d"));

  std::vector<Packet> legacy_out;
  legacy.set_output([&](Packet p) { legacy_out.push_back(std::move(p)); });
  std::vector<Payload> payloads;
  for (int i = 0; i < 12; ++i) payloads.push_back(random_payload(80, 700 + i));
  for (int i = 0; i < 12; ++i) legacy.submit(Packet::make(1, i, payloads[i]));
  simulator.run();

  FilterChain batched(simulator, "batched");
  batched.append_filter(std::make_shared<XorFecEncoderFilter>("fec-e", 4));
  batched.append_filter(std::make_shared<crypto::DesEncoderFilter>("E1", crypto::Scheme::Des64));
  batched.append_filter(std::make_shared<crypto::DesDecoderFilter>("D1", true, false));
  batched.append_filter(std::make_shared<XorFecDecoderFilter>("fec-d"));

  PacketArena arena;
  std::vector<PacketRef> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(arena.make(1, i, payloads[i]));
  std::vector<PacketRef> out;
  VectorSink sink(arena, out);
  batched.process_batch(batch, sink);

  ASSERT_EQ(out.size(), legacy_out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Packet p = out[i].to_packet();
    EXPECT_EQ(p.sequence, legacy_out[i].sequence) << i;
    EXPECT_EQ(p.payload, legacy_out[i].payload) << i;
    EXPECT_EQ(p.encoding_stack, legacy_out[i].encoding_stack) << i;
  }
}

}  // namespace
}  // namespace sa::components

// --- threaded pump ------------------------------------------------------------

namespace sa::video {
namespace {

TEST(ThreadedPump, SingleStreamAllPacketsIntact) {
  PumpConfig config;
  config.streams = 1;
  config.batch_size = 32;
  config.packets_per_stream = 4096;
  config.payload_bytes = 200;
  DataPlanePump pump(config);
  pump.start();
  pump.run_to_completion();

  const LaneReport report = pump.lane_report(0);
  EXPECT_EQ(report.generated, 4096U);
  EXPECT_EQ(report.delivered, 4096U);
  EXPECT_EQ(report.intact, 4096U);
  EXPECT_EQ(report.corrupted, 0U);
  EXPECT_EQ(report.undecodable, 0U);
  EXPECT_GT(report.pps, 0.0);
  EXPECT_GT(report.p99_delay_us, 0.0);
}

TEST(ThreadedPump, MultiStreamAggregates) {
  PumpConfig config;
  config.streams = 4;
  config.batch_size = 64;
  config.packets_per_stream = 2048;
  DataPlanePump pump(config);
  pump.start();
  pump.run_to_completion();

  const LaneReport total = pump.total_report();
  EXPECT_EQ(total.generated, 4U * 2048U);
  EXPECT_EQ(total.intact, 4U * 2048U);
  EXPECT_EQ(total.corrupted, 0U);
}

TEST(ThreadedPump, AdaptLaneSwapsCodecUnderLoadWithoutCorruption) {
  PumpConfig config;
  config.streams = 2;
  config.batch_size = 32;
  config.packets_per_stream = 60'000;
  config.payload_bytes = 128;
  DataPlanePump pump(config);
  pump.start();

  // While the pump is running, harden lane 0 from DES-64 to DES-128 via the
  // §5.2 handshake: decoder widened first, then the encoder switched — the
  // same safe order the paper's case study uses.
  pump.adapt_lane(0, [](components::FilterChain& encode, components::FilterChain& decode) {
    EXPECT_TRUE(encode.blocked());
    EXPECT_TRUE(decode.blocked());
    decode.replace_filter("D1", crypto::make_decoder("D2", true, true));
    encode.replace_filter("E1", crypto::make_encoder_e2());
  });

  pump.run_to_completion();

  const LaneReport lane0 = pump.lane_report(0);
  EXPECT_EQ(lane0.corrupted, 0U);
  EXPECT_EQ(lane0.undecodable, 0U);
  EXPECT_EQ(lane0.intact, lane0.delivered);
  EXPECT_EQ(lane0.blocked_windows, 1U);
  EXPECT_GT(lane0.blocked_us, 0.0);
  // Lane 1 was never adapted.
  EXPECT_EQ(pump.lane_report(1).blocked_windows, 0U);
  EXPECT_EQ(pump.lane_report(1).corrupted, 0U);
}

TEST(ThreadedPump, FecChainBuilderSurvivesLoad) {
  PumpConfig config;
  config.streams = 1;
  config.batch_size = 24;
  config.packets_per_stream = 2400;
  DataPlanePump pump(config);
  pump.start([](std::size_t, runtime::Clock&, components::FilterChain& encode,
                components::FilterChain& decode) {
    encode.append_filter(std::make_shared<components::XorFecEncoderFilter>("fec-e", 8));
    encode.append_filter(crypto::make_encoder_e1());
    decode.append_filter(crypto::make_decoder("D1", true, false));
    decode.append_filter(std::make_shared<components::XorFecDecoderFilter>("fec-d"));
  });
  pump.run_to_completion();

  const LaneReport report = pump.lane_report(0);
  // Parity packets are absorbed by the decoder; every data packet arrives intact.
  EXPECT_EQ(report.intact, 2400U);
  EXPECT_EQ(report.corrupted, 0U);
  EXPECT_EQ(report.undecodable, 0U);
}

}  // namespace
}  // namespace sa::video
