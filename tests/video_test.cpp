#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "core/video_testbed.hpp"
#include "video/stream.hpp"
#include "sim/simulator.hpp"

namespace sa::core {
namespace {

using proto::AdaptationOutcome;
using proto::AdaptationResult;

// --- stream plumbing -----------------------------------------------------------

TEST(Stream, SourceEmitsAtConfiguredRate) {
  sim::Simulator sim;
  video::StreamConfig cfg;
  cfg.frames_per_second = 25;
  cfg.packets_per_frame = 4;  // 100 packets/s -> 10ms interval
  video::StreamSource source(sim, cfg);
  int emitted = 0;
  source.start([&](components::Packet) { ++emitted; });
  sim.run_until(sim::seconds(1));
  source.stop();
  EXPECT_GE(emitted, 100);
  EXPECT_LE(emitted, 102);
  EXPECT_EQ(source.packet_interval(), sim::ms(10));
}

TEST(Stream, StopHaltsEmission) {
  sim::Simulator sim;
  video::StreamSource source(sim, {});
  int emitted = 0;
  source.start([&](components::Packet) { ++emitted; });
  sim.run_until(sim::ms(100));
  source.stop();
  const int at_stop = emitted;
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(emitted, at_stop);
}

TEST(Stream, SinkCountsIntactAndDetectsProblems) {
  sim::Simulator sim;
  video::StreamSink sink(sim);
  auto good = components::Packet::make(1, 0, {1, 2, 3});
  sink.accept(good);
  auto corrupt = components::Packet::make(1, 1, {1, 2, 3});
  corrupt.payload[0] = 99;
  sink.accept(corrupt);
  auto undecodable = components::Packet::make(1, 2, {1, 2, 3});
  undecodable.encoding_stack.push_back("des64");
  sink.accept(undecodable);
  sink.accept(good);  // duplicate sequence 0

  const auto& stats = sink.stats();
  EXPECT_EQ(stats.received, 4U);
  EXPECT_EQ(stats.intact, 1U);
  EXPECT_EQ(stats.corrupted, 1U);
  EXPECT_EQ(stats.undecodable, 1U);
  EXPECT_EQ(stats.duplicates, 1U);
  EXPECT_EQ(sink.missing(5), 2U);  // sequences 3 and 4 never arrived
}

TEST(Stream, SinkTracksReordering) {
  sim::Simulator sim;
  video::StreamSink sink(sim);
  sink.accept(components::Packet::make(1, 5, {1}));
  sink.accept(components::Packet::make(1, 3, {1}));
  EXPECT_EQ(sink.stats().reordered, 1U);
}

// --- end-to-end streaming -------------------------------------------------------

TEST(VideoTestbed, SteadyStateStreamingIsIntact) {
  VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::seconds(2));
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));  // drain

  EXPECT_GT(testbed.total_intact(), 150U);
  EXPECT_EQ(testbed.total_corrupted(), 0U);
  EXPECT_EQ(testbed.total_undecodable(), 0U);
  // Both clients got every packet (lossless default channels).
  EXPECT_EQ(testbed.handheld().sink().missing(testbed.server().packets_emitted()), 0U);
  EXPECT_EQ(testbed.laptop().sink().missing(testbed.server().packets_emitted()), 0U);
}

TEST(VideoTestbed, InstalledConfigurationTracksChains) {
  VideoTestbed testbed;
  EXPECT_EQ(testbed.installed_configuration(), testbed.source());
}

TEST(VideoTestbed, SafeAdaptationDuringStreamKeepsEveryPacketIntact) {
  VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(200));

  std::optional<AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->outcome, AdaptationOutcome::Success);

  testbed.run_for(sim::seconds(1));
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));  // drain

  // The headline safety property: recomposition from DES-64 to DES-128 under
  // live traffic corrupts NOTHING and loses NOTHING.
  EXPECT_EQ(testbed.total_corrupted(), 0U);
  EXPECT_EQ(testbed.total_undecodable(), 0U);
  EXPECT_EQ(testbed.handheld().sink().missing(testbed.server().packets_emitted()), 0U);
  EXPECT_EQ(testbed.laptop().sink().missing(testbed.server().packets_emitted()), 0U);
  EXPECT_GT(testbed.total_intact(), 0U);

  // Final composition matches the target: E2 / D3 / D5.
  EXPECT_EQ(testbed.installed_configuration(), testbed.target());
  EXPECT_EQ(testbed.server().chain().filter_names(), (std::vector<std::string>{"E2"}));
  EXPECT_EQ(testbed.handheld().chain().filter_names(), (std::vector<std::string>{"D3"}));
  EXPECT_EQ(testbed.laptop().chain().filter_names(), (std::vector<std::string>{"D5"}));
}

TEST(VideoTestbed, DisruptionBoundedDuringSafeAdaptation) {
  VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(500));
  std::optional<AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));
  ASSERT_TRUE(result && result->outcome == AdaptationOutcome::Success);
  testbed.run_for(sim::seconds(1));

  // Per-step blocking is short (single-component swaps); the longest silence
  // a player sees stays well under half a second.
  EXPECT_LT(testbed.handheld().player_stats().max_interarrival_gap, sim::ms(500));
  EXPECT_LT(testbed.laptop().player_stats().max_interarrival_gap, sim::ms(500));
}

TEST(VideoTestbed, LossyDataChannelDoesNotBreakAdaptation) {
  TestbedConfig config;
  config.data_channel.loss_probability = 0.1;
  VideoTestbed testbed(config);
  testbed.start_stream();
  testbed.run_for(sim::ms(200));
  std::optional<AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->outcome, AdaptationOutcome::Success);
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));

  // Data loss shows up as missing packets, never as corruption.
  EXPECT_EQ(testbed.total_corrupted(), 0U);
  EXPECT_EQ(testbed.total_undecodable(), 0U);
  EXPECT_GT(testbed.handheld().sink().missing(testbed.server().packets_emitted()), 0U);
}

TEST(VideoTestbed, FailedAdaptationRollsBackAndStreamSurvives) {
  VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(200));

  // The hand-held cannot quiesce: the whole adaptation is eventually
  // abandoned, and the stream must keep playing intact on the ORIGINAL
  // composition afterwards.
  testbed.system().agent(kHandheldProcess).set_fail_to_reset(true);
  std::optional<AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(30));
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->outcome, AdaptationOutcome::Success);
  EXPECT_TRUE(testbed.system().invariants().satisfied(testbed.installed_configuration()));

  const std::uint64_t intact_before = testbed.total_intact();
  testbed.run_for(sim::seconds(2));
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));
  EXPECT_GT(testbed.total_intact(), intact_before);  // still flowing
  EXPECT_EQ(testbed.total_corrupted(), 0U);
  EXPECT_EQ(testbed.total_undecodable(), 0U);
}

TEST(VideoTestbed, FrameAlignedAdaptationViaSafeStateMonitor) {
  // §7 extension: clients derive their safe states from a ptLTL/segment
  // monitor so decoder swaps only happen on frame boundaries.
  TestbedConfig config;
  config.frame_aligned_clients = true;
  config.data_channel.loss_probability = 0.0;  // frames must complete
  VideoTestbed testbed(config);
  ASSERT_NE(testbed.handheld_monitor(), nullptr);

  testbed.start_stream();
  testbed.run_for(sim::ms(305));  // mid-stream, likely mid-frame

  std::optional<AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->outcome, AdaptationOutcome::Success);

  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));
  EXPECT_EQ(testbed.total_corrupted(), 0U);
  EXPECT_EQ(testbed.total_undecodable(), 0U);
  EXPECT_EQ(testbed.installed_configuration(), testbed.target());
  // The monitors really were consulted: they observed frame events.
  EXPECT_GT(testbed.handheld_monitor()->events_observed(), 0U);
  EXPECT_GT(testbed.laptop_monitor()->events_observed(), 0U);
}

// Property sweep: the headline safety result — no corruption, ever — holds
// across seeds, data loss levels, and both safe-state derivation modes.
using VideoSweepParam = std::tuple<std::uint64_t /*seed*/, int /*loss %*/>;
class VideoIntegritySweep : public ::testing::TestWithParam<VideoSweepParam> {};

TEST_P(VideoIntegritySweep, SafeAdaptationNeverCorruptsTheStream) {
  const auto [seed, loss_percent] = GetParam();
  TestbedConfig config;
  config.system.seed = seed;
  config.data_channel.loss_probability = loss_percent / 100.0;
  VideoTestbed testbed(config);
  testbed.start_stream();
  testbed.run_for(sim::ms(200));
  std::optional<AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));
  ASSERT_TRUE(result.has_value()) << "seed " << seed;
  EXPECT_EQ(result->outcome, AdaptationOutcome::Success);
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));
  EXPECT_EQ(testbed.total_corrupted(), 0U) << "seed " << seed;
  EXPECT_EQ(testbed.total_undecodable(), 0U) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(SeedsAndLoss, VideoIntegritySweep,
                         ::testing::Combine(::testing::Values(1, 7, 42, 1337, 99991),
                                            ::testing::Values(0, 5, 15)),
                         [](const ::testing::TestParamInfo<VideoSweepParam>& info) {
                           return "seed" + std::to_string(std::get<0>(info.param)) + "_loss" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(VideoTestbed, PairActionWithDrainStaysIntact) {
  // Force the expensive combined action A9 (D4,E1) -> (D5,E2) by making it
  // the only viable step: adapt {D5,D4,D2,E1} -> {D5,D4,D2,E2}... A1 does
  // that alone. Instead drive the testbed through a direct pair request:
  // source {D4,D1,E1} with only pair actions available is the baseline
  // scenario; here we simply verify a multi-process step via A10:
  // {D4,D1,E1} has no safe A10 result, so use A6 path:
  // request {D5,D4,D2,E2} whose MAP is A2, A17, A1 (all singles) — then
  // request the *reverse-ish* hop that needs a pair: none exists. So instead
  // validate drain directly: the laptop+handheld pair A10 from {D5,D4,D1,E1}?
  // A10 removes D4 which E1 needs... Also unsafe. The action table simply
  // offers no safe pair transition under live invariants — itself a faithful
  // property of the paper's SAG (pair actions only appear on paths the
  // planner rejects as more expensive). Assert exactly that.
  VideoTestbed testbed;
  const auto& sag = testbed.system().manager().sag();
  bool any_multi_process_edge = false;
  for (graph::EdgeId e = 0; e < sag.graph().edge_count(); ++e) {
    const auto& action = sag.action_of_edge(e);
    if (action.affected_processes(testbed.system().registry(), 7).size() > 1) {
      any_multi_process_edge = true;
      break;
    }
  }
  EXPECT_TRUE(any_multi_process_edge);  // pair edges exist in the SAG...
  const auto plan = testbed.system().manager().planner().minimum_path(testbed.source(),
                                                                      testbed.target());
  ASSERT_TRUE(plan.has_value());
  for (const auto& step : plan->steps) {
    // ...but the MAP avoids them all (they cost 10x a single swap).
    EXPECT_EQ(testbed.system()
                  .action_table()
                  .action(step.action)
                  .affected_processes(testbed.system().registry(), 7)
                  .size(),
              1U);
  }
}

}  // namespace
}  // namespace sa::core
