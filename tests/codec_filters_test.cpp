#include <gtest/gtest.h>

#include "components/filter_chain.hpp"
#include "crypto/codec_filters.hpp"
#include "sim/simulator.hpp"

namespace sa::crypto {
namespace {

components::Packet make_packet(std::size_t size = 100) {
  components::Payload payload(size);
  for (std::size_t i = 0; i < size; ++i) payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return components::Packet::make(1, 0, std::move(payload));
}

TEST(CodecFilters, EncoderTagsAndEncrypts) {
  DesEncoderFilter e1("E1", Scheme::Des64);
  const auto packet = make_packet();
  const auto out = e1.process(packet);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->encoding_stack, (std::vector<std::string>{"des64"}));
  EXPECT_NE(out->payload, packet.payload);
  EXPECT_FALSE(out->intact());
  EXPECT_EQ(e1.stats().processed, 1U);
}

TEST(CodecFilters, MatchingDecoderRestoresPacket) {
  DesEncoderFilter e1("E1", Scheme::Des64);
  DesDecoderFilter d1("D1", true, false);
  auto out = d1.process(*e1.process(make_packet()));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->intact());
  EXPECT_EQ(d1.stats().processed, 1U);
  EXPECT_EQ(d1.stats().bypassed, 0U);
}

TEST(CodecFilters, Des128RoundTrip) {
  DesEncoderFilter e2("E2", Scheme::Des128);
  DesDecoderFilter d3("D3", false, true);
  const auto out = d3.process(*e2.process(make_packet()));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->intact());
}

TEST(CodecFilters, BypassRuleOnSchemeMismatch) {
  // "When it receives a packet not encoded by the corresponding encoder, it
  // simply forwards the packet to the next filter in the chain."
  DesEncoderFilter e2("E2", Scheme::Des128);
  DesDecoderFilter d1("D1", true, false);
  const auto encoded = e2.process(make_packet());
  const auto out = d1.process(*encoded);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, encoded->payload);  // untouched
  EXPECT_EQ(out->encoding_stack, encoded->encoding_stack);
  EXPECT_EQ(d1.stats().bypassed, 1U);
  EXPECT_FALSE(out->intact());  // still encoded: player counts it undecodable
}

TEST(CodecFilters, BypassOnPlainPacket) {
  DesDecoderFilter d1("D1", true, false);
  const auto out = d1.process(make_packet());
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->intact());
  EXPECT_EQ(d1.stats().bypassed, 1U);
}

TEST(CodecFilters, CompatDecoderHandlesBothSchemes) {
  // D2 is the paper's 128/64-bit compatible decoder.
  DesEncoderFilter e1("E1", Scheme::Des64);
  DesEncoderFilter e2("E2", Scheme::Des128);
  DesDecoderFilter d2("D2", true, true);
  EXPECT_TRUE(d2.process(*e1.process(make_packet()))->intact());
  EXPECT_TRUE(d2.process(*e2.process(make_packet()))->intact());
  EXPECT_EQ(d2.stats().processed, 2U);
}

TEST(CodecFilters, KeyMismatchCorruptsButDelivers) {
  DesKeys server_keys;
  DesKeys client_keys;
  client_keys.key64 = 0x1111111111111111ULL;
  DesEncoderFilter e1("E1", Scheme::Des64, server_keys);
  DesDecoderFilter d1("D1", true, false, client_keys);
  const auto out = d1.process(*e1.process(make_packet()));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->encoding_stack.empty());  // tag consumed
  EXPECT_FALSE(out->intact());               // but payload is garbage
}

TEST(CodecFilters, NestedEncodingsUnwindInReverseOrder) {
  DesEncoderFilter e1("E1", Scheme::Des64);
  DesEncoderFilter e2("E2", Scheme::Des128);
  DesDecoderFilter d3("D3", false, true);
  DesDecoderFilter d1("D1", true, false);
  // encode 64 then 128; decode must pop 128 first, then 64.
  auto packet = *e2.process(*e1.process(make_packet()));
  EXPECT_EQ(packet.encoding_stack, (std::vector<std::string>{"des64", "des128"}));
  packet = *d3.process(std::move(packet));
  packet = *d1.process(std::move(packet));
  EXPECT_TRUE(packet.intact());
}

TEST(CodecFilters, FactoriesMatchPaperComponents) {
  const auto e1 = make_encoder_e1();
  const auto e2 = make_encoder_e2();
  const auto d2 = make_decoder("D2", true, true);
  EXPECT_EQ(e1->name(), "E1");
  EXPECT_EQ(e2->name(), "E2");
  EXPECT_EQ(d2->name(), "D2");
  EXPECT_EQ(e1->refract().at("scheme"), "des64");
  EXPECT_EQ(e2->refract().at("scheme"), "des128");
  EXPECT_EQ(d2->refract().at("accepts"), "des64,des128");
}

TEST(CodecFilters, EndToEndThroughChains) {
  sim::Simulator sim;
  components::FilterChain sender(sim, "sender");
  components::FilterChain receiver(sim, "receiver");
  sender.append_filter(make_encoder_e1());
  receiver.append_filter(make_decoder("D1", true, false));

  std::vector<components::Packet> played;
  sender.set_output([&receiver](components::Packet p) { receiver.submit(std::move(p)); });
  receiver.set_output([&played](components::Packet p) { played.push_back(std::move(p)); });

  for (int i = 0; i < 10; ++i) {
    auto packet = make_packet();
    packet.sequence = static_cast<std::uint64_t>(i);
    sender.submit(std::move(packet));
  }
  sim.run();
  ASSERT_EQ(played.size(), 10U);
  for (const auto& packet : played) EXPECT_TRUE(packet.intact());
}

}  // namespace
}  // namespace sa::crypto
