// Randomized seed-matrix conformance: the paper scenario driven end to end
// under randomly drawn loss / duplication / partition conditions, on both
// runtime backends, with every message trace checked against the Fig. 1 /
// Fig. 2 automata by the protocol conformance checker. Complements the
// explorer (tests/check_explorer_test.cpp): the explorer proves schedules of
// the cores safe, this proves the real drivers stay conformant under the
// randomness the runtime actually produces.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <sstream>
#include <string>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "proto/conformance.hpp"
#include "runtime/threaded_runtime.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sa::check {
namespace {

struct NullProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

struct MatrixPoint {
  std::uint64_t seed = 0;
  double loss = 0.0;
  double duplicate = 0.0;
  bool partition_handheld = false;

  std::string describe() const {
    std::ostringstream out;
    out << "seed=" << seed << " loss=" << loss << " dup=" << duplicate
        << (partition_handheld ? " partitioned" : "");
    return out.str();
  }
};

void attach_null_processes(core::SafeAdaptationSystem& system, NullProcess& server,
                           NullProcess& handheld, NullProcess& laptop) {
  core::configure_paper_system(system);
  system.attach_process(core::kServerProcess, server, /*stage=*/0);
  system.attach_process(core::kHandheldProcess, handheld, /*stage=*/1);
  system.attach_process(core::kLaptopProcess, laptop, /*stage=*/1);
  system.finalize();
  system.set_current_configuration(core::paper_source(system.registry()));
}

TEST(ConformanceMatrix, SimBackendRandomSeedsStayClean) {
  util::Rng rng(0xC0FFEE);
  for (int i = 0; i < 12; ++i) {
    MatrixPoint point;
    point.seed = rng.next_u64();
    point.loss = 0.3 * rng.next_double();
    point.duplicate = 0.2 * rng.next_double();
    point.partition_handheld = (i % 4) == 3;  // every fourth run loses an agent

    core::SystemConfig config;
    config.seed = point.seed;
    config.control_channel.loss_probability = point.loss;
    config.control_channel.duplicate_probability = point.duplicate;
    core::SafeAdaptationSystem system(config);
    NullProcess server, handheld, laptop;
    attach_null_processes(system, server, handheld, laptop);
    system.network().set_tracing(true);
    if (point.partition_handheld) {
      system.network().partition_pair(system.manager_node(),
                                      system.agent_node(core::kHandheldProcess), true);
    }

    std::optional<proto::AdaptationResult> result;
    system.request_adaptation(
        core::paper_target(system.registry()),
        [&result](const proto::AdaptationResult& r) { result = r; });
    std::size_t events = 0;
    while (!result && events < 2'000'000 && system.simulator().step()) ++events;
    ASSERT_TRUE(result.has_value()) << point.describe();

    const auto violations =
        proto::ConformanceChecker(system.manager_node()).check(system.network().trace());
    for (const auto& violation : violations) {
      ADD_FAILURE() << point.describe() << " t=" << violation.time << ": "
                    << violation.description;
    }
  }
}

TEST(ConformanceMatrix, ThreadedBackendRandomSeedsStayClean) {
  util::Rng rng(0xBEEF);
  for (int i = 0; i < 3; ++i) {
    MatrixPoint point;
    point.seed = rng.next_u64();
    // Modest fault rates: each lost message costs a real-time retransmission
    // round here, unlike on the simulated clock.
    point.loss = 0.05 * rng.next_double();
    point.duplicate = 0.1 * rng.next_double();

    runtime::ThreadedRuntime rt({.workers = 4, .seed = point.seed});
    core::SystemConfig config;
    config.seed = point.seed;
    config.control_channel.loss_probability = point.loss;
    config.control_channel.duplicate_probability = point.duplicate;
    core::SafeAdaptationSystem system(rt, config);
    NullProcess server, handheld, laptop;
    attach_null_processes(system, server, handheld, laptop);
    rt.transport().set_tracing(true);

    const proto::AdaptationResult result =
        system.adapt_and_wait(core::paper_target(system.registry()));
    EXPECT_NE(result.outcome, proto::AdaptationOutcome::NoPathFound) << point.describe();

    rt.shutdown();
    const auto violations =
        proto::ConformanceChecker(system.manager_node()).check(rt.transport().trace());
    for (const auto& violation : violations) {
      ADD_FAILURE() << point.describe() << " t=" << violation.time << ": "
                    << violation.description;
    }
  }
}

}  // namespace
}  // namespace sa::check
