#include <gtest/gtest.h>

#include "components/fec.hpp"
#include "components/filter_chain.hpp"
#include "components/rle.hpp"
#include "crypto/codec_filters.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sa::components {
namespace {

Packet make_packet(std::uint64_t seq, Payload payload) {
  return Packet::make(1, seq, std::move(payload));
}

Payload runs_payload(std::size_t size) {
  Payload payload;
  std::uint8_t byte = 0;
  while (payload.size() < size) {
    payload.insert(payload.end(), std::min<std::size_t>(9, size - payload.size()), byte);
    ++byte;
  }
  return payload;
}

// --- RLE ----------------------------------------------------------------------

TEST(Rle, EncodeDecodeRoundTrip) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Payload payload(rng.next_below(300));
    for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next_below(4));
    const auto decoded = rle_decode(rle_encode(payload));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(Rle, EmptyPayload) {
  EXPECT_TRUE(rle_encode({}).empty());
  EXPECT_EQ(rle_decode(Payload{}), Payload{});
}

TEST(Rle, LongRunsSplitAt255) {
  const Payload payload(700, 0x42);
  const Payload encoded = rle_encode(payload);
  EXPECT_EQ(encoded.size(), 6U);  // 255 + 255 + 190
  EXPECT_EQ(*rle_decode(encoded), payload);
}

TEST(Rle, CompressesRunsExpandsNoise) {
  const Payload runs = runs_payload(256);
  EXPECT_LT(rle_encode(runs).size(), runs.size());
  util::Rng rng(9);
  Payload noise(256);
  for (auto& byte : noise) byte = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_GT(rle_encode(noise).size(), noise.size());  // ~2x
}

TEST(Rle, DecodeRejectsMalformed) {
  EXPECT_FALSE(rle_decode(Payload{1}).has_value());          // odd length
  EXPECT_FALSE(rle_decode(Payload{0, 42}).has_value());      // zero count
}

TEST(Rle, FiltersRoundTripAndTrackRatio) {
  RleCompressFilter compress("rle-c");
  RleDecompressFilter decompress("rle-d");
  auto packet = make_packet(0, runs_payload(200));
  auto compressed = compress.process(packet);
  ASSERT_TRUE(compressed.has_value());
  EXPECT_EQ(compressed->encoding_stack, (std::vector<std::string>{kTagRle}));
  EXPECT_LT(compress.ratio(), 1.0);
  auto restored = decompress.process(std::move(*compressed));
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->intact());
}

TEST(Rle, DecompressorBypassesUntaggedPackets) {
  RleDecompressFilter decompress("rle-d");
  const auto out = decompress.process(make_packet(0, {1, 2, 3}));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->intact());
  EXPECT_EQ(decompress.stats().bypassed, 1U);
}

TEST(Rle, ComposesUnderEncryption) {
  // [RLE, E1] on the sender, [D1, un-RLE] on the receiver.
  RleCompressFilter compress("rle-c");
  crypto::DesEncoderFilter e1("E1", crypto::Scheme::Des64);
  crypto::DesDecoderFilter d1("D1", true, false);
  RleDecompressFilter decompress("rle-d");
  auto packet = make_packet(7, runs_payload(128));
  auto wire = e1.process(*compress.process(packet));
  auto restored = decompress.process(*d1.process(std::move(*wire)));
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->intact());
  EXPECT_EQ(restored->sequence, 7U);
}

// --- FEC ----------------------------------------------------------------------

TEST(Fec, ParityEmittedPerGroup) {
  XorFecEncoderFilter encoder("fec-e", 4);
  std::size_t outputs = 0;
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    outputs += encoder.process_all(make_packet(seq, {1, 2, 3})).size();
  }
  EXPECT_EQ(outputs, 10U);  // 8 data + 2 parity
  EXPECT_EQ(encoder.parity_emitted(), 2U);
}

TEST(Fec, LosslessPathDeliversDataUnchanged) {
  XorFecEncoderFilter encoder("fec-e", 4);
  XorFecDecoderFilter decoder("fec-d");
  std::vector<Packet> delivered;
  for (std::uint64_t seq = 0; seq < 12; ++seq) {
    for (Packet& wire : encoder.process_all(make_packet(seq, runs_payload(50)))) {
      for (Packet& out : decoder.process_all(std::move(wire))) {
        delivered.push_back(std::move(out));
      }
    }
  }
  ASSERT_EQ(delivered.size(), 12U);  // parity absorbed
  for (std::uint64_t seq = 0; seq < 12; ++seq) {
    EXPECT_EQ(delivered[seq].sequence, seq);
    EXPECT_TRUE(delivered[seq].intact());
  }
  EXPECT_EQ(decoder.recovered(), 0U);
}

TEST(Fec, RecoversSingleLossPerGroup) {
  XorFecEncoderFilter encoder("fec-e", 4);
  XorFecDecoderFilter decoder("fec-d");
  std::vector<Packet> delivered;
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    Payload payload(40 + seq * 3);  // distinct lengths exercise length XOR
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(seq * 31 + i);
    }
    for (Packet& wire : encoder.process_all(make_packet(seq, std::move(payload)))) {
      if (wire.sequence == 2 && !wire.encoding_stack.empty() &&
          wire.encoding_stack.back().starts_with("fec:")) {
        continue;  // drop data packet 2 on the wire
      }
      for (Packet& out : decoder.process_all(std::move(wire))) {
        delivered.push_back(std::move(out));
      }
    }
  }
  ASSERT_EQ(delivered.size(), 4U);
  EXPECT_EQ(decoder.recovered(), 1U);
  // The reconstructed packet is bit-identical: intact checksum, right seq.
  bool found = false;
  for (const Packet& packet : delivered) {
    if (packet.sequence == 2) {
      EXPECT_TRUE(packet.intact());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fec, CannotRecoverTwoLossesPerGroup) {
  XorFecEncoderFilter encoder("fec-e", 4);
  XorFecDecoderFilter decoder("fec-d");
  std::size_t delivered = 0;
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    for (Packet& wire : encoder.process_all(make_packet(seq, {9, 9, 9}))) {
      if (wire.sequence == 1 || wire.sequence == 2) {
        if (!wire.encoding_stack.empty() && wire.encoding_stack.back().starts_with("fec:")) {
          continue;  // drop two data packets
        }
      }
      delivered += decoder.process_all(std::move(wire)).size();
    }
  }
  EXPECT_EQ(delivered, 2U);
  EXPECT_EQ(decoder.recovered(), 0U);
}

TEST(Fec, ParityLossIsHarmlessWhenDataComplete) {
  XorFecEncoderFilter encoder("fec-e", 3);
  XorFecDecoderFilter decoder("fec-d");
  std::size_t delivered = 0;
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    for (Packet& wire : encoder.process_all(make_packet(seq, {5}))) {
      if (!wire.encoding_stack.empty() &&
          wire.encoding_stack.back().starts_with("fec-parity:")) {
        continue;  // all parity lost
      }
      delivered += decoder.process_all(std::move(wire)).size();
    }
  }
  EXPECT_EQ(delivered, 6U);
}

TEST(Fec, DecoderBypassesUntaggedTraffic) {
  XorFecDecoderFilter decoder("fec-d");
  const auto out = decoder.process_all(make_packet(0, {1, 2}));
  ASSERT_EQ(out.size(), 1U);
  EXPECT_TRUE(out[0].intact());
  EXPECT_EQ(decoder.stats().bypassed, 1U);
}

TEST(Fec, ComposesUnderEncryption) {
  // Sender [FEC, E1]; receiver [D1, FEC-d]. Drop one encrypted data packet;
  // the decoder reconstructs the plaintext after decryption.
  sim::Simulator sim;
  FilterChain sender(sim, "sender");
  FilterChain receiver(sim, "receiver");
  sender.append_filter(std::make_shared<XorFecEncoderFilter>("fec-e", 4));
  sender.append_filter(crypto::make_encoder_e1());
  receiver.append_filter(crypto::make_decoder("D1", true, false));
  auto fec_d = std::make_shared<XorFecDecoderFilter>("fec-d");
  receiver.append_filter(fec_d);

  std::vector<Packet> played;
  std::uint64_t wire_count = 0;
  sender.set_output([&](Packet wire) {
    ++wire_count;
    if (wire_count == 2) return;  // lose the second wire packet
    receiver.submit(std::move(wire));
  });
  receiver.set_output([&](Packet out) { played.push_back(std::move(out)); });

  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    sender.submit(make_packet(seq, runs_payload(64)));
  }
  sim.run();
  ASSERT_EQ(played.size(), 4U);
  EXPECT_EQ(fec_d->recovered(), 1U);
  for (const Packet& packet : played) EXPECT_TRUE(packet.intact());
}

TEST(Fec, StateBoundedUnderSustainedLoss) {
  XorFecEncoderFilter encoder("fec-e", 4);
  XorFecDecoderFilter decoder("fec-d");
  util::Rng rng(77);
  for (std::uint64_t seq = 0; seq < 4000; ++seq) {
    for (Packet& wire : encoder.process_all(make_packet(seq, {1}))) {
      if (rng.next_bool(0.3)) continue;  // heavy loss, many broken groups
      decoder.process_all(std::move(wire));
    }
  }
  const auto snapshot = decoder.refract();
  EXPECT_LE(std::stoul(snapshot.at("open_groups")), 64U);
}

}  // namespace
}  // namespace sa::components
