// The fleet campaign library: region sharding, aggregation, cross-thread
// determinism of the report, and the ThreadedRuntime group-commit storm.
#include "core/fleet.hpp"

#include <gtest/gtest.h>

namespace sa::core {
namespace {

TEST(Fleet, ShardsClustersIntoRegions) {
  FleetSpec spec;
  spec.clusters = 40;  // 32 + 8 under the 64-bit Configuration cap
  const FleetReport report = run_fleet(spec);
  EXPECT_TRUE(report.success);
  ASSERT_EQ(report.regions.size(), 2U);
  EXPECT_EQ(report.regions[0].clusters, 32U);
  EXPECT_EQ(report.regions[1].clusters, 8U);
  EXPECT_EQ(report.regions[0].shards, 32U);
  EXPECT_EQ(report.epochs, 2U);  // one root epoch per region
  EXPECT_EQ(report.orphaned, 0U);
  EXPECT_GT(report.blocked_us_per_process, 0.0);
  EXPECT_GT(report.virtual_time, 0);
  // Each region's digest differs (different seeds, different clusters).
  EXPECT_NE(report.regions[0].digest, report.regions[1].digest);
}

TEST(Fleet, TreeShapeFollowsTheSpec) {
  FleetSpec spec;
  spec.clusters = 32;
  spec.lanes_per_leaf = 4;
  spec.fanout = 4;
  const FleetReport report = run_fleet(spec);
  ASSERT_EQ(report.regions.size(), 1U);
  // 32 lanes -> 8 leaves -> 2 interior -> 1 root.
  EXPECT_EQ(report.regions[0].lanes, 32U);
  EXPECT_EQ(report.regions[0].coordinators, 11U);
  EXPECT_EQ(report.depth, 3U);
}

TEST(Fleet, ReportIsIdenticalForAnyThreadCount) {
  FleetSpec spec;
  spec.clusters = 100;
  spec.threads = 1;
  const FleetReport serial = run_fleet(spec);
  spec.threads = 4;
  const FleetReport parallel = run_fleet(spec);
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(describe(serial), describe(parallel));
  ASSERT_EQ(serial.regions.size(), parallel.regions.size());
  for (std::size_t r = 0; r < serial.regions.size(); ++r) {
    EXPECT_EQ(serial.regions[r].digest, parallel.regions[r].digest);
    EXPECT_EQ(serial.regions[r].virtual_time, parallel.regions[r].virtual_time);
  }
}

TEST(Fleet, BlockedTimePerProcessStaysFlatWithScale) {
  FleetSpec small;
  small.clusters = 8;
  FleetSpec large;
  large.clusters = 256;
  large.threads = 4;
  const FleetReport a = run_fleet(small);
  const FleetReport b = run_fleet(large);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  // The §7 claim at fleet scale: per-process blocked time is independent of
  // fleet size (regions and lanes adapt concurrently). Allow 10%.
  EXPECT_NEAR(b.blocked_us_per_process, a.blocked_us_per_process,
              0.10 * a.blocked_us_per_process);
}

TEST(Fleet, ZeroClustersYieldsEmptySuccess) {
  FleetSpec spec;
  spec.clusters = 0;
  const FleetReport report = run_fleet(spec);
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(report.regions.empty());
  EXPECT_EQ(report.epochs, 0U);
}

TEST(Fleet, ThreadedStormCompletesEveryTicket) {
  ThreadedCampaignSpec spec;
  spec.regions = 4;
  spec.clusters_per_region = 4;
  spec.submitters_per_region = 4;  // 16 submitter threads
  spec.runtime_workers = 2;
  const ThreadedCampaignReport report = run_threaded_campaign(spec);
  for (const std::string& failure : report.failures) ADD_FAILURE() << failure;
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.threads, 16U);
  EXPECT_EQ(report.tickets, 16U);
  EXPECT_GE(report.epochs, 4U);  // at least one epoch per region
}

}  // namespace
}  // namespace sa::core
