#include <gtest/gtest.h>

#include "actions/planner.hpp"
#include "config/enumerate.hpp"
#include "core/paper_scenario.hpp"

namespace sa::core {
namespace {

TEST(PaperScenario, ComponentLayoutMatchesFigure3) {
  const PaperScenario scenario = make_paper_scenario();
  EXPECT_EQ(scenario.registry->size(), 7U);
  EXPECT_EQ(scenario.registry->process(scenario.registry->require("E1")), kServerProcess);
  EXPECT_EQ(scenario.registry->process(scenario.registry->require("E2")), kServerProcess);
  EXPECT_EQ(scenario.registry->process(scenario.registry->require("D1")), kHandheldProcess);
  EXPECT_EQ(scenario.registry->process(scenario.registry->require("D2")), kHandheldProcess);
  EXPECT_EQ(scenario.registry->process(scenario.registry->require("D3")), kHandheldProcess);
  EXPECT_EQ(scenario.registry->process(scenario.registry->require("D4")), kLaptopProcess);
  EXPECT_EQ(scenario.registry->process(scenario.registry->require("D5")), kLaptopProcess);
}

TEST(PaperScenario, SourceAndTargetBitVectors) {
  const PaperScenario scenario = make_paper_scenario();
  EXPECT_EQ(scenario.source.describe(*scenario.registry), "D4,D1,E1");
  EXPECT_EQ(scenario.target.describe(*scenario.registry), "D5,D3,E2");
  EXPECT_EQ(scenario.source.to_bit_string(7), "0100101");
  EXPECT_EQ(scenario.target.to_bit_string(7), "1010010");
}

TEST(PaperScenario, Table1SafeConfigurationSet) {
  const PaperScenario scenario = make_paper_scenario();
  const auto safe = config::enumerate_safe_exhaustive(*scenario.invariants);
  ASSERT_EQ(safe.size(), 8U);
  std::set<std::string> bit_strings;
  for (const auto& config : safe) bit_strings.insert(config.to_bit_string(7));
  EXPECT_EQ(bit_strings, (std::set<std::string>{"0100101", "1100101", "1101001", "1101010",
                                                "1110010", "0101001", "1001010", "1010010"}));
}

TEST(PaperScenario, Table2ActionRoster) {
  const PaperScenario scenario = make_paper_scenario();
  ASSERT_EQ(scenario.actions->size(), 17U);
  // Spot-check entries across the cost tiers.
  const auto check = [&](const char* name, const char* operation, double cost) {
    const auto id = scenario.actions->find(name);
    ASSERT_TRUE(id.has_value()) << name;
    const auto& action = scenario.actions->action(*id);
    EXPECT_EQ(action.operation_text(*scenario.registry), operation) << name;
    EXPECT_DOUBLE_EQ(action.cost, cost) << name;
  };
  check("A1", "E1 -> E2", 10);
  check("A2", "D1 -> D2", 10);
  check("A5", "D4 -> D5", 10);
  check("A6", "D1,E1 -> D2,E2", 100);
  check("A10", "D4,D1 -> D5,D2", 50);
  check("A14", "D4,D1,E1 -> D5,D3,E2", 150);
  check("A16", "-D4", 10);
  check("A17", "+D5", 10);
}

TEST(PaperScenario, Figure4SagAndMap) {
  const PaperScenario scenario = make_paper_scenario();
  const auto safe = config::enumerate_safe_exhaustive(*scenario.invariants);
  const actions::SafeAdaptationGraph sag(*scenario.actions, safe);
  EXPECT_EQ(sag.node_count(), 8U);

  const actions::PathPlanner planner(sag);
  const auto plan = planner.minimum_path(scenario.source, scenario.target);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->total_cost, 50.0);
  EXPECT_EQ(plan->action_names(*scenario.actions), "A2, A17, A1, A16, A4");
}

TEST(PaperScenario, FilterFactoryBuildsAllComponents) {
  const auto factory = paper_filter_factory();
  for (const char* name : {"E1", "E2", "D1", "D2", "D3", "D4", "D5"}) {
    const auto filter = factory(name);
    ASSERT_TRUE(filter) << name;
    EXPECT_EQ(filter->name(), name);
  }
  EXPECT_FALSE(factory("E9"));
}

TEST(PaperScenario, FactoryDecodersMatchPaperCompatibilities) {
  const auto factory = paper_filter_factory();
  const auto accepts = [&](const char* name) { return factory(name)->refract().at("accepts"); };
  EXPECT_EQ(accepts("D1"), "des64");
  EXPECT_EQ(accepts("D2"), "des64,des128");
  EXPECT_EQ(accepts("D3"), "des128");
  EXPECT_EQ(accepts("D4"), "des64");
  EXPECT_EQ(accepts("D5"), "des128");
}

}  // namespace
}  // namespace sa::core
