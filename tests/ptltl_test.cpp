#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "spec/ptltl.hpp"

namespace sa::spec {
namespace {

/// Runs `formula` over a trace of atom sets and returns the truth at each step.
std::vector<bool> run(const FormulaPtr& formula,
                      const std::vector<std::map<std::string, bool>>& trace) {
  formula->reset();
  std::vector<bool> out;
  for (const auto& step : trace) {
    out.push_back(formula->step([&step](const std::string& name) {
      const auto it = step.find(name);
      return it != step.end() && it->second;
    }));
  }
  return out;
}

using Trace = std::vector<std::map<std::string, bool>>;

TEST(Ptltl, AtomTracksValuation) {
  const auto f = parse_ptltl("p");
  EXPECT_EQ(run(f, Trace{{{"p", true}}, {{"p", false}}, {{"p", true}}}),
            (std::vector<bool>{true, false, true}));
}

TEST(Ptltl, ConstantsAndNegation) {
  EXPECT_EQ(run(parse_ptltl("true"), Trace{{}, {}}), (std::vector<bool>{true, true}));
  EXPECT_EQ(run(parse_ptltl("false"), Trace{{}}), (std::vector<bool>{false}));
  EXPECT_EQ(run(parse_ptltl("!p"), Trace{{{"p", true}}, {}}), (std::vector<bool>{false, true}));
}

TEST(Ptltl, YesterdayShiftsByOne) {
  const auto f = parse_ptltl("Y p");
  EXPECT_EQ(run(f, Trace{{{"p", true}}, {{"p", false}}, {{"p", true}}, {}}),
            (std::vector<bool>{false, true, false, true}));
}

TEST(Ptltl, OnceLatches) {
  const auto f = parse_ptltl("O p");
  EXPECT_EQ(run(f, Trace{{}, {{"p", true}}, {}, {}}),
            (std::vector<bool>{false, true, true, true}));
}

TEST(Ptltl, HistoricallyFailsForever) {
  const auto f = parse_ptltl("H p");
  EXPECT_EQ(run(f, Trace{{{"p", true}}, {{"p", true}}, {}, {{"p", true}}}),
            (std::vector<bool>{true, true, false, false}));
}

TEST(Ptltl, SinceSemantics) {
  // p S q: q happened, and p has held ever since (inclusive of q's step... at
  // the step of q itself it holds regardless of p).
  const auto f = parse_ptltl("p S q");
  EXPECT_EQ(run(f, Trace{
                     {{"q", true}},              // q now -> true
                     {{"p", true}},              // p since q -> true
                     {{"p", true}},              // still -> true
                     {},                         // p broke -> false
                     {{"p", true}},              // no new q -> false
                 }),
            (std::vector<bool>{true, true, true, false, false}));
}

TEST(Ptltl, SinceReactivatesOnNewQ) {
  const auto f = parse_ptltl("p S q");
  EXPECT_EQ(run(f, Trace{{}, {{"q", true}}, {}, {{"q", true}, {"p", true}}}),
            (std::vector<bool>{false, true, false, true}));
}

TEST(Ptltl, RequestResponseObligation) {
  // "every request has been answered": !(O req & !(O resp)) is weaker than
  // needed; the canonical pattern is !req S resp | H !req — here we check the
  // practical encoding !(O(req) & !O(resp)) used by the monitor docs.
  const auto f = parse_ptltl("!(O req & !O resp)");
  EXPECT_EQ(run(f, Trace{{}, {{"req", true}}, {}, {{"resp", true}}, {}}),
            (std::vector<bool>{true, false, false, true, true}));
}

TEST(Ptltl, OperatorPrecedence) {
  // "Y p & q" parses as "(Y p) & q", not "Y (p & q)".
  const auto f = parse_ptltl("Y p & q");
  EXPECT_EQ(run(f, Trace{{{"p", true}, {"q", true}}, {{"q", true}}}),
            (std::vector<bool>{false, true}));
}

TEST(Ptltl, SinceBindsTighterThanAnd) {
  // "a & b S c" = "a & (b S c)".
  const auto f = parse_ptltl("a & b S c");
  EXPECT_EQ(f->to_string(), "(a & (b S c))");
}

TEST(Ptltl, ImplicationIsRightAssociative) {
  const auto f = parse_ptltl("a -> b -> c");
  EXPECT_EQ(f->to_string(), "(a -> (b -> c))");
}

TEST(Ptltl, KeywordsRequireWordBoundary) {
  // Identifiers starting with operator letters are atoms, not operators.
  const auto f = parse_ptltl("Once_done & Y Happened");
  const auto atoms = f->atoms();
  EXPECT_EQ(atoms, (std::vector<std::string>{"Happened", "Once_done"}));
}

TEST(Ptltl, NestedTemporalOperators) {
  // O(H p): "there was a point up to which p had always held" — true from the
  // first step where p held (H p true at step 0 iff p at step 0).
  const auto f = parse_ptltl("O(H p)");
  EXPECT_EQ(run(f, Trace{{{"p", true}}, {}, {}}), (std::vector<bool>{true, true, true}));
  f->reset();
  EXPECT_EQ(run(f, Trace{{}, {{"p", true}}}), (std::vector<bool>{false, false}));
}

TEST(Ptltl, ResetClearsAllState) {
  const auto f = parse_ptltl("O p");
  run(f, Trace{{{"p", true}}});
  EXPECT_TRUE(f->current());
  f->reset();
  EXPECT_FALSE(f->current());
  EXPECT_EQ(run(f, Trace{{}}), (std::vector<bool>{false}));
}

TEST(Ptltl, ToStringRoundTrips) {
  for (const char* text :
       {"p", "!(p)", "(p & q)", "(p | q)", "(p -> q)", "Y(p)", "O(p)", "H(p)", "(p S q)",
        "((p S q) & H(r))"}) {
    const auto once_parsed = parse_ptltl(text);
    const auto reparsed = parse_ptltl(once_parsed->to_string());
    EXPECT_EQ(once_parsed->to_string(), reparsed->to_string()) << text;
  }
}

TEST(Ptltl, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_ptltl(""), std::invalid_argument);
  EXPECT_THROW(parse_ptltl("p &"), std::invalid_argument);
  EXPECT_THROW(parse_ptltl("(p"), std::invalid_argument);
  EXPECT_THROW(parse_ptltl("p q"), std::invalid_argument);
  EXPECT_THROW(parse_ptltl("S p"), std::invalid_argument);
}

TEST(Ptltl, TemporalSubformulasSeeEveryStepDespiteShortCircuitableConnectives) {
  // "p | O q": even when p is true (deciding the |), O q must keep observing.
  const auto f = parse_ptltl("p | O q");
  EXPECT_EQ(run(f, Trace{{{"p", true}, {"q", true}}, {}, {}}),
            (std::vector<bool>{true, true, true}));
}

// Property: recursive Since law  p S q  <=>  q | (p & Y(p S q)).
TEST(PtltlProperty, SinceExpansionLaw) {
  const auto direct = parse_ptltl("p S q");
  const auto expanded = parse_ptltl("q | (p & Y(p S q))");
  // Exhaust all 4-step traces over {p, q}.
  for (int code = 0; code < 256; ++code) {
    Trace trace;
    for (int step = 0; step < 4; ++step) {
      const int bits = (code >> (2 * step)) & 3;
      trace.push_back({{"p", (bits & 1) != 0}, {"q", (bits & 2) != 0}});
    }
    EXPECT_EQ(run(direct, trace), run(expanded, trace)) << "trace code " << code;
  }
}

// Property: H p == !O(!p).
TEST(PtltlProperty, HistoricallyOnceDuality) {
  const auto h = parse_ptltl("H p");
  const auto dual = parse_ptltl("!O(!p)");
  for (int code = 0; code < 64; ++code) {
    Trace trace;
    for (int step = 0; step < 6; ++step) {
      trace.push_back({{"p", ((code >> step) & 1) != 0}});
    }
    EXPECT_EQ(run(h, trace), run(dual, trace)) << "trace code " << code;
  }
}

}  // namespace
}  // namespace sa::spec
