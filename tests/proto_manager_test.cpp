#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "proto/manager.hpp"
#include "sim/network.hpp"

namespace sa::proto {
namespace {

using core::kHandheldProcess;
using core::kLaptopProcess;
using core::kServerProcess;

/// Scripted process with counters (same shape as in proto_agent_test).
struct ScriptedProcess : AdaptableProcess {
  int prepares = 0, applies = 0, undos = 0, resumes = 0, aborts = 0;
  int fail_next_applies = 0;  ///< injection: next N apply() calls report failure
  std::vector<std::string> applied_commands;

  bool prepare(const LocalCommand&) override {
    ++prepares;
    return true;
  }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override { ++aborts; }
  bool apply(const LocalCommand& command) override {
    if (fail_next_applies > 0) {
      --fail_next_applies;
      return false;
    }
    ++applies;
    applied_commands.push_back(command.describe());
    return true;
  }
  bool undo(const LocalCommand&) override {
    ++undos;
    return true;
  }
  void resume() override { ++resumes; }
};

struct ManagerFixture : ::testing::Test {
  core::SystemConfig sys_config;
  std::unique_ptr<core::SafeAdaptationSystem> system;
  ScriptedProcess server, handheld, laptop;

  void build(std::function<void(core::SystemConfig&)> tweak = nullptr) {
    if (tweak) tweak(sys_config);
    system = std::make_unique<core::SafeAdaptationSystem>(sys_config);
    core::configure_paper_system(*system);
    system->attach_process(kServerProcess, server, /*stage=*/0);
    system->attach_process(kHandheldProcess, handheld, /*stage=*/1);
    system->attach_process(kLaptopProcess, laptop, /*stage=*/1);
    system->finalize();
    system->set_current_configuration(core::paper_source(system->registry()));
  }

  config::Configuration target() const { return core::paper_target(system->registry()); }
  config::Configuration source() const { return core::paper_source(system->registry()); }

  /// Runs the simulator until `predicate` holds or the event budget drains.
  template <typename Predicate>
  bool run_until(Predicate predicate, std::size_t max_events = 500'000) {
    std::size_t events = 0;
    while (!predicate() && events < max_events && system->simulator().step()) ++events;
    return predicate();
  }
};

TEST_F(ManagerFixture, HappyPathExecutesMapAndCommits) {
  build();
  const auto result = system->adapt_and_wait(target());

  EXPECT_EQ(result.outcome, AdaptationOutcome::Success);
  EXPECT_EQ(result.final_config, target());
  EXPECT_EQ(result.steps_committed, 5U);
  EXPECT_EQ(result.step_failures, 0U);
  EXPECT_EQ(result.plans_tried, 1U);
  EXPECT_EQ(system->current_configuration(), target());

  // Step log records the paper's MAP in order, all committed.
  std::vector<std::string> actions;
  for (const StepRecord& record : system->manager().step_log()) {
    EXPECT_TRUE(record.committed);
    EXPECT_FALSE(record.rolled_back);
    actions.push_back(record.action_name);
  }
  EXPECT_EQ(actions, (std::vector<std::string>{"A2", "A17", "A1", "A16", "A4"}));

  // Per-process involvement matches the MAP: handheld does A2 and A4, laptop
  // A17 and A16, the server A1.
  EXPECT_EQ(handheld.applies, 2);
  EXPECT_EQ(laptop.applies, 2);
  EXPECT_EQ(server.applies, 1);
  EXPECT_EQ(server.applied_commands, (std::vector<std::string>{"-E1 +E2"}));
  EXPECT_EQ(handheld.applied_commands, (std::vector<std::string>{"-D1 +D2", "-D2 +D3"}));
  EXPECT_EQ(laptop.applied_commands, (std::vector<std::string>{"+D5", "-D4"}));

  // Every process resumed as many times as it adapted; nothing undone.
  EXPECT_EQ(handheld.resumes, 2);
  EXPECT_EQ(server.undos + handheld.undos + laptop.undos, 0);
}

TEST_F(ManagerFixture, AlreadyAtTargetSucceedsWithoutSteps) {
  build();
  const auto result = system->adapt_and_wait(source());
  EXPECT_EQ(result.outcome, AdaptationOutcome::Success);
  EXPECT_EQ(result.steps_committed, 0U);
  EXPECT_EQ(server.applies + handheld.applies + laptop.applies, 0);
}

TEST_F(ManagerFixture, UnsafeTargetYieldsNoPath) {
  build();
  const auto unsafe = config::Configuration::of(system->registry(), {"D1", "D2"});
  const auto result = system->adapt_and_wait(unsafe);
  EXPECT_EQ(result.outcome, AdaptationOutcome::NoPathFound);
  EXPECT_EQ(system->current_configuration(), source());
}

TEST_F(ManagerFixture, SafeConfigurationsAndSagExposed) {
  build();
  EXPECT_EQ(system->manager().safe_configurations().size(), 8U);
  EXPECT_EQ(system->manager().sag().node_count(), 8U);
}

TEST_F(ManagerFixture, RequestWhileBusyRejected) {
  build();
  system->request_adaptation(target(), [](const AdaptationResult&) {});
  EXPECT_TRUE(system->manager().busy());
  EXPECT_THROW(system->request_adaptation(target(), nullptr), std::logic_error);
}

TEST_F(ManagerFixture, LossyControlChannelsRecoveredByRetransmission) {
  build([](core::SystemConfig& cfg) {
    cfg.seed = 11;
    cfg.control_channel.loss_probability = 0.15;
    cfg.manager.message_retries = 6;
  });
  const auto result = system->adapt_and_wait(target());
  EXPECT_EQ(result.outcome, AdaptationOutcome::Success);
  EXPECT_EQ(result.final_config, target());
  // With 15% loss across 5 steps x 3 rounds, some retransmission happened.
  EXPECT_GT(result.message_retries, 0U);
}

TEST_F(ManagerFixture, DuplicatedControlMessagesAreHarmless) {
  build([](core::SystemConfig& cfg) {
    cfg.seed = 5;
    cfg.control_channel.duplicate_probability = 0.5;
  });
  const auto result = system->adapt_and_wait(target());
  EXPECT_EQ(result.outcome, AdaptationOutcome::Success);
  EXPECT_EQ(result.final_config, target());
  EXPECT_EQ(result.steps_committed, 5U);
  // Each in-action executed exactly once despite duplicate resets.
  EXPECT_EQ(handheld.applies, 2);
  EXPECT_EQ(laptop.applies, 2);
  EXPECT_EQ(server.applies, 1);
  // Agents observed and absorbed duplicates.
  const auto duplicates = system->agent(kHandheldProcess).stats().duplicate_messages +
                          system->agent(kLaptopProcess).stats().duplicate_messages +
                          system->agent(kServerProcess).stats().duplicate_messages;
  EXPECT_GT(duplicates, 0U);
}

TEST_F(ManagerFixture, LossAndDuplicationTogether) {
  build([](core::SystemConfig& cfg) {
    cfg.seed = 21;
    cfg.control_channel.loss_probability = 0.1;
    cfg.control_channel.duplicate_probability = 0.3;
    cfg.manager.message_retries = 6;
  });
  const auto result = system->adapt_and_wait(target());
  EXPECT_EQ(result.outcome, AdaptationOutcome::Success);
  EXPECT_EQ(handheld.applies, 2);
  EXPECT_EQ(handheld.undos, 0);
}

TEST_F(ManagerFixture, FailToResetParksSystemAtSafeConfiguration) {
  build();
  system->agent(kHandheldProcess).set_fail_to_reset(true);
  const auto result = system->adapt_and_wait(target());
  // Every path from source to target eventually swaps the hand-held decoder,
  // so the strategy chain is exhausted. Depending on which tied-cost
  // alternative committed intermediate steps, the manager either returns to
  // the source or parks at a safe intermediate awaiting user intervention —
  // never at the target, and never in an unsafe configuration.
  EXPECT_TRUE(result.outcome == AdaptationOutcome::RolledBackToSource ||
              result.outcome == AdaptationOutcome::UserInterventionRequired)
      << to_string(result.outcome);
  EXPECT_NE(result.final_config, target());
  EXPECT_TRUE(system->invariants().satisfied(result.final_config));
  EXPECT_GT(result.step_failures, 0U);
  EXPECT_EQ(handheld.applies, 0);  // the failing process never adapted
  // Every logged step has a definite fate: committed or rolled back.
  for (const StepRecord& record : system->manager().step_log()) {
    EXPECT_TRUE(record.committed || record.rolled_back);
  }
}

TEST_F(ManagerFixture, FailToResetOnUninvolvedProcessIsHarmless) {
  build();
  system->agent(kHandheldProcess).set_fail_to_reset(true);
  // Target {D5,D4,D1,E1}: only A17 (+D5 on the laptop) is needed.
  const auto insert_only =
      config::Configuration::from_bit_string("1100101", system->registry().size());
  const auto result = system->adapt_and_wait(insert_only);
  EXPECT_EQ(result.outcome, AdaptationOutcome::Success);
  EXPECT_EQ(result.steps_committed, 1U);
  EXPECT_EQ(laptop.applies, 1);
  EXPECT_EQ(handheld.applies, 0);
}

TEST_F(ManagerFixture, RetryAfterTransientFailToResetSucceeds) {
  build();
  system->agent(kHandheldProcess).set_fail_to_reset(true);

  std::optional<AdaptationResult> result;
  system->request_adaptation(target(),
                             [&result](const AdaptationResult& r) { result = r; });
  // Heal the agent as soon as the first step has been rolled back; the
  // manager's strategy (1) — retry the same step once — then succeeds.
  ASSERT_TRUE(run_until([&] {
    return !system->manager().step_log().empty() &&
           system->manager().step_log().front().rolled_back;
  }));
  system->agent(kHandheldProcess).set_fail_to_reset(false);
  ASSERT_TRUE(run_until([&] { return result.has_value(); }));

  EXPECT_EQ(result->outcome, AdaptationOutcome::Success);
  EXPECT_EQ(result->final_config, target());
  EXPECT_EQ(result->step_failures, 1U);
  EXPECT_EQ(result->plans_tried, 1U);
  EXPECT_EQ(handheld.aborts, 1);  // one aborted reset
}

TEST_F(ManagerFixture, AlternativePathAfterRepeatedStepFailure) {
  build();
  system->agent(kHandheldProcess).set_fail_to_reset(true);

  std::optional<AdaptationResult> result;
  system->request_adaptation(target(),
                             [&result](const AdaptationResult& r) { result = r; });
  // Let the step fail twice (original + retry); heal before the alternative
  // path is attempted. The alternative (e.g. A17 first) also goes through the
  // hand-held later, which now works.
  ASSERT_TRUE(run_until([&] {
    std::size_t rolled_back = 0;
    for (const StepRecord& record : system->manager().step_log()) {
      rolled_back += record.rolled_back;
    }
    return rolled_back >= 2;
  }));
  system->agent(kHandheldProcess).set_fail_to_reset(false);
  ASSERT_TRUE(run_until([&] { return result.has_value(); }));

  EXPECT_EQ(result->outcome, AdaptationOutcome::Success);
  EXPECT_EQ(result->final_config, target());
  EXPECT_GE(result->step_failures, 2U);
  EXPECT_GE(result->plans_tried, 2U);
}

TEST(ManagerDrainFlags, CombinedActionDrainsDownstreamOnly) {
  // A pair action spanning the sender (stage 0) and a receiver (stage 1)
  // must ask only the receiver to drain (the global safe condition); the
  // sender quiesces in packet mode. Sole-stage actions never drain.
  struct DrainRecorder : AdaptableProcess {
    std::optional<bool> drain;
    bool prepare(const LocalCommand&) override { return true; }
    void reach_safe_state(bool drain_requested, std::function<void()> reached) override {
      drain = drain_requested;
      reached();
    }
    void abort_safe_state() override {}
    bool apply(const LocalCommand&) override { return true; }
    bool undo(const LocalCommand&) override { return true; }
    void resume() override {}
  };

  core::SystemConfig config;
  core::SafeAdaptationSystem system(config);
  core::configure_paper_system(system, core::PaperActionSet::CombinedOnly);
  DrainRecorder server, handheld, laptop;
  system.attach_process(core::kServerProcess, server, 0);
  system.attach_process(core::kHandheldProcess, handheld, 1);
  system.attach_process(core::kLaptopProcess, laptop, 1);
  system.finalize();
  system.set_current_configuration(core::paper_source(system.registry()));

  // Target {D5,D2,E2}: with combined actions only the MAP includes a
  // sender+receiver pair action (A6 tier).
  const auto target = config::Configuration::of(system.registry(), {"D5", "D2", "E2"});
  const auto result = system.adapt_and_wait(target);
  ASSERT_EQ(result.outcome, AdaptationOutcome::Success);
  ASSERT_TRUE(server.drain.has_value());
  ASSERT_TRUE(handheld.drain.has_value());
  EXPECT_FALSE(*server.drain);   // upstream: packet-mode quiescence
  EXPECT_TRUE(*handheld.drain);  // downstream of a multi-stage action: drain
}

// After the manager decides to resume, the adaptation must run to completion
// (§4.4) — use a dedicated two-process pair action so the resume message
// itself can be lost (sole-participant steps resume proactively and cannot
// stall this way).
TEST(ManagerRunToCompletion, PartitionBeforeResumeDeliveryStallsButCommits) {
  core::SystemConfig cfg;
  cfg.manager.resume_timeout = sim::ms(20);
  cfg.manager.run_to_completion_retries = 3;
  core::SafeAdaptationSystem system(cfg);
  system.registry().add("X0", 0);
  system.registry().add("X1", 1);
  system.registry().add("Y0", 0);
  system.registry().add("Y1", 1);
  system.add_invariant("pairing", "one(X0, Y0) & one(X1, Y1) & (X0 -> X1) & (Y0 -> Y1)");
  system.add_action("SWAP", {"X0", "X1"}, {"Y0", "Y1"}, 10, "swap both halves");

  ScriptedProcess a, b;
  system.attach_process(0, a, /*stage=*/0);
  system.attach_process(1, b, /*stage=*/1);
  system.finalize();

  const auto source = config::Configuration::of(system.registry(), {"X0", "X1"});
  const auto target = config::Configuration::of(system.registry(), {"Y0", "Y1"});
  system.set_current_configuration(source);

  std::optional<AdaptationResult> result;
  system.request_adaptation(target, [&result](const AdaptationResult& r) { result = r; });

  // Partition process 1 the moment its agent reaches the adapted state: its
  // adapt done is already in flight (partitions only affect future sends), so
  // the manager will enter resuming — but the resume message is lost forever.
  std::size_t events = 0;
  while (system.agent(1).state() != AgentState::Adapted && events < 100000 &&
         system.simulator().step()) {
    ++events;
  }
  ASSERT_EQ(system.agent(1).state(), AgentState::Adapted);
  system.network().partition_pair(system.manager_node(), system.agent_node(1), true);

  while (!result && events < 200000 && system.simulator().step()) ++events;
  ASSERT_TRUE(result.has_value());

  EXPECT_EQ(result->outcome, AdaptationOutcome::StalledAfterResume);
  EXPECT_EQ(result->steps_committed, 1U);
  EXPECT_EQ(result->final_config, target);
  // Both in-actions committed; nothing was undone (no rollback after resume).
  EXPECT_EQ(a.applies, 1);
  EXPECT_EQ(b.applies, 1);
  EXPECT_EQ(a.undos + b.undos, 0);
  // Process 0 resumed; process 1 is still blocked awaiting the operator.
  EXPECT_EQ(a.resumes, 1);
  EXPECT_EQ(b.resumes, 0);
}

TEST_F(ManagerFixture, TotalPartitionRequiresUserIntervention) {
  build();
  // The hand-held is unreachable from the very start: resets are lost, the
  // reset timeout fires, rollback messages are lost too -> user intervention.
  system->network().partition_pair(system->manager_node(),
                                   system->agent_node(kHandheldProcess), true);
  const auto result = system->adapt_and_wait(target());
  EXPECT_EQ(result.outcome, AdaptationOutcome::UserInterventionRequired);
  // No structural change was ever applied anywhere.
  EXPECT_EQ(server.applies + handheld.applies + laptop.applies, 0);
  EXPECT_EQ(system->current_configuration(), source());
}

TEST_F(ManagerFixture, BlockedTimeAccumulatesAcrossSteps) {
  build();
  const auto result = system->adapt_and_wait(target());
  ASSERT_EQ(result.outcome, AdaptationOutcome::Success);
  EXPECT_GT(system->manager().total_blocked_reported(), 0);
}

TEST_F(ManagerFixture, TransientInActionFailureRecoveredByStepRetry) {
  // An in-action that fails leaves the agent parked in its safe state; the
  // manager's adapt timeout aborts the step, and the §4.4 retry succeeds.
  build();
  handheld.fail_next_applies = 1;
  const auto result = system->adapt_and_wait(target());
  EXPECT_EQ(result.outcome, AdaptationOutcome::Success);
  EXPECT_EQ(result.final_config, target());
  EXPECT_EQ(result.step_failures, 1U);
  EXPECT_EQ(handheld.applies, 2);  // A2 (after one failed try) and A4
  EXPECT_EQ(handheld.undos, 0);    // nothing to undo: the apply never mutated
  EXPECT_GE(handheld.aborts, 1);   // the failed attempt was aborted
}

TEST_F(ManagerFixture, EnqueuedRequestsRunInOrder) {
  build();
  std::vector<std::string> completions;
  // First hop: source -> {D4,D2,E1} (A2); second continues to the target.
  const auto midpoint = config::Configuration::of(system->registry(), {"D4", "D2", "E1"});
  system->manager().enqueue_adaptation(midpoint, [&](const AdaptationResult& r) {
    completions.push_back("first:" + std::string(to_string(r.outcome)));
  });
  system->manager().enqueue_adaptation(target(), [&](const AdaptationResult& r) {
    completions.push_back("second:" + std::string(to_string(r.outcome)));
  });
  EXPECT_EQ(system->manager().queued_requests(), 1U);
  system->simulator().run(500'000);
  EXPECT_EQ(completions,
            (std::vector<std::string>{"first:success", "second:success"}));
  EXPECT_EQ(system->current_configuration(), target());
  EXPECT_EQ(system->manager().queued_requests(), 0U);
}

TEST_F(ManagerFixture, EnqueueWhileIdleStartsImmediately) {
  build();
  bool done = false;
  system->manager().enqueue_adaptation(target(), [&](const AdaptationResult&) { done = true; });
  EXPECT_TRUE(system->manager().busy());
  EXPECT_EQ(system->manager().queued_requests(), 0U);
  system->simulator().run(500'000);
  EXPECT_TRUE(done);
}

TEST_F(ManagerFixture, SequentialRequestsReuseManager) {
  build();
  auto first = system->adapt_and_wait(target());
  ASSERT_EQ(first.outcome, AdaptationOutcome::Success);
  // And back: target -> source is reachable? The action table is asymmetric
  // (no D3 -> D1 action), so expect an honest NoPathFound.
  const auto back = system->adapt_and_wait(source());
  EXPECT_EQ(back.outcome, AdaptationOutcome::NoPathFound);
  // A further reachable request still works.
  const auto to_d2 = config::Configuration::of(system->registry(), {"D5", "D2", "E2"});
  // From {D5,D3,E2} no action leads back to D2 either; verify honesty again.
  const auto result = system->adapt_and_wait(to_d2);
  EXPECT_EQ(result.outcome, AdaptationOutcome::NoPathFound);
}

}  // namespace
}  // namespace sa::proto
