#include <gtest/gtest.h>

#include "crypto/des.hpp"
#include "util/rng.hpp"

namespace sa::crypto {
namespace {

// --- block-level known-answer tests ---------------------------------------------

TEST(DesBlock, Fips46KnownAnswer) {
  // The classic worked example (used in countless DES references):
  // key 133457799BBCDFF1, plaintext 0123456789ABCDEF -> 85E813540F0AB405.
  const auto schedule = des_key_schedule(0x133457799BBCDFF1ULL);
  EXPECT_EQ(des_encrypt_block(0x0123456789ABCDEFULL, schedule), 0x85E813540F0AB405ULL);
  EXPECT_EQ(des_decrypt_block(0x85E813540F0AB405ULL, schedule), 0x0123456789ABCDEFULL);
}

TEST(DesBlock, NistVectorAllZeroKey) {
  // With an all-zeros key, encrypting all-zeros gives 8CA64DE9C1B123A7.
  const auto schedule = des_key_schedule(0);
  EXPECT_EQ(des_encrypt_block(0, schedule), 0x8CA64DE9C1B123A7ULL);
}

TEST(DesBlock, RoundTripRandomBlocks) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t block = rng.next_u64();
    const auto schedule = des_key_schedule(key);
    EXPECT_EQ(des_decrypt_block(des_encrypt_block(block, schedule), schedule), block);
  }
}

TEST(DesBlock, WrongKeyDoesNotDecrypt) {
  const auto k1 = des_key_schedule(0x133457799BBCDFF1ULL);
  const auto k2 = des_key_schedule(0x133457799BBCDFF0ULL);  // parity-only change
  const auto k3 = des_key_schedule(0x0123456789ABCDEFULL);
  const std::uint64_t block = 0xDEADBEEFCAFEF00DULL;
  // Parity bits are discarded by PC-1, so k2 == k1 functionally...
  EXPECT_EQ(des_decrypt_block(des_encrypt_block(block, k1), k2), block);
  // ...but a genuinely different key produces garbage.
  EXPECT_NE(des_decrypt_block(des_encrypt_block(block, k1), k3), block);
}

TEST(DesBlock, ComplementationProperty) {
  // DES's famous complementation property: E_{~k}(~p) == ~E_k(p).
  util::Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::uint64_t plain = rng.next_u64();
    const auto schedule = des_key_schedule(key);
    const auto complemented = des_key_schedule(~key);
    EXPECT_EQ(des_encrypt_block(~plain, complemented), ~des_encrypt_block(plain, schedule));
  }
}

TEST(DesBlock, EdeRoundTripAndDistinctFromSingle) {
  util::Rng rng(23);
  const auto k1 = des_key_schedule(rng.next_u64());
  const auto k2 = des_key_schedule(rng.next_u64());
  const std::uint64_t block = rng.next_u64();
  const std::uint64_t cipher = des_ede_encrypt_block(block, k1, k2);
  EXPECT_EQ(des_ede_decrypt_block(cipher, k1, k2), block);
  EXPECT_NE(cipher, des_encrypt_block(block, k1));
}

TEST(DesBlock, EdeWithEqualKeysDegeneratesToSingleDes) {
  // E_k(D_k(E_k(x))) == E_k(x): the standard 3DES backward-compat property.
  const auto k = des_key_schedule(0xA5A5A5A55A5A5A5AULL);
  const std::uint64_t block = 0x0011223344556677ULL;
  EXPECT_EQ(des_ede_encrypt_block(block, k, k), des_encrypt_block(block, k));
}

// --- byte-stream ciphers ----------------------------------------------------------

TEST(Des64Cipher, RoundTripVariousLengths) {
  const Des64Cipher cipher(0x133457799BBCDFF1ULL);
  util::Rng rng(31);
  for (const std::size_t length : {0UL, 1UL, 7UL, 8UL, 9UL, 255UL, 256UL, 1000UL}) {
    Bytes plaintext(length);
    for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next_u64());
    const Bytes ciphertext = cipher.encrypt(plaintext);
    EXPECT_EQ(ciphertext.size() % 8, 0U);
    EXPECT_GT(ciphertext.size(), plaintext.size());  // padding always added
    EXPECT_EQ(cipher.decrypt(ciphertext), plaintext) << "length " << length;
  }
}

TEST(Des64Cipher, CiphertextDiffersFromPlaintext) {
  const Des64Cipher cipher(0x133457799BBCDFF1ULL);
  const Bytes plaintext(64, 0x42);
  EXPECT_NE(cipher.encrypt(plaintext), plaintext);
}

TEST(Des64Cipher, WrongKeyYieldsGarbageNotThrow) {
  const Des64Cipher good(0x133457799BBCDFF1ULL);
  const Des64Cipher bad(0x0123456789ABCDEFULL);
  Bytes plaintext(100);
  for (std::size_t i = 0; i < plaintext.size(); ++i) plaintext[i] = static_cast<std::uint8_t>(i);
  const Bytes decrypted = bad.decrypt(good.encrypt(plaintext));
  EXPECT_NE(decrypted, plaintext);  // corruption, observable by checksums
}

TEST(Des64Cipher, DecryptRejectsUnalignedInput) {
  const Des64Cipher cipher(1);
  EXPECT_THROW(cipher.decrypt(Bytes{1, 2, 3}), std::invalid_argument);
}

TEST(Des128Cipher, RoundTrip) {
  const Des128Cipher cipher(0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL);
  Bytes plaintext(123);
  util::Rng rng(37);
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_EQ(cipher.decrypt(cipher.encrypt(plaintext)), plaintext);
}

TEST(Des128Cipher, KeyOrderMatters) {
  const Des128Cipher a(1, 2);
  const Des128Cipher b(2, 1);
  const Bytes plaintext(64, 0x11);
  EXPECT_NE(a.encrypt(plaintext), b.encrypt(plaintext));
}

TEST(Des128Cipher, NotInterchangeableWithDes64) {
  const Des64Cipher des64(0x133457799BBCDFF1ULL);
  const Des128Cipher des128(0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL);
  Bytes plaintext(80, 0x3C);
  EXPECT_NE(des64.decrypt(des128.encrypt(plaintext)), plaintext);
  EXPECT_NE(des128.decrypt(des64.encrypt(plaintext)), plaintext);
}

// Property: ECB determinism — same block, same key, same ciphertext.
TEST(CipherProperty, Deterministic) {
  const Des64Cipher cipher(42);
  const Bytes plaintext{9, 8, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_EQ(cipher.encrypt(plaintext), cipher.encrypt(plaintext));
}

// --- table-driven fast path vs bit-by-bit reference ---------------------------

TEST(DesTables, FastPathMatchesReferenceOnRandomBlocksAndKeys) {
  util::Rng rng(0xDE5);
  for (int i = 0; i < 200; ++i) {
    const auto schedule = des_key_schedule(rng.next_u64());
    const std::uint64_t block = rng.next_u64();
    EXPECT_EQ(des_encrypt_block(block, schedule),
              des_encrypt_block_reference(block, schedule));
    EXPECT_EQ(des_decrypt_block(block, schedule),
              des_decrypt_block_reference(block, schedule));
  }
}

TEST(DesTables, EdeFastPathMatchesReference) {
  util::Rng rng(0x3DE5);
  for (int i = 0; i < 100; ++i) {
    const auto k1 = des_key_schedule(rng.next_u64());
    const auto k2 = des_key_schedule(rng.next_u64());
    const std::uint64_t block = rng.next_u64();
    EXPECT_EQ(des_ede_encrypt_block(block, k1, k2),
              des_ede_encrypt_block_reference(block, k1, k2));
    EXPECT_EQ(des_ede_decrypt_block(block, k1, k2),
              des_ede_decrypt_block_reference(block, k1, k2));
  }
}

TEST(DesTables, BatchedBlocksMatchScalar) {
  util::Rng rng(0xBA7C);
  const auto k1 = des_key_schedule(rng.next_u64());
  const auto k2 = des_key_schedule(rng.next_u64());
  std::vector<std::uint64_t> blocks(97);
  for (auto& b : blocks) b = rng.next_u64();

  auto single = blocks;
  for (auto& b : single) b = des_encrypt_block(b, k1);
  auto batched = blocks;
  des_encrypt_blocks(batched.data(), batched.size(), k1);
  EXPECT_EQ(batched, single);
  des_decrypt_blocks(batched.data(), batched.size(), k1);
  EXPECT_EQ(batched, blocks);

  auto ede_single = blocks;
  for (auto& b : ede_single) b = des_ede_encrypt_block(b, k1, k2);
  auto ede_batched = blocks;
  des_ede_encrypt_blocks(ede_batched.data(), ede_batched.size(), k1, k2);
  EXPECT_EQ(ede_batched, ede_single);
  des_ede_decrypt_blocks(ede_batched.data(), ede_batched.size(), k1, k2);
  EXPECT_EQ(ede_batched, blocks);
}

TEST(DesTables, SharedKeyScheduleMatchesDirectExpansion) {
  const auto& shared = shared_key_schedule(0x133457799BBCDFF1ULL);
  const auto direct = des_key_schedule(0x133457799BBCDFF1ULL);
  EXPECT_EQ(shared.subkeys, direct.subkeys);
  // Same key → same cached instance.
  EXPECT_EQ(&shared, &shared_key_schedule(0x133457799BBCDFF1ULL));
}

// --- in-place byte APIs (the batched data plane's entry points) ---------------

TEST(CipherInplace, EncryptIntoMatchesEncrypt) {
  const Des64Cipher des64(0x133457799BBCDFF1ULL);
  const Des128Cipher des128(0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL);
  util::Rng rng(99);
  for (std::size_t len : {0U, 1U, 7U, 8U, 9U, 255U, 256U}) {
    Bytes plaintext(len);
    for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next_u64());

    Bytes out64(Des64Cipher::padded_size(len));
    des64.encrypt_into(plaintext, out64.data());
    EXPECT_EQ(out64, des64.encrypt(plaintext)) << "len " << len;

    Bytes out128(Des128Cipher::padded_size(len));
    des128.encrypt_into(plaintext, out128.data());
    EXPECT_EQ(out128, des128.encrypt(plaintext)) << "len " << len;
  }
}

TEST(CipherInplace, DecryptInplaceMatchesDecryptAndStripsPadding) {
  const Des64Cipher cipher(0x133457799BBCDFF1ULL);
  util::Rng rng(7);
  Bytes plaintext(61);
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes wire = cipher.encrypt(plaintext);
  const std::size_t stripped = cipher.decrypt_inplace(wire.data(), wire.size());
  EXPECT_EQ(stripped, plaintext.size());
  wire.resize(stripped);
  EXPECT_EQ(wire, plaintext);
}

TEST(CipherInplace, WrongKeyLeavesGarbageUnstripped) {
  const Des64Cipher right(1), wrong(2);
  Bytes plaintext(40, 0x5A);
  Bytes wire = right.encrypt(plaintext);
  const Bytes reference = wrong.decrypt(wire);
  const std::size_t stripped = wrong.decrypt_inplace(wire.data(), wire.size());
  wire.resize(stripped);
  EXPECT_EQ(wire, reference);  // same garbage-tolerant contract as decrypt()
}

TEST(CipherInplace, DecryptInplaceRejectsUnalignedInput) {
  const Des64Cipher cipher(1);
  Bytes bad{1, 2, 3};
  EXPECT_THROW(cipher.decrypt_inplace(bad.data(), bad.size()), std::invalid_argument);
}

}  // namespace
}  // namespace sa::crypto
