#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <optional>
#include <tuple>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "proto/conformance.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace sa::proto {
namespace {

struct NullProcess : AdaptableProcess {
  bool prepare(const LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const LocalCommand&) override { return true; }
  bool undo(const LocalCommand&) override { return true; }
  void resume() override {}
};

struct Harness {
  core::SafeAdaptationSystem system;
  NullProcess server, handheld, laptop;

  explicit Harness(core::SystemConfig config = {}) : system(config) {
    core::configure_paper_system(system);
    system.attach_process(core::kServerProcess, server, 0);
    system.attach_process(core::kHandheldProcess, handheld, 1);
    system.attach_process(core::kLaptopProcess, laptop, 1);
    system.finalize();
    system.set_current_configuration(core::paper_source(system.registry()));
    system.network().set_tracing(true);
  }

  std::vector<ConformanceViolation> run_and_check(std::size_t max_events = 2'000'000) {
    std::optional<AdaptationResult> result;
    system.request_adaptation(core::paper_target(system.registry()),
                              [&result](const AdaptationResult& r) { result = r; });
    std::size_t events = 0;
    while (!result && events < max_events && system.simulator().step()) ++events;
    const ConformanceChecker checker(system.manager_node());
    return checker.check(system.network().trace());
  }
};

// --- positive checks over real executions ----------------------------------------

TEST(Conformance, HappyPathTraceIsClean) {
  Harness harness;
  const auto violations = harness.run_and_check();
  for (const auto& v : violations) ADD_FAILURE() << v.time << ": " << v.description;
  EXPECT_TRUE(violations.empty());
}

TEST(Conformance, FailToResetWithRollbacksIsClean) {
  Harness harness;
  harness.system.agent(core::kHandheldProcess).set_fail_to_reset(true);
  const auto violations = harness.run_and_check();
  for (const auto& v : violations) ADD_FAILURE() << v.time << ": " << v.description;
}

TEST(Conformance, PartitionedAgentTraceIsClean) {
  Harness harness;
  harness.system.network().partition_pair(harness.system.manager_node(),
                                          harness.system.agent_node(core::kHandheldProcess),
                                          true);
  const auto violations = harness.run_and_check();
  for (const auto& v : violations) ADD_FAILURE() << v.time << ": " << v.description;
}

// --- negative checks: the checker actually detects bad traces ---------------------

sim::TraceEntry entry(sim::Time time, sim::NodeId from, sim::NodeId to, sim::MessagePtr msg) {
  return sim::TraceEntry{time, from, to, msg->type_name(), true, std::move(msg)};
}

template <typename Msg>
sim::MessagePtr make_msg(std::uint32_t step_index = 0) {
  auto msg = std::make_shared<Msg>();
  msg->step = StepRef{1, 0, step_index, 0};
  return msg;
}

TEST(Conformance, DetectsResumeBeforeAdaptDone) {
  const sim::NodeId manager = 0, agent = 1;
  std::vector<sim::TraceEntry> trace{
      entry(1, manager, agent, make_msg<ResetMsg>()),
      entry(2, agent, manager, make_msg<ResetDoneMsg>()),
      entry(3, manager, agent, make_msg<ResumeMsg>()),  // too early!
  };
  const ConformanceChecker checker(manager);
  const auto violations = checker.check(trace);
  ASSERT_EQ(violations.size(), 1U);
  EXPECT_NE(violations[0].description.find("before its adapt done"), std::string::npos);
}

TEST(Conformance, DetectsRollbackAfterResume) {
  const sim::NodeId manager = 0, agent = 1;
  std::vector<sim::TraceEntry> trace{
      entry(1, manager, agent, make_msg<ResetMsg>()),
      entry(2, agent, manager, make_msg<AdaptDoneMsg>()),
      entry(3, manager, agent, make_msg<ResumeMsg>()),
      entry(4, manager, agent, make_msg<RollbackMsg>()),  // forbidden by §4.4
  };
  const auto violations = ConformanceChecker(manager).check(trace);
  ASSERT_GE(violations.size(), 1U);
  EXPECT_NE(violations.back().description.find("§4.4"), std::string::npos);
}

TEST(Conformance, DetectsProgressWithoutReset) {
  const sim::NodeId manager = 0, agent = 1;
  std::vector<sim::TraceEntry> trace{
      entry(1, agent, manager, make_msg<AdaptDoneMsg>()),  // never got a reset
  };
  const auto violations = ConformanceChecker(manager).check(trace);
  ASSERT_EQ(violations.size(), 1U);
  EXPECT_NE(violations[0].description.find("without having received a reset"),
            std::string::npos);
}

TEST(Conformance, DetectsSpontaneousRollbackDone) {
  const sim::NodeId manager = 0, agent = 1;
  std::vector<sim::TraceEntry> trace{
      entry(1, manager, agent, make_msg<ResetMsg>()),
      entry(2, agent, manager, make_msg<RollbackDoneMsg>()),  // no rollback sent
  };
  const auto violations = ConformanceChecker(manager).check(trace);
  ASSERT_EQ(violations.size(), 1U);
  EXPECT_NE(violations[0].description.find("without a rollback command"), std::string::npos);
}

TEST(Conformance, NoOpRollbackDoneForUnknownStepIsLegitimate) {
  const sim::NodeId manager = 0, agent = 1;
  std::vector<sim::TraceEntry> trace{
      entry(1, agent, manager, make_msg<RollbackDoneMsg>()),
  };
  EXPECT_TRUE(ConformanceChecker(manager).check(trace).empty());
}

TEST(Conformance, IgnoresApplicationTrafficAndDrops) {
  struct AppMsg final : sim::Message {
    std::string type_name() const override { return "app"; }
  };
  const sim::NodeId manager = 0, agent = 1;
  std::vector<sim::TraceEntry> trace{
      sim::TraceEntry{1, agent, manager, "app", true, std::make_shared<AppMsg>()},
      sim::TraceEntry{2, manager, agent, "reset", false, nullptr},  // dropped
  };
  EXPECT_TRUE(ConformanceChecker(manager).check(trace).empty());
}

// --- property sweep: conformance + termination under randomized failure -----------

using SweepParam = std::tuple<std::uint64_t /*seed*/, int /*loss %*/, int /*dup %*/>;

class ProtocolSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolSweep, EveryExecutionConformsAndTerminatesConsistently) {
  const auto [seed, loss_percent, dup_percent] = GetParam();
  core::SystemConfig config;
  config.seed = seed;
  config.control_channel.loss_probability = loss_percent / 100.0;
  config.control_channel.duplicate_probability = dup_percent / 100.0;
  config.manager.message_retries = 6;
  Harness harness(config);

  std::optional<AdaptationResult> result;
  harness.system.request_adaptation(core::paper_target(harness.system.registry()),
                                    [&result](const AdaptationResult& r) { result = r; });
  std::size_t events = 0;
  while (!result && events < 2'000'000 && harness.system.simulator().step()) ++events;

  // Termination: the request always resolves.
  ASSERT_TRUE(result.has_value()) << "seed " << seed;
  // Conformance: no execution, however lossy, bends the protocol rules.
  const auto violations =
      ConformanceChecker(harness.system.manager_node()).check(harness.system.network().trace());
  for (const auto& v : violations) {
    ADD_FAILURE() << "seed " << seed << " loss " << loss_percent << "%: " << v.time << ": "
                  << v.description;
  }
  // Consistency: the final configuration is safe, and on success it is the
  // target with every step committed.
  EXPECT_TRUE(harness.system.invariants().satisfied(result->final_config));
  if (result->outcome == AdaptationOutcome::Success) {
    EXPECT_EQ(result->final_config, core::paper_target(harness.system.registry()));
    EXPECT_EQ(result->steps_committed, 5U);
  }
  EXPECT_FALSE(harness.system.manager().busy());
}

// Partition-flapping fuzz: links to random agents go down and come back at
// random moments throughout the adaptation. Whatever happens, the protocol
// must terminate, conform to the automata, and leave a safe configuration.
class PartitionFlapSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionFlapSweep, TerminatesConformsAndStaysSafe) {
  const std::uint64_t seed = GetParam();
  core::SystemConfig config;
  config.seed = seed;
  Harness harness(config);
  sa::util::Rng rng(seed * 7919 + 13);

  const sim::NodeId manager_node = harness.system.manager_node();
  const std::array<config::ProcessId, 3> processes{core::kServerProcess, core::kHandheldProcess,
                                                   core::kLaptopProcess};
  bool flapping = true;
  std::function<void()> flap = [&] {
    if (!flapping) return;
    const config::ProcessId victim = processes[rng.next_below(processes.size())];
    const bool down = rng.next_bool(0.5);
    harness.system.network().partition_pair(manager_node,
                                            harness.system.agent_node(victim), down);
    harness.system.simulator().schedule_after(
        sim::ms(static_cast<std::int64_t>(20 + rng.next_below(180))), flap);
  };
  harness.system.simulator().schedule_after(sim::ms(10), flap);

  std::optional<AdaptationResult> result;
  harness.system.request_adaptation(core::paper_target(harness.system.registry()),
                                    [&result](const AdaptationResult& r) { result = r; });
  std::size_t events = 0;
  while (!result && events < 5'000'000 && harness.system.simulator().step()) ++events;
  flapping = false;

  ASSERT_TRUE(result.has_value()) << "seed " << seed << " did not terminate";
  EXPECT_FALSE(harness.system.manager().busy());
  EXPECT_TRUE(harness.system.invariants().satisfied(result->final_config)) << "seed " << seed;
  const auto violations =
      ConformanceChecker(manager_node).check(harness.system.network().trace());
  for (const auto& v : violations) {
    ADD_FAILURE() << "seed " << seed << ": " << v.time << ": " << v.description;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFlapSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFaults, ProtocolSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(0, 10, 25),
                       ::testing::Values(0, 20)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_loss" +
             std::to_string(std::get<1>(info.param)) + "_dup" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace sa::proto
