// Observability layer tests: metrics registry semantics, trace recorder
// determinism, exporter output, and conformance of recorded phase/state
// transitions with the Figure 1 / Figure 2 automata.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "runtime/threaded_runtime.hpp"

namespace sa::obs {
namespace {

// --- MetricsRegistry ---------------------------------------------------------

TEST(Metrics, CounterGetOrCreateReturnsSameSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests", {{"kind", "x"}});
  Counter& b = registry.counter("requests", {{"kind", "x"}});
  Counter& other = registry.counter("requests", {{"kind", "y"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Metrics, TypeConflictThrows) {
  MetricsRegistry registry;
  registry.counter("m");
  EXPECT_THROW(registry.gauge("m"), std::logic_error);
  EXPECT_THROW(registry.histogram("m", {1.0}), std::logic_error);
}

TEST(Metrics, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("latency", {10, 100, 1000});
  h.observe(5);     // bucket 0
  h.observe(10);    // bucket 0 (inclusive upper bound)
  h.observe(50);    // bucket 1
  h.observe(5000);  // overflow bucket
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 5065.0);
  EXPECT_EQ(snap.count, 4u);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("bad", {10, 5}), std::invalid_argument);
}

TEST(Metrics, HistogramFamilySumSpansLabelSets) {
  MetricsRegistry registry;
  registry.histogram("blocked", {100}, {{"process", "0"}}).observe(30);
  registry.histogram("blocked", {100}, {{"process", "1"}}).observe(12);
  EXPECT_DOUBLE_EQ(registry.histogram_family_sum("blocked"), 42.0);
  EXPECT_DOUBLE_EQ(registry.histogram_family_sum("missing"), 0.0);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("sa_test_total", {{"kind", "a"}}, "help text").inc(3);
  registry.histogram("sa_test_latency", {10, 100}, {}, "latency").observe(50);
  std::ostringstream out;
  write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP sa_test_total help text"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sa_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("sa_test_total{kind=\"a\"} 3"), std::string::npos);
  // Cumulative buckets: the le="100" bucket includes the le="10" count.
  EXPECT_NE(text.find("sa_test_latency_bucket{le=\"10\"} 0"), std::string::npos);
  EXPECT_NE(text.find("sa_test_latency_bucket{le=\"100\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sa_test_latency_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sa_test_latency_sum 50"), std::string::npos);
  EXPECT_NE(text.find("sa_test_latency_count 1"), std::string::npos);
}

// --- TraceRecorder -----------------------------------------------------------

TEST(TraceRecorder, DisabledRecorderDropsEvents) {
  TraceRecorder recorder;
  Event e;
  e.kind = EventKind::StepStarted;
  recorder.record(e);
  EXPECT_EQ(recorder.size(), 0u);
  recorder.set_enabled(true);
  recorder.record(e);
  recorder.record(e);
  EXPECT_EQ(recorder.size(), 2u);
  const auto events = recorder.events();
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
}

// --- End-to-end over the paper scenario --------------------------------------

struct StubProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

struct PaperRun {
  core::SafeAdaptationSystem system;
  StubProcess server, handheld, laptop;
  proto::AdaptationResult result;

  explicit PaperRun(core::SystemConfig config = {}) : system(config) {
    core::configure_paper_system(system);
    system.attach_process(core::kServerProcess, server, 0);
    system.attach_process(core::kHandheldProcess, handheld, 1);
    system.attach_process(core::kLaptopProcess, laptop, 1);
    system.tracer().set_enabled(true);
    system.finalize();
    system.set_current_configuration(core::paper_source(system.registry()));
    result = system.adapt_and_wait(core::paper_target(system.registry()));
  }
};

TEST(TraceExport, JsonlByteIdenticalAcrossSameSeedRuns) {
  std::string first, second;
  {
    PaperRun run;
    ASSERT_EQ(run.result.outcome, proto::AdaptationOutcome::Success);
    std::ostringstream out;
    write_jsonl(run.system.tracer(), out);
    first = out.str();
  }
  {
    PaperRun run;
    std::ostringstream out;
    write_jsonl(run.system.tracer(), out);
    second = out.str();
  }
  EXPECT_FALSE(first.empty());
  const auto lines = static_cast<std::size_t>(std::count(first.begin(), first.end(), '\n'));
  EXPECT_GT(lines, 100u) << "expected a rich event trace";
  EXPECT_EQ(first, second);
}

TEST(TraceConformance, ManagerPhaseSequenceMatchesFig2) {
  PaperRun run;
  ASSERT_EQ(run.result.outcome, proto::AdaptationOutcome::Success);

  // Fig. 2 transition relation (phase names as emitted by to_string).
  const std::multimap<std::string, std::string> allowed{
      {"running", "preparing"},      {"preparing", "adapting"},
      {"preparing", "running"},      {"adapting", "adapted"},
      {"adapting", "rolling-back"},  {"adapted", "resuming"},
      {"resuming", "resumed"},       {"resuming", "running"},
      {"resumed", "adapting"},       {"resumed", "running"},
      {"rolling-back", "adapting"},  {"rolling-back", "running"},
  };

  std::vector<std::pair<std::string, std::string>> transitions;
  for (const Event& e : run.system.tracer().events()) {
    if (e.kind != EventKind::ManagerPhase) continue;
    transitions.emplace_back(e.detail, e.name);
  }
  ASSERT_FALSE(transitions.empty());
  EXPECT_EQ(transitions.front().first, "running") << "trace must start from the running phase";
  for (std::size_t i = 1; i < transitions.size(); ++i) {
    EXPECT_EQ(transitions[i].first, transitions[i - 1].second)
        << "transition " << i << " does not chain";
  }
  for (const auto& [from, to] : transitions) {
    bool legal = false;
    for (auto [it, end] = allowed.equal_range(from); it != end; ++it) {
      legal = legal || it->second == to;
    }
    EXPECT_TRUE(legal) << "illegal Fig. 2 transition " << from << " -> " << to;
  }

  // The happy-path 5-step MAP produces the exact Fig. 2 cycle per step.
  std::vector<std::string> names;
  for (const auto& [from, to] : transitions) names.push_back(to);
  std::vector<std::string> expected{"preparing"};
  for (int step = 0; step < 5; ++step) {
    expected.insert(expected.end(), {"adapting", "adapted", "resuming", "resumed"});
  }
  expected.push_back("running");
  EXPECT_EQ(names, expected);
}

TEST(TraceConformance, AgentStateSequencesMatchFig1) {
  PaperRun run;
  ASSERT_EQ(run.result.outcome, proto::AdaptationOutcome::Success);

  // Fig. 1 transition relation.
  const std::multimap<std::string, std::string> allowed{
      {"running", "resetting"}, {"resetting", "safe"},    {"resetting", "running"},
      {"safe", "adapted"},      {"safe", "running"},      {"adapted", "resuming"},
      {"resuming", "running"},
  };

  std::map<std::int64_t, std::string> state_of;  // per agent track
  std::size_t transitions = 0;
  for (const Event& e : run.system.tracer().events()) {
    if (e.kind != EventKind::AgentState) continue;
    auto [it, inserted] = state_of.emplace(e.track, "running");
    EXPECT_EQ(e.detail, it->second) << "agent " << e.track << " transition does not chain";
    bool legal = false;
    for (auto [a, end] = allowed.equal_range(e.detail); a != end; ++a) {
      legal = legal || a->second == e.name;
    }
    EXPECT_TRUE(legal) << "illegal Fig. 1 transition " << e.detail << " -> " << e.name;
    it->second = e.name;
    ++transitions;
  }
  EXPECT_EQ(state_of.size(), 3u) << "all three processes should appear";
  for (const auto& [track, state] : state_of) {
    EXPECT_EQ(state, "running") << "agent " << track << " must end running";
  }
  // 5 sole-participant steps: running->resetting->safe->adapted->resuming->running.
  EXPECT_EQ(transitions, 5u * 5u);
}

TEST(TraceExport, ChromeTraceHasOneTrackPerEntity) {
  PaperRun run;
  std::ostringstream out;
  write_chrome_trace(run.system.tracer(), out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* track : {"\"manager\"", "\"agent-p0\"", "\"agent-p1\"", "\"agent-p2\""}) {
    EXPECT_NE(json.find(track), std::string::npos) << track;
  }
  // Thread-name metadata plus at least one complete slice and async span.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
}

TEST(TraceExport, MessageEventsCarryEndpointsInJsonl) {
  PaperRun run;
  bool saw_message = false;
  for (const Event& e : run.system.tracer().events()) {
    if (!is_message_event(e.kind)) continue;
    saw_message = true;
    EXPECT_NE(e.from, e.to);
    EXPECT_FALSE(e.name.empty()) << "message events carry the message type";
  }
  EXPECT_TRUE(saw_message);
}

TEST(Metrics, BlockedHistogramAgreesWithManagerTotalOnSim) {
  PaperRun run;
  ASSERT_EQ(run.result.outcome, proto::AdaptationOutcome::Success);
  const double histogram_total = run.system.metrics().histogram_family_sum("sa_blocked_time_us");
  EXPECT_DOUBLE_EQ(histogram_total,
                   static_cast<double>(run.system.manager().total_blocked_reported()));
  EXPECT_GT(histogram_total, 0.0);
}

TEST(Metrics, MessageCountersMatchOutcome) {
  PaperRun run;
  // 5 sole-participant steps: reset + resume out, reset/adapt/resume done (+
  // duplicate resume-done re-acks) back. Exact counts are seed-dependent;
  // sanity-check the counter family exists and is consistent with the trace.
  std::size_t sent_events = 0;
  for (const Event& e : run.system.tracer().events()) {
    sent_events += e.kind == EventKind::MessageSent;
  }
  std::uint64_t sent_counter = 0;
  for (const auto& family : run.system.metrics().snapshot()) {
    if (family.name != "sa_messages_total") continue;
    for (const auto& series : family.series) {
      if (series.labels.find("event=\"sent\"") != std::string::npos) {
        sent_counter += static_cast<std::uint64_t>(series.value);
      }
    }
  }
  EXPECT_GT(sent_events, 0u);
  EXPECT_EQ(sent_counter, sent_events);
}

// Named "Threaded..." so the CI TSan job (-R 'Threaded|RuntimeEquivalence')
// races the instrumentation paths: manager/agent/transport record into the
// shared recorder and registry from worker, timer, and main threads.
TEST(ThreadedObservability, BlockedHistogramAndTraceOnThreadedBackend) {
  runtime::ThreadedRuntime rt({.workers = 4, .seed = 42});
  proto::AdaptationResult result;
  double histogram_total = 0;
  runtime::Time manager_total = 0;
  std::size_t events = 0;
  {
    core::SafeAdaptationSystem system(rt);
    core::configure_paper_system(system);
    StubProcess server, handheld, laptop;
    system.attach_process(core::kServerProcess, server, 0);
    system.attach_process(core::kHandheldProcess, handheld, 1);
    system.attach_process(core::kLaptopProcess, laptop, 1);
    system.tracer().set_enabled(true);
    system.finalize();
    system.set_current_configuration(core::paper_source(system.registry()));
    result = system.adapt_and_wait(core::paper_target(system.registry()));
    histogram_total = system.metrics().histogram_family_sum("sa_blocked_time_us");
    manager_total = system.manager().total_blocked_reported();
    events = system.tracer().size();

    // The trace is ordered by append; per-track timestamps must not regress.
    std::map<std::int64_t, runtime::Time> last_time;
    for (const Event& e : system.tracer().events()) {
      if (e.track == kNoTrack) continue;
      auto [it, inserted] = last_time.emplace(e.track, e.time);
      EXPECT_LE(it->second, e.time);
      it->second = e.time;
    }
  }
  rt.shutdown();
  EXPECT_EQ(result.outcome, proto::AdaptationOutcome::Success);
  EXPECT_DOUBLE_EQ(histogram_total, static_cast<double>(manager_total));
  EXPECT_GT(histogram_total, 0.0);
  EXPECT_GT(events, 50u);
}

// --- Flight recorder (seqlock rings, wrap, tail, detail filter) --------------

Event make_event(EventKind kind, runtime::Time time, std::string name) {
  Event e;
  e.kind = kind;
  e.time = time;
  e.track = kManagerTrack;
  e.name = std::move(name);
  return e;
}

TEST(TraceRecorder, RingWrapDropsOldestAndCounts) {
  TraceRecorder recorder;
  recorder.set_capacity(8);
  recorder.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    recorder.record(make_event(EventKind::StepStarted, i, "e" + std::to_string(i)));
  }
  EXPECT_EQ(recorder.size(), 8u);
  EXPECT_EQ(recorder.dropped(), 12u);
  const std::vector<Event> events = recorder.events();
  ASSERT_EQ(events.size(), 8u);
  // Drop-oldest: what survives is exactly the most recent window.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, static_cast<runtime::Time>(12 + i));
    EXPECT_EQ(events[i].seq, i) << "merge assigns a dense seq";
  }
}

TEST(TraceRecorder, TailReturnsMostRecentMergedEvents) {
  TraceRecorder recorder;
  recorder.set_capacity(64);
  recorder.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    recorder.record(make_event(EventKind::StepCommitted, i, "e" + std::to_string(i)));
  }
  const std::vector<Event> tail = recorder.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].name, "e7");
  EXPECT_EQ(tail[2].name, "e9");
  // Asking for more than exists returns everything, oldest first.
  EXPECT_EQ(recorder.tail(100).size(), 10u);
  EXPECT_EQ(recorder.tail(100).front().name, "e0");
}

TEST(TraceRecorder, DetailFilterKeepsOnlyCausalKinds) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.set_detail(TraceDetail::Causal);
  EXPECT_TRUE(recorder.wants(EventKind::TicketSubmitted));
  EXPECT_TRUE(recorder.wants(EventKind::EpochCompleted));
  EXPECT_TRUE(recorder.wants(EventKind::BlockedWindow));
  EXPECT_FALSE(recorder.wants(EventKind::TimerArmed));
  EXPECT_FALSE(recorder.wants(EventKind::MessageSent));
  EXPECT_FALSE(recorder.wants(EventKind::ManagerPhase));
  // record() itself is the backstop for sites that only check enabled().
  recorder.record(make_event(EventKind::TimerArmed, 1, "filtered"));
  recorder.record(make_event(EventKind::TicketDone, 2, "kept"));
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.events()[0].name, "kept");
  // Back to Full: everything records again, and a disabled recorder wants
  // nothing regardless of the mask.
  recorder.set_detail(TraceDetail::Full);
  recorder.record(make_event(EventKind::TimerArmed, 3, "full"));
  EXPECT_EQ(recorder.size(), 2u);
  recorder.set_enabled(false);
  EXPECT_FALSE(recorder.wants(EventKind::TicketDone));
}

TEST(TraceRecorder, TruncatesOverlongStringsDeterministically) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  Event e = make_event(EventKind::StepStarted, 0, std::string(300, 'n'));
  e.detail = std::string(300, 'd');
  recorder.record(e);
  recorder.record(e);
  const std::vector<Event> events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name.size(), detail::kNameCap);
  EXPECT_EQ(events[0].detail.size(), detail::kDetailCap);
  EXPECT_EQ(events[0].name, events[1].name);
  EXPECT_EQ(events[0].detail, events[1].detail);
}

// Named "Threaded..." so the CI TSan job (-R 'Threaded|RuntimeEquivalence')
// races many producer rings against concurrent readers.
TEST(ThreadedFlightRecorder, ManyProducersMergeDeterministically) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  TraceRecorder recorder;
  recorder.set_capacity(1 << 9);  // 512 >= kPerThread: nothing wraps
  recorder.set_enabled(true);
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct times, so the merged order is a pure function of the
        // event set, independent of ring registration order.
        recorder.record(make_event(EventKind::TicketDone, t * 1000 + i,
                                   "t" + std::to_string(t) + "." + std::to_string(i)));
      }
    });
  }
  for (std::thread& p : producers) p.join();
  EXPECT_EQ(recorder.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(recorder.dropped(), 0u);
  const std::vector<Event> first = recorder.events();
  const std::vector<Event> second = recorder.events();
  ASSERT_EQ(first.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seq, i);
    EXPECT_EQ(first[i].name, second[i].name);
    if (i) EXPECT_LE(first[i - 1].time, first[i].time) << "merged by time";
  }
  const std::vector<Event> tail = recorder.tail(5);
  ASSERT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail.back().name, first.back().name);
}

TEST(ThreadedFlightRecorder, ReadersNeverBlockWrappingProducers) {
  constexpr int kThreads = 3;
  constexpr int kPerThread = 5000;
  TraceRecorder recorder;
  recorder.set_capacity(32);  // tiny: every producer wraps constantly
  recorder.set_enabled(true);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Concurrent reads must see only whole slots — torn slots are skipped
    // and counted, never surfaced as garbage events.
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Event& e : recorder.tail(16)) {
        EXPECT_EQ(e.kind, EventKind::BlockedWindow);
        EXPECT_EQ(e.name, "w");
      }
      (void)recorder.size();
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record(make_event(EventKind::BlockedWindow, t * 100000 + i, "w"));
      }
    });
  }
  for (std::thread& p : producers) p.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_LE(recorder.size(), static_cast<std::size_t>(kThreads) * 32);
  EXPECT_GE(recorder.dropped() + recorder.size(), total);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceExport, TailJsonlOverloadEmitsEventSchemaWithoutMeta) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  Event e = make_event(EventKind::TicketDone, 7, "ticket");
  e.span = 42;
  e.value = 3.5;
  e.has_value = true;
  recorder.record(e);
  std::ostringstream out;
  write_jsonl(recorder.tail(8), out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("\"meta\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"ticket_done\""), std::string::npos);
  EXPECT_NE(text.find("\"span\":42"), std::string::npos);
  EXPECT_NE(text.find("\"value\":3.5"), std::string::npos);
}

}  // namespace
}  // namespace sa::obs
