#include <gtest/gtest.h>

#include "actions/lazy_planner.hpp"
#include "actions/sag.hpp"
#include "config/enumerate.hpp"
#include "util/rng.hpp"

namespace sa::actions {
namespace {

/// Paper scenario (rebuilt locally to keep this test at the sa_actions layer).
struct Fixture {
  config::ComponentRegistry registry;
  config::InvariantSet invariants{registry};
  ActionTable table{registry};

  Fixture() {
    registry.add("E1", 0);
    registry.add("E2", 0);
    registry.add("D1", 1);
    registry.add("D2", 1);
    registry.add("D3", 1);
    registry.add("D4", 2);
    registry.add("D5", 2);
    invariants.add("resource constraint", "one(D1, D2, D3)");
    invariants.add("security constraint", "one(E1, E2)");
    invariants.add("E1 dependency", "E1 -> (D1 | D2) & D4");
    invariants.add("E2 dependency", "E2 -> (D3 | D2) & D5");
    table.add("A1", {"E1"}, {"E2"}, 10);
    table.add("A2", {"D1"}, {"D2"}, 10);
    table.add("A3", {"D1"}, {"D3"}, 10);
    table.add("A4", {"D2"}, {"D3"}, 10);
    table.add("A5", {"D4"}, {"D5"}, 10);
    table.add("A6", {"D1", "E1"}, {"D2", "E2"}, 100);
    table.add("A7", {"D1", "E1"}, {"D3", "E2"}, 100);
    table.add("A8", {"D2", "E1"}, {"D3", "E2"}, 100);
    table.add("A9", {"D4", "E1"}, {"D5", "E2"}, 100);
    table.add("A10", {"D1", "D4"}, {"D2", "D5"}, 50);
    table.add("A11", {"D1", "D4"}, {"D3", "D5"}, 50);
    table.add("A12", {"D2", "D4"}, {"D3", "D5"}, 50);
    table.add("A13", {"D1", "D4", "E1"}, {"D2", "D5", "E2"}, 150);
    table.add("A14", {"D1", "D4", "E1"}, {"D3", "D5", "E2"}, 150);
    table.add("A15", {"D2", "D4", "E1"}, {"D3", "D5", "E2"}, 150);
    table.add("A16", {"D4"}, {}, 10);
    table.add("A17", {}, {"D5"}, 10);
  }

  config::Configuration source() const {
    return config::Configuration::from_bit_string("0100101", registry.size());
  }
  config::Configuration target() const {
    return config::Configuration::from_bit_string("1010010", registry.size());
  }
};

TEST(LazyPlanner, FindsTheMapWithoutBuildingTheSag) {
  Fixture f;
  const LazyPathPlanner lazy(f.table, f.invariants);
  const auto plan = lazy.minimum_path(f.source(), f.target());
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->total_cost, 50.0);
  EXPECT_EQ(plan->steps.size(), 5U);
  EXPECT_EQ(plan->source(), f.source());
  EXPECT_EQ(plan->target(), f.target());
  // Path is valid and safe throughout.
  for (const PlanStep& step : plan->steps) {
    const AdaptiveAction& action = f.table.action(step.action);
    EXPECT_TRUE(action.applicable_to(step.from));
    EXPECT_EQ(action.apply(step.from), step.to);
    EXPECT_TRUE(f.invariants.satisfied(step.to));
  }
}

TEST(LazyPlanner, AgreesWithEagerPlannerOnCost) {
  Fixture f;
  const auto safe = config::enumerate_safe_exhaustive(f.invariants);
  const SafeAdaptationGraph sag(f.table, safe);
  const PathPlanner eager(sag);
  const LazyPathPlanner lazy(f.table, f.invariants);

  // Every ordered pair of safe configurations.
  for (const auto& from : safe) {
    for (const auto& to : safe) {
      const auto eager_plan = eager.minimum_path(from, to);
      const auto lazy_plan = lazy.minimum_path(from, to);
      ASSERT_EQ(eager_plan.has_value(), lazy_plan.has_value())
          << from.describe(f.registry) << " -> " << to.describe(f.registry);
      if (eager_plan) {
        EXPECT_DOUBLE_EQ(eager_plan->total_cost, lazy_plan->total_cost)
            << from.describe(f.registry) << " -> " << to.describe(f.registry);
      }
    }
  }
}

TEST(LazyPlanner, UnsafeEndpointsRejected) {
  Fixture f;
  const LazyPathPlanner lazy(f.table, f.invariants);
  const auto unsafe = config::Configuration::of(f.registry, {"D1", "D2"});
  EXPECT_FALSE(lazy.minimum_path(unsafe, f.target()).has_value());
  EXPECT_FALSE(lazy.minimum_path(f.source(), unsafe).has_value());
}

TEST(LazyPlanner, IdenticalEndpointsYieldEmptyPlan) {
  Fixture f;
  const LazyPathPlanner lazy(f.table, f.invariants);
  const auto plan = lazy.minimum_path(f.source(), f.source());
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(LazyPlanner, UnreachableTargetReturnsNullopt) {
  Fixture f;
  const LazyPathPlanner lazy(f.table, f.invariants);
  // The SAG has no arc back into D1 configurations (nothing re-installs D1).
  EXPECT_FALSE(lazy.minimum_path(f.target(), f.source()).has_value());
}

TEST(LazyPlanner, HeuristicIsAdmissibleLowerBound) {
  Fixture f;
  const LazyPathPlanner lazy(f.table, f.invariants);
  // Cheapest cost-per-changed-component in Table 2: a replacement like A1
  // changes 2 components for 10 ms -> 5 ms per component change.
  EXPECT_DOUBLE_EQ(lazy.min_cost_per_component_change(), 5.0);
  const auto plan = lazy.minimum_path(f.source(), f.target());
  ASSERT_TRUE(plan.has_value());
  // h(source) = diff(source, target) * 10 = 5 * 10 = 50 <= actual 50.
  EXPECT_GE(plan->total_cost, 5 * lazy.min_cost_per_component_change());
}

TEST(LazyPlanner, ExploresOnlyTheRelevantRegion) {
  // 8 independent 2-component clusters => 256 safe configurations, but an
  // adaptation of ONE cluster should not visit the whole space.
  config::ComponentRegistry registry;
  config::InvariantSet invariants{registry};
  ActionTable table{registry};
  for (int c = 0; c < 8; ++c) {
    const std::string s = std::to_string(c);
    registry.add("A" + s, static_cast<config::ProcessId>(c));
    registry.add("B" + s, static_cast<config::ProcessId>(c));
  }
  for (int c = 0; c < 8; ++c) {
    const std::string s = std::to_string(c);
    invariants.add("one" + s, "one(A" + s + ", B" + s + ")");
    table.add("swap" + s, {"A" + s}, {"B" + s}, 10);
  }
  config::Configuration source;
  for (int c = 0; c < 8; ++c) source = source.with(registry.require("A" + std::to_string(c)));
  const config::Configuration target =
      source.without(registry.require("A0")).with(registry.require("B0"));

  const LazyPathPlanner lazy(table, invariants);
  const auto plan = lazy.minimum_path(source, target);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->steps.size(), 1U);
  // The full safe set has 2^8 = 256 configurations; A* should settle only a
  // handful on the way to a one-action target.
  EXPECT_LT(lazy.last_stats().expanded, 20U);
}

// Property: lazy and eager planners agree on random scenarios.
TEST(LazyPlannerProperty, MatchesEagerOnRandomScenarios) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    config::ComponentRegistry registry;
    const std::size_t n = 3 + rng.next_below(5);
    for (std::size_t i = 0; i < n; ++i) {
      registry.add("c" + std::to_string(i), static_cast<config::ProcessId>(i % 2));
    }
    config::InvariantSet invariants{registry};
    if (rng.next_bool(0.7)) {
      invariants.add("inv", "c0 -> c1");
    }
    ActionTable table{registry};
    const std::size_t actions = 2 + rng.next_below(2 * n);
    for (std::size_t i = 0; i < actions; ++i) {
      const std::string from = "c" + std::to_string(rng.next_below(n));
      const std::string to = "c" + std::to_string(rng.next_below(n));
      const double cost = 1.0 + static_cast<double>(rng.next_below(20));
      try {
        if (from == to) {
          table.add("act" + std::to_string(i), {}, {from}, cost);
        } else {
          table.add("act" + std::to_string(i), {from}, {to}, cost);
        }
      } catch (const std::invalid_argument&) {
        // duplicate action name shape; skip
      }
    }
    const auto safe = config::enumerate_safe_exhaustive(invariants);
    if (safe.empty()) continue;
    const SafeAdaptationGraph sag(table, safe);
    const PathPlanner eager(sag);
    const LazyPathPlanner lazy(table, invariants);
    for (int probe = 0; probe < 10; ++probe) {
      const auto& from = safe[rng.next_below(safe.size())];
      const auto& to = safe[rng.next_below(safe.size())];
      const auto eager_plan = eager.minimum_path(from, to);
      const auto lazy_plan = lazy.minimum_path(from, to);
      ASSERT_EQ(eager_plan.has_value(), lazy_plan.has_value()) << "trial " << trial;
      if (eager_plan) {
        EXPECT_DOUBLE_EQ(eager_plan->total_cost, lazy_plan->total_cost) << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace sa::actions
