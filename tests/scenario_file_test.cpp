#include <gtest/gtest.h>

#include <fstream>

#include "actions/planner.hpp"
#include "config/enumerate.hpp"
#include "core/scenario_file.hpp"

namespace sa::core {
namespace {

constexpr const char* kMini = R"(
# a tiny scenario
component A process=0 "first"
component B process=0
component C process=1

invariant "pick one" one(A, B)
invariant "c needs b" C -> B

action swap remove=A add=B cost=12 "swap A for B"
action addc add=C cost=3

source A
target B,C
)";

TEST(ScenarioFile, ParsesComponents) {
  const auto scenario = parse_scenario_text(kMini);
  EXPECT_EQ(scenario.registry->size(), 3U);
  EXPECT_EQ(scenario.registry->process(scenario.registry->require("C")), 1U);
  EXPECT_EQ(scenario.registry->info(0).description, "first");
}

TEST(ScenarioFile, ParsesInvariants) {
  const auto scenario = parse_scenario_text(kMini);
  ASSERT_EQ(scenario.invariants->invariants().size(), 2U);
  EXPECT_EQ(scenario.invariants->invariants()[0].name, "pick one");
  const auto a = config::Configuration::of(*scenario.registry, {"A"});
  const auto ab = config::Configuration::of(*scenario.registry, {"A", "B"});
  EXPECT_TRUE(scenario.invariants->satisfied(a));
  EXPECT_FALSE(scenario.invariants->satisfied(ab));
}

TEST(ScenarioFile, ParsesActions) {
  const auto scenario = parse_scenario_text(kMini);
  ASSERT_EQ(scenario.actions->size(), 2U);
  const auto& swap = scenario.actions->action(scenario.actions->require("swap"));
  EXPECT_DOUBLE_EQ(swap.cost, 12.0);
  EXPECT_EQ(swap.operation_text(*scenario.registry), "A -> B");
  EXPECT_EQ(swap.description, "swap A for B");
  const auto& addc = scenario.actions->action(scenario.actions->require("addc"));
  EXPECT_EQ(addc.operation_text(*scenario.registry), "+C");
}

TEST(ScenarioFile, ParsesEndpointsAsNamesAndBits) {
  const auto scenario = parse_scenario_text(kMini);
  ASSERT_TRUE(scenario.source && scenario.target);
  EXPECT_EQ(*scenario.source, config::Configuration::of(*scenario.registry, {"A"}));
  EXPECT_EQ(*scenario.target, config::Configuration::of(*scenario.registry, {"B", "C"}));

  const auto bits = parse_scenario_text(
      "component X process=0\ncomponent Y process=0\nsource 01\ntarget 10\n");
  EXPECT_EQ(*bits.source, config::Configuration::of(*bits.registry, {"X"}));
  EXPECT_EQ(*bits.target, config::Configuration::of(*bits.registry, {"Y"}));
}

TEST(ScenarioFile, ParsedScenarioPlansEndToEnd) {
  const auto scenario = parse_scenario_text(kMini);
  const auto safe = config::enumerate_safe_exhaustive(*scenario.invariants);
  const actions::SafeAdaptationGraph sag(*scenario.actions, safe);
  const actions::PathPlanner planner(sag);
  const auto plan = planner.minimum_path(*scenario.source, *scenario.target);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->action_names(*scenario.actions), "swap, addc");
  EXPECT_DOUBLE_EQ(plan->total_cost, 15.0);
}

TEST(ScenarioFile, ErrorsCarryLineNumbers) {
  const auto expect_error_at = [](const char* text, std::size_t line) {
    try {
      parse_scenario_text(text);
      FAIL() << text;
    } catch (const ScenarioParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_error_at("bogus directive\n", 1);
  expect_error_at("component A process=0\n\ncomponent A process=0\n", 3);   // duplicate
  expect_error_at("component A\n", 1);                                      // missing process
  expect_error_at("component A process=0\ninvariant \"x\" B -> A\n", 2);    // unknown comp
  expect_error_at("component A process=0\naction x cost=1\n", 2);           // empty action
  expect_error_at("component A process=0\naction x add=A\n", 2);            // missing cost
  expect_error_at("component A process=0\nsource B\n", 2);                  // unknown name
  expect_error_at("component A process=0\ninvariant \"open A\n", 2);        // bad quoting
  expect_error_at("invariant \"x\" true\ncomponent A process=0\n", 2);      // late component
  expect_error_at("component A process=0\nsource 0 1\n", 2);                // extra token
}

TEST(ScenarioFile, CommentsAndQuotesInTokens) {
  const auto scenario = parse_scenario_text(
      "component A process=0 \"has # inside\"  # trailing comment\n");
  EXPECT_EQ(scenario.registry->info(0).description, "has # inside");
}

TEST(ScenarioFile, PaperScenarioFileReproducesTheMap) {
  std::ifstream file;
  for (const char* candidate : {"examples/paper.scenario", "../examples/paper.scenario",
                                "../../examples/paper.scenario"}) {
    file.open(candidate);
    if (file) break;
    file.clear();
  }
  ASSERT_TRUE(file) << "examples/paper.scenario not found relative to the test's cwd";
  const auto scenario = parse_scenario(file);
  EXPECT_EQ(scenario.registry->size(), 7U);
  EXPECT_EQ(scenario.actions->size(), 17U);

  const auto safe = config::enumerate_safe_pruned(*scenario.invariants);
  EXPECT_EQ(safe.size(), 8U);
  const actions::SafeAdaptationGraph sag(*scenario.actions, safe);
  const actions::PathPlanner planner(sag);
  const auto plan = planner.minimum_path(*scenario.source, *scenario.target);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->action_names(*scenario.actions), "A2, A17, A1, A16, A4");
  EXPECT_DOUBLE_EQ(plan->total_cost, 50.0);
}

}  // namespace
}  // namespace sa::core
