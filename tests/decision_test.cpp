#include <gtest/gtest.h>

#include "core/system.hpp"
#include "decision/engine.hpp"
#include "sim/simulator.hpp"

namespace sa::decision {
namespace {

struct StubProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

/// Two-component system: {Plain} <-> {Armored}, plus an unreachable {Broken}.
struct Fixture : ::testing::Test {
  core::SafeAdaptationSystem system;
  StubProcess process;
  Metrics metrics;  // mutate from tests; provider reads it

  config::Configuration plain, armored, broken;
  std::unique_ptr<DecisionEngine> engine;

  void SetUp() override {
    system.registry().add("Plain", 0);
    system.registry().add("Armored", 0);
    system.registry().add("Broken", 0);
    system.add_invariant("exactly one codec", "one(Plain, Armored, Broken)");
    system.add_action("arm", {"Plain"}, {"Armored"}, 10);
    system.add_action("disarm", {"Armored"}, {"Plain"}, 10);
    // No action ever leads to {Broken}: targeting it must fail.
    system.attach_process(0, process);
    system.finalize();
    plain = config::Configuration::of(system.registry(), {"Plain"});
    armored = config::Configuration::of(system.registry(), {"Armored"});
    broken = config::Configuration::of(system.registry(), {"Broken"});
    system.set_current_configuration(plain);
  }

  void make_engine(EngineConfig config = {}) {
    engine = std::make_unique<DecisionEngine>(
        system.simulator(), system.manager(), [this] { return metrics; }, config);
  }

  Rule threat_rule(int priority = 0, config::Configuration* target = nullptr) {
    return Rule{"harden",
                [](const Metrics& m) {
                  const auto it = m.find("threat");
                  return it != m.end() && it->second > 0.5;
                },
                target ? *target : armored, priority};
  }

  void run_for(sim::Time duration) {
    system.simulator().run_until(system.simulator().now() + duration);
  }
};

TEST_F(Fixture, FiresWhenConditionHoldsAndAdapts) {
  make_engine();
  engine->add_rule(threat_rule());
  engine->start();
  run_for(sim::seconds(1));
  EXPECT_EQ(engine->stats().triggers, 0U);  // condition not met yet

  metrics["threat"] = 0.9;
  run_for(sim::seconds(2));
  EXPECT_EQ(engine->stats().triggers, 1U);
  EXPECT_EQ(system.current_configuration(), armored);
  ASSERT_EQ(engine->log().size(), 1U);
  EXPECT_EQ(engine->log()[0].rule, "harden");
  ASSERT_TRUE(engine->log()[0].outcome.has_value());
  EXPECT_EQ(*engine->log()[0].outcome, proto::AdaptationOutcome::Success);
}

TEST_F(Fixture, NoRetriggerOnceAtTarget) {
  make_engine();
  engine->add_rule(threat_rule());
  engine->start();
  metrics["threat"] = 1.0;
  run_for(sim::seconds(10));
  EXPECT_EQ(engine->stats().triggers, 1U);  // satisfied afterwards
}

TEST_F(Fixture, OppositeRulesImplementHysteresisViaCooldown) {
  make_engine(EngineConfig{sim::ms(200), sim::seconds(1), 3});
  engine->add_rule(threat_rule());
  engine->add_rule(Rule{"relax",
                        [](const Metrics& m) {
                          const auto it = m.find("threat");
                          return it == m.end() || it->second < 0.1;
                        },
                        plain, 0});
  engine->start();

  metrics["threat"] = 1.0;
  run_for(sim::ms(600));  // a few ticks: adaptation triggers and completes
  ASSERT_EQ(system.current_configuration(), armored);

  // Flip straight back while the 1s cooldown is still running: the opposite
  // rule wants to fire but must wait — that's the anti-flapping hysteresis.
  metrics["threat"] = 0.0;
  run_for(sim::ms(400));
  EXPECT_EQ(system.current_configuration(), armored);  // still held back
  EXPECT_GT(engine->stats().suppressed_cooldown, 0U);

  run_for(sim::seconds(2));  // cooldown expires; the relax rule proceeds
  EXPECT_EQ(system.current_configuration(), plain);
  EXPECT_EQ(engine->stats().triggers, 2U);
}

TEST_F(Fixture, HigherPriorityRuleWins) {
  make_engine();
  engine->add_rule(Rule{"low", [](const Metrics&) { return true; }, plain, 1});
  engine->add_rule(Rule{"high", [](const Metrics&) { return true; }, armored, 9});
  engine->start();
  run_for(sim::seconds(2));
  // "low" targets the current configuration (no-op) and "high" outranks it.
  EXPECT_EQ(system.current_configuration(), armored);
  ASSERT_FALSE(engine->log().empty());
  EXPECT_EQ(engine->log()[0].rule, "high");
}

TEST_F(Fixture, FlappingRuleIsDisabledAfterFailures) {
  make_engine(EngineConfig{sim::ms(200), sim::ms(100), 2});
  config::Configuration unreachable = broken;
  engine->add_rule(Rule{"doomed", [](const Metrics&) { return true; }, unreachable, 0});
  engine->start();
  run_for(sim::seconds(5));
  EXPECT_FALSE(engine->rule_enabled("doomed"));
  EXPECT_EQ(engine->stats().rules_disabled, 1U);
  // Exactly max_consecutive_failures triggers happened, then silence.
  EXPECT_EQ(engine->stats().triggers, 2U);
  for (const TriggerRecord& record : engine->log()) {
    ASSERT_TRUE(record.outcome.has_value());
    EXPECT_EQ(*record.outcome, proto::AdaptationOutcome::NoPathFound);
  }

  engine->reenable_rule("doomed");
  EXPECT_TRUE(engine->rule_enabled("doomed"));
}

// --- cooldown / quiet-period edge cases --------------------------------------

TEST_F(Fixture, CooldownStartsAtCompletionNotAtTrigger) {
  make_engine(EngineConfig{sim::ms(100), sim::seconds(1), 3});
  engine->add_rule(threat_rule());
  engine->add_rule(Rule{"relax",
                        [](const Metrics& m) {
                          const auto it = m.find("threat");
                          return it == m.end() || it->second < 0.1;
                        },
                        plain, 0});
  engine->start();

  metrics["threat"] = 1.0;
  run_for(sim::seconds(1));
  ASSERT_EQ(engine->stats().triggers, 1U);
  ASSERT_TRUE(engine->log()[0].outcome.has_value());

  metrics["threat"] = 0.0;
  run_for(sim::seconds(3));
  ASSERT_EQ(engine->stats().triggers, 2U);
  // The quiet period is armed when the request COMPLETES, which is strictly
  // after the trigger — so consecutive triggers are always more than one full
  // cooldown apart even though the engine ticks every 100ms.
  EXPECT_GE(engine->log()[1].time - engine->log()[0].time, sim::seconds(1));
}

TEST_F(Fixture, ZeroCooldownNeverSuppresses) {
  // cooldown = 0 makes quiet_until_ equal the completion instant; because the
  // quiet-period check is strict (<), a tick landing exactly there proceeds,
  // so a zero cooldown must never suppress anything.
  make_engine(EngineConfig{sim::ms(100), 0, 3});
  engine->add_rule(threat_rule());
  engine->add_rule(Rule{"relax",
                        [](const Metrics& m) {
                          const auto it = m.find("threat");
                          return it == m.end() || it->second < 0.1;
                        },
                        plain, 0});
  engine->start();

  metrics["threat"] = 1.0;
  run_for(sim::seconds(1));
  ASSERT_EQ(system.current_configuration(), armored);
  metrics["threat"] = 0.0;
  run_for(sim::ms(500));
  EXPECT_EQ(system.current_configuration(), plain);
  EXPECT_EQ(engine->stats().triggers, 2U);
  EXPECT_EQ(engine->stats().suppressed_cooldown, 0U);
}

TEST_F(Fixture, FailedRequestsAlsoArmTheCooldown) {
  // A rule whose target is unreachable fails with NoPathFound every time; the
  // quiet period must pace those retries exactly like successes, or a broken
  // rule would hammer the manager every tick until it gets disabled.
  make_engine(EngineConfig{sim::ms(100), sim::seconds(1), 10});
  engine->add_rule(Rule{"doomed", [](const Metrics&) { return true; }, broken, 0});
  engine->start();
  run_for(sim::seconds(5));

  const auto& log = engine->log();
  ASSERT_GE(log.size(), 2U);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i].time - log[i - 1].time, sim::seconds(1))
        << "triggers " << i - 1 << " and " << i << " closer than the cooldown";
  }
  EXPECT_GT(engine->stats().suppressed_cooldown, 0U);
  EXPECT_TRUE(engine->rule_enabled("doomed"));  // under the failure limit here
}

TEST_F(Fixture, StopHaltsEvaluation) {
  make_engine();
  engine->add_rule(threat_rule());
  engine->start();
  run_for(sim::seconds(1));
  const auto evaluations = engine->stats().evaluations;
  engine->stop();
  metrics["threat"] = 1.0;
  run_for(sim::seconds(2));
  EXPECT_EQ(engine->stats().evaluations, evaluations);
  EXPECT_EQ(engine->stats().triggers, 0U);
}

TEST_F(Fixture, Validation) {
  make_engine();
  EXPECT_THROW(engine->add_rule(Rule{"", [](const Metrics&) { return true; }, armored, 0}),
               std::invalid_argument);
  EXPECT_THROW(engine->add_rule(Rule{"x", nullptr, armored, 0}), std::invalid_argument);
  engine->add_rule(threat_rule());
  EXPECT_THROW(engine->add_rule(threat_rule()), std::invalid_argument);  // duplicate
  EXPECT_THROW(DecisionEngine(system.simulator(), system.manager(), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace sa::decision
