#include <gtest/gtest.h>

#include <optional>

#include "baselines/naive.hpp"
#include "baselines/quiescence.hpp"
#include "core/video_testbed.hpp"
#include "sim/simulator.hpp"

namespace sa::baselines {
namespace {

using core::VideoTestbed;

std::map<config::ProcessId, ProcessBinding> bindings_of(VideoTestbed& testbed) {
  const auto factory = core::paper_filter_factory();
  return {
      {core::kServerProcess, {&testbed.server().chain(), factory, /*stage=*/0}},
      {core::kHandheldProcess, {&testbed.handheld().chain(), factory, /*stage=*/1}},
      {core::kLaptopProcess, {&testbed.laptop().chain(), factory, /*stage=*/1}},
  };
}

TEST(NaiveBaseline, AppliesDiffToChains) {
  VideoTestbed testbed;
  NaiveHotSwapAdapter naive(testbed.simulator(), testbed.system().registry(),
                            bindings_of(testbed));
  ASSERT_TRUE(naive.adapt(testbed.source(), testbed.target()));
  testbed.run_for(sim::ms(50));
  EXPECT_EQ(testbed.installed_configuration(), testbed.target());
}

TEST(NaiveBaseline, RejectsUnknownComponents) {
  VideoTestbed testbed;
  auto bindings = bindings_of(testbed);
  bindings[core::kLaptopProcess].factory = [](const std::string&) { return nullptr; };
  NaiveHotSwapAdapter naive(testbed.simulator(), testbed.system().registry(),
                            std::move(bindings));
  EXPECT_FALSE(naive.adapt(testbed.source(), testbed.target()));
}

TEST(NaiveBaseline, HotSwapUnderTrafficDisruptsTheStream) {
  core::TestbedConfig config;
  config.stream.packets_per_frame = 10;  // 250 packets/s: plenty in flight
  VideoTestbed testbed(config);
  testbed.start_stream();
  testbed.run_for(sim::ms(500));

  // Commands reach the processes 20 ms apart (uncoordinated rollout): the
  // encoder switches schemes while the clients still run the old decoders.
  NaiveHotSwapAdapter naive(testbed.simulator(), testbed.system().registry(),
                            bindings_of(testbed), /*per_process_lag=*/sim::ms(20));
  ASSERT_TRUE(naive.adapt(testbed.source(), testbed.target()));
  testbed.run_for(sim::seconds(1));
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));

  // Packets encoded under the old scheme meet the new decoders (and vice
  // versa): the player observes undecodable or corrupted packets — the
  // disruption the safe protocol exists to prevent.
  EXPECT_GT(testbed.total_undecodable() + testbed.total_corrupted(), 0U);
  // The stream does eventually recover on the new composition.
  EXPECT_EQ(testbed.installed_configuration(), testbed.target());
}

TEST(NaiveBaseline, TransientConfigurationsViolateInvariants) {
  VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(100));

  NaiveHotSwapAdapter naive(testbed.simulator(), testbed.system().registry(),
                            bindings_of(testbed), /*per_process_lag=*/sim::ms(3));
  ASSERT_TRUE(naive.adapt(testbed.source(), testbed.target()));

  // Sample the *installed* configuration while the staggered swaps land.
  bool violation_seen = false;
  for (int i = 0; i < 12; ++i) {
    testbed.run_for(sim::ms(1));
    if (!testbed.system().invariants().satisfied(testbed.installed_configuration())) {
      violation_seen = true;
    }
  }
  EXPECT_TRUE(violation_seen);
  // After the dust settles the final configuration is safe again.
  testbed.run_for(sim::ms(50));
  EXPECT_TRUE(testbed.system().invariants().satisfied(testbed.installed_configuration()));
}

TEST(QuiescenceBaseline, SafeButAdaptsInOneShot) {
  VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(500));

  GlobalQuiescenceAdapter gq(testbed.simulator(), testbed.system().registry(),
                             bindings_of(testbed));
  std::optional<bool> done;
  gq.adapt(testbed.source(), testbed.target(), [&done](bool ok) { done = ok; });
  testbed.run_for(sim::seconds(2));
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(*done);
  EXPECT_EQ(testbed.installed_configuration(), testbed.target());

  testbed.run_for(sim::seconds(1));
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));
  // Safe: no corruption...
  EXPECT_EQ(testbed.total_corrupted(), 0U);
  EXPECT_EQ(testbed.total_undecodable(), 0U);
  // ...but the whole system was blocked for a measurable window.
  EXPECT_GT(gq.last_blocked_duration(), 0);
}

TEST(QuiescenceBaseline, BlocksProcessesUninvolvedInTheChange) {
  VideoTestbed testbed;
  testbed.start_stream();
  testbed.run_for(sim::ms(500));

  // Change only the hand-held decoder (D1 -> D2). Global quiescence still
  // stalls the laptop's player; the safe protocol would not touch it.
  const auto to_d2 = config::Configuration::of(testbed.system().registry(), {"D4", "D2", "E1"});
  GlobalQuiescenceAdapter gq(testbed.simulator(), testbed.system().registry(),
                             bindings_of(testbed), /*flush_delay=*/sim::ms(100));
  const sim::Time laptop_gap_before = testbed.laptop().player_stats().max_interarrival_gap;
  std::optional<bool> done;
  gq.adapt(testbed.source(), to_d2, [&done](bool ok) { done = ok; });
  testbed.run_for(sim::seconds(2));
  ASSERT_TRUE(done.has_value());

  testbed.run_for(sim::seconds(1));
  // The laptop—whose composition did not change—saw a silence at least as
  // long as the global blocking window.
  EXPECT_GT(testbed.laptop().player_stats().max_interarrival_gap, laptop_gap_before);
  EXPECT_EQ(testbed.installed_configuration(), to_d2);
  EXPECT_EQ(testbed.total_corrupted(), 0U);
  EXPECT_EQ(testbed.total_undecodable(), 0U);
}

TEST(QuiescenceBaseline, RejectsConcurrentAdaptations) {
  VideoTestbed testbed;
  GlobalQuiescenceAdapter gq(testbed.simulator(), testbed.system().registry(),
                             bindings_of(testbed));
  gq.adapt(testbed.source(), testbed.target(), nullptr);
  EXPECT_THROW(gq.adapt(testbed.source(), testbed.target(), nullptr), std::logic_error);
}

}  // namespace
}  // namespace sa::baselines
