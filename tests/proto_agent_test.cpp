#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/agent.hpp"
#include "proto/messages.hpp"
#include "sim/network.hpp"

namespace sa::proto {
namespace {

/// Scripted process with full observability and failure injection.
struct ScriptedProcess : AdaptableProcess {
  bool prepare_ok = true;
  bool apply_ok = true;
  bool hold_safe_state = false;  ///< never invoke the reached callback

  int prepares = 0, applies = 0, undos = 0, resumes = 0, aborts = 0, cleanups = 0;
  bool last_drain = false;
  LocalCommand last_command;

  bool prepare(const LocalCommand& command) override {
    ++prepares;
    last_command = command;
    return prepare_ok;
  }
  void reach_safe_state(bool drain, std::function<void()> reached) override {
    last_drain = drain;
    if (!hold_safe_state) reached();
  }
  void abort_safe_state() override { ++aborts; }
  bool apply(const LocalCommand& command) override {
    ++applies;
    last_command = command;
    return apply_ok;
  }
  bool undo(const LocalCommand&) override {
    ++undos;
    return true;
  }
  void resume() override { ++resumes; }
  void cleanup(const LocalCommand&) override { ++cleanups; }
};

struct AgentFixture : ::testing::Test {
  sim::Simulator sim;
  sim::Network net{sim, 3};
  sim::NodeId manager = net.add_node("manager");
  sim::NodeId agent_node = net.add_node("agent");
  ScriptedProcess process;
  AgentConfig config;
  std::unique_ptr<AdaptationAgent> agent;

  std::vector<std::pair<std::string, StepRef>> inbox;  // messages at the manager

  void SetUp() override {
    net.link_bidirectional(manager, agent_node, sim::ChannelConfig{sim::ms(1), 0, 0.0, true});
    net.set_handler(manager, [this](sim::NodeId, sim::MessagePtr msg) {
      const auto& proto = dynamic_cast<const ProtoMessage&>(*msg);
      inbox.emplace_back(msg->type_name(), proto.step);
    });
    config.pre_action_duration = sim::ms(1);
    config.in_action_duration = sim::ms(2);
    config.resume_duration = sim::us(200);
  }

  void start_agent() {
    agent = std::make_unique<AdaptationAgent>(sim, net, agent_node, manager, process, config);
  }

  StepRef step(std::uint32_t attempt = 0) { return StepRef{1, 0, 0, attempt}; }

  void send_reset(bool sole = false, bool drain = false, std::uint32_t attempt = 0) {
    auto msg = std::make_shared<ResetMsg>();
    msg->step = step(attempt);
    msg->command.remove = {"D1"};
    msg->command.add = {"D2"};
    msg->drain = drain;
    msg->sole_participant = sole;
    net.send(manager, agent_node, std::move(msg));
  }

  template <typename Msg>
  void send(std::uint32_t attempt = 0) {
    auto msg = std::make_shared<Msg>();
    msg->step = step(attempt);
    net.send(manager, agent_node, std::move(msg));
  }

  std::vector<std::string> message_types() const {
    std::vector<std::string> out;
    for (const auto& [type, ref] : inbox) out.push_back(type);
    return out;
  }
};

TEST_F(AgentFixture, NormalAdaptationSequence) {
  start_agent();
  send_reset();
  sim.run();
  // reset done when safe, adapt done when the in-action completes.
  EXPECT_EQ(message_types(), (std::vector<std::string>{"reset done", "adapt done"}));
  EXPECT_EQ(agent->state(), AgentState::Adapted);
  EXPECT_EQ(process.prepares, 1);
  EXPECT_EQ(process.applies, 1);
  EXPECT_EQ(process.last_command.describe(), "-D1 +D2");

  send<ResumeMsg>();
  sim.run();
  EXPECT_EQ(message_types().back(), "resume done");
  EXPECT_EQ(agent->state(), AgentState::Running);
  EXPECT_EQ(process.resumes, 1);
  EXPECT_EQ(process.cleanups, 1);
  EXPECT_EQ(agent->stats().adapts_performed, 1U);
}

TEST_F(AgentFixture, DrainFlagForwardedToProcess) {
  start_agent();
  send_reset(/*sole=*/false, /*drain=*/true);
  sim.run();
  EXPECT_TRUE(process.last_drain);
}

TEST_F(AgentFixture, SoleParticipantResumesWithoutResumeMessage) {
  start_agent();
  send_reset(/*sole=*/true);
  sim.run();
  EXPECT_EQ(message_types(),
            (std::vector<std::string>{"reset done", "adapt done", "resume done"}));
  EXPECT_EQ(agent->state(), AgentState::Running);
  EXPECT_EQ(process.resumes, 1);
  // A late resume from the manager is re-acknowledged, not re-executed.
  send<ResumeMsg>();
  sim.run();
  EXPECT_EQ(message_types().back(), "resume done");
  EXPECT_EQ(process.resumes, 1);
  EXPECT_EQ(agent->stats().duplicate_messages, 1U);
}

TEST_F(AgentFixture, DuplicateResetWhileSafeReacknowledges) {
  config.in_action_duration = sim::ms(50);  // long in-action window
  start_agent();
  send_reset();
  sim.run_until(sim::ms(10));  // agent: safe, in-action pending
  EXPECT_EQ(agent->state(), AgentState::Safe);
  send_reset();
  sim.run_until(sim::ms(20));
  EXPECT_EQ(message_types(), (std::vector<std::string>{"reset done", "reset done"}));
  EXPECT_EQ(process.prepares, 1);  // not re-executed
}

TEST_F(AgentFixture, DuplicateResetAfterAdaptedResendsBothAcks) {
  start_agent();
  send_reset();
  sim.run();
  inbox.clear();
  send_reset();
  sim.run();
  EXPECT_EQ(message_types(), (std::vector<std::string>{"reset done", "adapt done"}));
  EXPECT_EQ(process.applies, 1);
}

TEST_F(AgentFixture, DuplicateResumeAfterCompletionReacknowledges) {
  start_agent();
  send_reset();
  sim.run();
  send<ResumeMsg>();
  sim.run();
  inbox.clear();
  send<ResumeMsg>();
  sim.run();
  EXPECT_EQ(message_types(), (std::vector<std::string>{"resume done"}));
  EXPECT_EQ(process.resumes, 1);
}

TEST_F(AgentFixture, FailToResetNeverAcknowledges) {
  config.fail_to_reset = true;
  start_agent();
  send_reset();
  sim.run();
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(agent->state(), AgentState::Resetting);
}

TEST_F(AgentFixture, PrepareFailureHoldsInResetting) {
  process.prepare_ok = false;
  start_agent();
  send_reset();
  sim.run();
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(agent->state(), AgentState::Resetting);
  EXPECT_EQ(process.applies, 0);
}

TEST_F(AgentFixture, ApplyFailureHoldsInSafe) {
  process.apply_ok = false;
  start_agent();
  send_reset();
  sim.run();
  EXPECT_EQ(message_types(), (std::vector<std::string>{"reset done"}));
  EXPECT_EQ(agent->state(), AgentState::Safe);
}

TEST_F(AgentFixture, RollbackWhileResettingAborts) {
  config.fail_to_reset = true;
  start_agent();
  send_reset();
  sim.run_until(sim::ms(10));
  send<RollbackMsg>();
  sim.run();
  EXPECT_EQ(message_types(), (std::vector<std::string>{"rollback done"}));
  EXPECT_EQ(agent->state(), AgentState::Running);
  EXPECT_EQ(process.aborts, 1);
  EXPECT_EQ(process.applies, 0);
  EXPECT_EQ(process.undos, 0);
}

TEST_F(AgentFixture, RollbackWhileSafeCancelsInAction) {
  config.in_action_duration = sim::ms(50);
  start_agent();
  send_reset();
  sim.run_until(sim::ms(10));  // safe, in-action still pending
  send<RollbackMsg>();
  sim.run();
  EXPECT_EQ(agent->state(), AgentState::Running);
  EXPECT_EQ(process.applies, 0);  // cancelled before it mutated anything
  EXPECT_EQ(process.aborts, 1);
  EXPECT_EQ(message_types().back(), "rollback done");
}

TEST_F(AgentFixture, RollbackAfterAdaptedUndoes) {
  start_agent();
  send_reset();
  sim.run();
  ASSERT_EQ(agent->state(), AgentState::Adapted);
  send<RollbackMsg>();
  sim.run();
  EXPECT_EQ(agent->state(), AgentState::Running);
  EXPECT_EQ(process.undos, 1);
  EXPECT_EQ(process.resumes, 1);
  EXPECT_EQ(message_types().back(), "rollback done");
  EXPECT_EQ(agent->stats().rollbacks_performed, 1U);
}

TEST_F(AgentFixture, RollbackForUnknownStepAcknowledgedAsNoop) {
  start_agent();
  send<RollbackMsg>();
  sim.run();
  EXPECT_EQ(message_types(), (std::vector<std::string>{"rollback done"}));
  EXPECT_EQ(process.undos, 0);
  EXPECT_EQ(agent->state(), AgentState::Running);
}

TEST_F(AgentFixture, DuplicateRollbackReacknowledged) {
  start_agent();
  send_reset();
  sim.run();
  send<RollbackMsg>();
  sim.run();
  inbox.clear();
  send<RollbackMsg>();
  sim.run();
  EXPECT_EQ(message_types(), (std::vector<std::string>{"rollback done"}));
  EXPECT_EQ(process.undos, 1);  // not undone twice
}

TEST_F(AgentFixture, CompensatingRollbackAfterProactiveResume) {
  // Sole participant adapted and resumed; the manager (having lost the adapt
  // done) aborts the step. The agent must re-quiesce, undo, and resume.
  start_agent();
  send_reset(/*sole=*/true);
  sim.run();
  ASSERT_EQ(agent->state(), AgentState::Running);
  EXPECT_EQ(process.resumes, 1);
  send<RollbackMsg>();
  sim.run();
  EXPECT_EQ(process.undos, 1);
  EXPECT_EQ(process.resumes, 2);
  EXPECT_EQ(message_types().back(), "rollback done");
}

TEST_F(AgentFixture, BlockedTimeReportedInResumeDone) {
  start_agent();
  send_reset();
  sim.run();
  send<ResumeMsg>();

  sim::Time reported = -1;
  net.set_handler(manager, [&](sim::NodeId, sim::MessagePtr msg) {
    if (const auto* done = dynamic_cast<const ResumeDoneMsg*>(msg.get())) {
      reported = done->blocked_for;
    }
  });
  sim.run();
  // Blocked from entering safe (t=2ms) through in-action (2ms), the resume
  // round trip, and the resume duration.
  EXPECT_GE(reported, config.in_action_duration + config.resume_duration);
  EXPECT_EQ(agent->stats().total_blocked, reported);
}

TEST_F(AgentFixture, StaleStepResetIgnoredWhileBusy) {
  config.in_action_duration = sim::ms(50);
  start_agent();
  send_reset();
  sim.run_until(sim::ms(10));
  // A reset for a *different* step while mid-adaptation is a protocol
  // anomaly: ignored entirely.
  auto msg = std::make_shared<ResetMsg>();
  msg->step = StepRef{9, 0, 9, 0};
  net.send(manager, agent_node, std::move(msg));
  sim.run_until(sim::ms(20));
  EXPECT_EQ(message_types(), (std::vector<std::string>{"reset done"}));
  EXPECT_EQ(process.prepares, 1);
}

TEST_F(AgentFixture, RetriedStepAfterRollbackRunsFresh) {
  start_agent();
  send_reset();
  sim.run();
  send<RollbackMsg>();
  sim.run();
  inbox.clear();
  send_reset(false, false, /*attempt=*/1);
  sim.run();
  EXPECT_EQ(message_types(), (std::vector<std::string>{"reset done", "adapt done"}));
  EXPECT_EQ(process.applies, 2);
  EXPECT_EQ(agent->state(), AgentState::Adapted);
}

}  // namespace
}  // namespace sa::proto
