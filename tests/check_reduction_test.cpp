// State-space reductions (ExploreOptions::dpor / ::symmetry): the independence
// relation must be semantically sound (independent choices really commute),
// sleep sets must not change what a complete search concludes (same leaf
// outcomes, same verdicts, mutations still caught), and the canonical
// fingerprint must be invariant exactly under agent-role permutations and
// cross-channel creation-order interleavings — nothing more.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "check/model.hpp"
#include "check/scenario.hpp"
#include "util/rng.hpp"

namespace sa::check {
namespace {

// --- fixtures ----------------------------------------------------------------

/// Two genuinely interchangeable agents: same reset stage, isomorphic hosted
/// components and invariants, one joint swap step. `swapped` relabels which
/// process hosts which component pair — the two variants are exact process
/// renamings of each other, so canonical fingerprints must coincide while
/// plain fingerprints may not.
Scenario make_twin_scenario(bool swapped) {
  const config::ProcessId ab = swapped ? 1 : 0;
  const config::ProcessId cd = swapped ? 0 : 1;
  Scenario s;
  s.name = swapped ? "twin-swapped" : "twin";
  s.registry = std::make_unique<config::ComponentRegistry>();
  s.registry->add("A", ab, "left incumbent");
  s.registry->add("B", ab, "left replacement");
  s.registry->add("C", cd, "right incumbent");
  s.registry->add("D", cd, "right replacement");
  s.invariants = std::make_unique<config::InvariantSet>(*s.registry);
  s.invariants->add("left exclusive", "one(A, B)");
  s.invariants->add("right exclusive", "one(C, D)");
  s.invariants->add("A needs C", "A -> C");
  s.invariants->add("C needs A", "C -> A");
  s.actions = std::make_unique<actions::ActionTable>(*s.registry);
  s.actions->add("swap", {"A", "C"}, {"B", "D"}, 1.0, "joint replacement");
  s.actions->add("unswap", {"B", "D"}, {"A", "C"}, 1.0, "joint reverse");
  // Both agents in stage 0: resets fan out concurrently, so the initial
  // state already has one in-flight message per channel.
  s.stages = {{0, 0}, {1, 0}};
  s.source = config::Configuration::of(*s.registry, {"A", "C"});
  s.target = config::Configuration::of(*s.registry, {"B", "D"});
  s.safe_configs = config::enumerate_safe_pruned(*s.invariants);
  s.sag = std::make_unique<actions::SafeAdaptationGraph>(*s.actions, s.safe_configs);
  s.planner = std::make_unique<actions::PathPlanner>(*s.sag);
  return s;
}

/// Pair scenario shrunk enough (no retransmission rounds) that even the
/// unreduced search is exhaustive within a unit-test budget.
Scenario make_small_pair_scenario() {
  Scenario s = make_pair_scenario();
  s.manager_config.message_retries = 0;
  s.manager_config.run_to_completion_retries = 0;
  return s;
}

/// First enabled choice of `kind` whose footprint touches the channel of
/// agent `process`; FAILs the test if absent.
Choice choice_on_channel(const Model& model, Choice::Kind kind, config::ProcessId process) {
  for (const Choice& c : model.choices()) {
    if (c.kind != kind) continue;
    const ChoiceFootprint fp = model.choice_footprint(c);
    if (fp.channel_agent == process) return c;
  }
  ADD_FAILURE() << "no " << to_string(kind) << " choice on channel of process " << process;
  return Choice{};
}

// --- independence oracle -----------------------------------------------------

TEST(Reduction, FootprintsOfConcurrentResetsAreIndependent) {
  const Scenario scenario = make_twin_scenario(false);
  Model model(scenario, Model::Limits{1, 1, false});
  model.start();
  const Choice d0 = choice_on_channel(model, Choice::Kind::Deliver, 0);
  const Choice d1 = choice_on_channel(model, Choice::Kind::Deliver, 1);
  const ChoiceFootprint f0 = model.choice_footprint(d0);
  const ChoiceFootprint f1 = model.choice_footprint(d1);
  // Deliveries on distinct channels step distinct agent cores: independent.
  EXPECT_FALSE(choices_dependent(f0, f1));
  EXPECT_FALSE(choices_dependent(f1, f0));
  // Same message delivered vs dropped vs duplicated: all pairwise dependent.
  const ChoiceFootprint drop0 = model.choice_footprint(choice_on_channel(model, Choice::Kind::Drop, 0));
  const ChoiceFootprint dup0 = model.choice_footprint(choice_on_channel(model, Choice::Kind::Duplicate, 0));
  EXPECT_TRUE(choices_dependent(f0, drop0));
  EXPECT_TRUE(choices_dependent(f0, dup0));
  EXPECT_TRUE(choices_dependent(drop0, dup0));
  // Drops on distinct channels share the drop budget: dependent. Same for
  // duplicates.
  const ChoiceFootprint drop1 = model.choice_footprint(choice_on_channel(model, Choice::Kind::Drop, 1));
  const ChoiceFootprint dup1 = model.choice_footprint(choice_on_channel(model, Choice::Kind::Duplicate, 1));
  EXPECT_TRUE(choices_dependent(drop0, drop1));
  EXPECT_TRUE(choices_dependent(dup0, dup1));
  // A duplicate conflicts with the producer of its channel (manager, for a
  // manager->agent reset) but not with the other agent's delivery.
  EXPECT_FALSE(choices_dependent(dup0, f1));
}

TEST(Reduction, DuplicateRacesItsChannelProducer) {
  // Synthetic footprints: Dup on the agent0->manager channel races a Deliver
  // that steps agent0 (the producer), but not one stepping agent1.
  ChoiceFootprint dup;
  dup.choice = Choice{Choice::Kind::Duplicate, 10};
  dup.kind = Choice::Kind::Duplicate;
  dup.channel_agent = 0;
  dup.channel_to_manager = true;
  ChoiceFootprint deliver_to_0;
  deliver_to_0.choice = Choice{Choice::Kind::Deliver, 11};
  deliver_to_0.kind = Choice::Kind::Deliver;
  deliver_to_0.entity = 0;
  deliver_to_0.channel_agent = 0;
  deliver_to_0.channel_to_manager = false;
  ChoiceFootprint deliver_to_1 = deliver_to_0;
  deliver_to_1.choice.seq = 12;
  deliver_to_1.entity = 1;
  deliver_to_1.channel_agent = 1;
  EXPECT_TRUE(choices_dependent(dup, deliver_to_0));
  EXPECT_TRUE(choices_dependent(deliver_to_0, dup));
  EXPECT_FALSE(choices_dependent(dup, deliver_to_1));
}

// The semantic anchor: along random walks, every co-enabled pair the oracle
// calls independent must actually commute — both orders stay enabled and land
// in the identical concrete state. This is the property every sleep-set prune
// relies on.
TEST(Reduction, IndependentChoicesCommuteAlongRandomWalks) {
  for (const char* name : {"tiny", "pair"}) {
    const Scenario scenario = make_scenario(name);
    ExploreOptions options;
    options.drop_budget = 1;
    options.dup_budget = 1;
    options.reorder = true;
    std::size_t pairs_checked = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      util::Rng rng(seed);
      Model model = make_model(scenario, options);
      model.set_record_transitions(false);
      for (int step = 0; step < 60; ++step) {
        const std::vector<Choice> choices = model.choices();
        if (choices.empty()) break;
        for (std::size_t i = 0; i < choices.size(); ++i) {
          for (std::size_t j = i + 1; j < choices.size(); ++j) {
            const ChoiceFootprint fi = model.choice_footprint(choices[i]);
            const ChoiceFootprint fj = model.choice_footprint(choices[j]);
            if (choices_dependent(fi, fj)) continue;
            Model ab = model;
            Model ba = model;
            ASSERT_TRUE(ab.apply(choices[i]));
            ASSERT_TRUE(ab.apply(choices[j])) << name << ": independent choice disabled";
            ASSERT_TRUE(ba.apply(choices[j]));
            ASSERT_TRUE(ba.apply(choices[i])) << name << ": independent choice disabled";
            // Commutation holds modulo the state abstraction: both orders
            // yield the same per-channel FIFO contents, cores, and budgets,
            // but messages *enter* the network in a different global creation
            // order — which the plain fingerprint keeps and the canonical one
            // erases. The canonical print is therefore the right oracle.
            ASSERT_EQ(ab.canonical_fingerprint(), ba.canonical_fingerprint())
                << name << " seed " << seed << " step " << step << ": "
                << to_string(choices[i].kind) << " seq " << choices[i].seq << " vs "
                << to_string(choices[j].kind) << " seq " << choices[j].seq
                << " do not commute";
            ASSERT_EQ(ab.violations().size(), ba.violations().size());
            ++pairs_checked;
          }
        }
        model.apply(choices[rng.next_below(choices.size())]);
      }
    }
    EXPECT_GT(pairs_checked, 100u) << name << ": walk never saw independent pairs";
  }
}

// --- DPOR preserves complete-search results ----------------------------------

void expect_same_conclusions(const ExploreResult& reference, const ExploreResult& result,
                             const std::string& label) {
  ASSERT_TRUE(reference.complete) << label;
  ASSERT_TRUE(result.complete) << label;
  EXPECT_EQ(result.counterexample.has_value(), reference.counterexample.has_value()) << label;
  EXPECT_EQ(result.stats.runs_completed, reference.stats.runs_completed) << label;
  EXPECT_EQ(result.stats.outcomes, reference.stats.outcomes) << label;
  EXPECT_EQ(result.stats.depth_capped, 0u) << label;
}

TEST(Reduction, TinyOutcomesUnchangedByEitherReduction) {
  const Scenario scenario = make_tiny_scenario();
  ExploreOptions options;
  options.max_depth = 300;
  options.max_states = 2'000'000;
  const ExploreResult off = explore_dfs(scenario, options);
  ASSERT_FALSE(off.counterexample.has_value());
  for (const bool dpor : {false, true}) {
    for (const bool symmetry : {false, true}) {
      if (!dpor && !symmetry) continue;
      ExploreOptions reduced = options;
      reduced.dpor = dpor;
      reduced.symmetry = symmetry;
      const ExploreResult result = explore_dfs(scenario, reduced);
      expect_same_conclusions(off, result,
                              std::string("tiny dpor=") + (dpor ? "1" : "0") +
                                  " symmetry=" + (symmetry ? "1" : "0"));
      if (dpor) EXPECT_LT(result.stats.states_explored, off.stats.states_explored);
    }
  }
}

TEST(Reduction, SmallPairOutcomesUnchangedByEitherReduction) {
  // Retransmissions off so the unreduced search is exhaustive in-budget; the
  // interleaving structure (two agents, staged resets, cross-channel races)
  // is untouched.
  const Scenario scenario = make_small_pair_scenario();
  ExploreOptions options;
  options.max_depth = 0;  // unbounded
  options.max_states = 20'000'000;
  options.threads = 0;
  const ExploreResult off = explore_dfs(scenario, options);
  ASSERT_FALSE(off.counterexample.has_value());
  for (const bool dpor : {false, true}) {
    for (const bool symmetry : {false, true}) {
      if (!dpor && !symmetry) continue;
      ExploreOptions reduced = options;
      reduced.dpor = dpor;
      reduced.symmetry = symmetry;
      const ExploreResult result = explore_dfs(scenario, reduced);
      expect_same_conclusions(off, result,
                              std::string("small-pair dpor=") + (dpor ? "1" : "0") +
                                  " symmetry=" + (symmetry ? "1" : "0"));
    }
  }
}

// --- reductions must not hide the seeded mutations ---------------------------

TEST(Reduction, ResumeEarlyMutationCaughtWithReductionsOn) {
  const Scenario scenario = make_pair_scenario();
  ExploreOptions options;
  options.max_depth = 40;
  options.fault = proto::ManagerFault::ResumeBeforeLastAdaptDone;
  options.dpor = true;
  options.symmetry = true;
  const ExploreResult result = explore_dfs(scenario, options);
  ASSERT_TRUE(result.counterexample.has_value());
  ASSERT_FALSE(result.counterexample->violations.empty());
  EXPECT_NE(result.counterexample->violations.front().find("§4.3"), std::string::npos);
  // The schedule is concrete, never canonicalized: it must replay verbatim.
  const ReplayResult replayed = replay(scenario, options, result.counterexample->schedule);
  EXPECT_TRUE(replayed.schedule_valid);
  ASSERT_FALSE(replayed.violations.empty());
  EXPECT_EQ(replayed.violations.front().description,
            result.counterexample->violations.front());
}

TEST(Reduction, RollbackAfterResumeMutationCaughtWithReductionsOn) {
  Scenario scenario = make_tiny_scenario();
  scenario.manager_config.message_retries = 0;
  scenario.manager_config.run_to_completion_retries = 0;
  ExploreOptions options;
  options.max_depth = 60;
  options.max_states = 500'000;
  options.drop_budget = 1;
  options.fault = proto::ManagerFault::RollbackAfterResume;
  options.dpor = true;
  options.symmetry = true;
  const ExploreResult result = explore_dfs(scenario, options);
  ASSERT_TRUE(result.counterexample.has_value());
  ASSERT_FALSE(result.counterexample->violations.empty());
  EXPECT_NE(result.counterexample->violations.front().find("§4.4"), std::string::npos);
  const ReplayResult replayed = replay(scenario, options, result.counterexample->schedule);
  EXPECT_TRUE(replayed.schedule_valid);
  ASSERT_FALSE(replayed.violations.empty());
}

// --- symmetry orbit canonicalization -----------------------------------------

TEST(Reduction, CanonicalFingerprintInvariantUnderAgentRelabeling) {
  // twin and twin-swapped are exact process renamings of one another; walking
  // mirrored schedules must keep canonical fingerprints equal at every step.
  const Scenario plain = make_twin_scenario(false);
  const Scenario swapped = make_twin_scenario(true);
  Model a(plain, Model::Limits{});
  Model b(swapped, Model::Limits{});
  a.start();
  b.start();
  EXPECT_EQ(a.canonical_fingerprint(), b.canonical_fingerprint());
  // Deliver the reset for the {A,B}-hosting agent in both worlds (process 0
  // in `plain`, process 1 in `swapped`): still the same orbit...
  ASSERT_TRUE(a.apply(choice_on_channel(a, Choice::Kind::Deliver, 0)));
  ASSERT_TRUE(b.apply(choice_on_channel(b, Choice::Kind::Deliver, 1)));
  EXPECT_EQ(a.canonical_fingerprint(), b.canonical_fingerprint());
  // ...while the concrete states differ (different process progressed), which
  // the plain fingerprint is allowed to see.
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Reduction, CanonicalFingerprintErasesCrossChannelCreationOrder) {
  // Delivering the two concurrent stage-0 resets in either order reaches the
  // same abstract state, but the done-replies enter the network in different
  // creation orders. The plain fingerprint (creation-order walk) may tell
  // them apart; the canonical one must not.
  const Scenario scenario = make_twin_scenario(false);
  Model first(scenario, Model::Limits{});
  Model second(scenario, Model::Limits{});
  first.start();
  second.start();
  ASSERT_TRUE(first.apply(choice_on_channel(first, Choice::Kind::Deliver, 0)));
  ASSERT_TRUE(first.apply(choice_on_channel(first, Choice::Kind::Deliver, 1)));
  ASSERT_TRUE(second.apply(choice_on_channel(second, Choice::Kind::Deliver, 1)));
  ASSERT_TRUE(second.apply(choice_on_channel(second, Choice::Kind::Deliver, 0)));
  EXPECT_EQ(first.canonical_fingerprint(), second.canonical_fingerprint());
}

TEST(Reduction, NonSymmetricStatesKeepDistinctCanonicalFingerprints) {
  const Scenario scenario = make_twin_scenario(false);
  // One reset delivered vs none: different protocol progress.
  Model idle(scenario, Model::Limits{});
  Model progressed(scenario, Model::Limits{});
  idle.start();
  progressed.start();
  ASSERT_TRUE(progressed.apply(choice_on_channel(progressed, Choice::Kind::Deliver, 0)));
  EXPECT_NE(idle.canonical_fingerprint(), progressed.canonical_fingerprint());

  // Asymmetric roles: in the *pair* scenario the two agents sit in different
  // reset stages, so advancing agent 0 is NOT equivalent to advancing agent 1
  // — canonicalization must keep distinguishable agents distinguishable.
  const Scenario pair_plain = make_twin_scenario(false);
  Model left(pair_plain, Model::Limits{});
  Model right(pair_plain, Model::Limits{});
  left.start();
  right.start();
  ASSERT_TRUE(left.apply(choice_on_channel(left, Choice::Kind::Deliver, 0)));
  ASSERT_TRUE(right.apply(choice_on_channel(right, Choice::Kind::Deliver, 1)));
  // Even stage-symmetric twins host differently-named components, so their
  // roles — and the reset commands they receive — differ: advancing one is
  // not the same orbit as advancing the other. (The genuine invariance is
  // over process-id relabelings, covered above.)
  EXPECT_NE(left.canonical_fingerprint(), right.canonical_fingerprint());
  // But in the staged pair scenario the agents have different roles: every
  // delivery moves the state to a new orbit, never back onto an old one.
  const Scenario staged = make_pair_scenario();
  Model m(staged, Model::Limits{});
  m.start();
  const std::uint64_t before = m.canonical_fingerprint();
  ASSERT_TRUE(m.apply(choice_on_channel(m, Choice::Kind::Deliver, 0)));
  EXPECT_NE(before, m.canonical_fingerprint());
}

// --- schedule files round-trip the new toggles -------------------------------

TEST(Reduction, ScheduleJsonRoundTripsReductionFlags) {
  ScheduleFile file;
  file.scenario = "pair";
  file.options.dpor = true;
  file.options.symmetry = true;
  file.options.max_depth = 0;
  file.schedule.push_back(Choice{Choice::Kind::Deliver, 3});
  const ScheduleFile parsed = schedule_from_json(to_json(file));
  EXPECT_TRUE(parsed.options.dpor);
  EXPECT_TRUE(parsed.options.symmetry);
  EXPECT_EQ(parsed.options.max_depth, 0);
  ASSERT_EQ(parsed.schedule.size(), 1u);
  EXPECT_EQ(parsed.schedule.front(), (Choice{Choice::Kind::Deliver, 3}));
}

}  // namespace
}  // namespace sa::check
