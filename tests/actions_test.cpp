#include <gtest/gtest.h>

#include "actions/action.hpp"
#include "actions/sag.hpp"
#include "config/enumerate.hpp"

namespace sa::actions {
namespace {

struct Fixture {
  config::ComponentRegistry registry;
  config::InvariantSet invariants{registry};
  ActionTable table{registry};

  Fixture() {
    registry.add("E1", 0);
    registry.add("E2", 0);
    registry.add("D1", 1);
    registry.add("D2", 1);
    registry.add("D3", 1);
    registry.add("D4", 2);
    registry.add("D5", 2);
    invariants.add("resource constraint", "one(D1, D2, D3)");
    invariants.add("security constraint", "one(E1, E2)");
    invariants.add("E1 dependency", "E1 -> (D1 | D2) & D4");
    invariants.add("E2 dependency", "E2 -> (D3 | D2) & D5");
  }

  config::Configuration of(std::initializer_list<const char*> names) const {
    return config::Configuration::of(registry, names);
  }
};

// --- AdaptiveAction -----------------------------------------------------------

TEST(Action, ReplacementApplicability) {
  Fixture f;
  f.table.add("A2", {"D1"}, {"D2"}, 10);
  const AdaptiveAction& a2 = f.table.action(0);

  EXPECT_TRUE(a2.applicable_to(f.of({"D1", "D4", "E1"})));
  EXPECT_FALSE(a2.applicable_to(f.of({"D3", "D4", "E1"})));          // D1 absent
  EXPECT_FALSE(a2.applicable_to(f.of({"D1", "D2", "D4", "E1"})));    // D2 already there
  EXPECT_EQ(a2.apply(f.of({"D1", "D4", "E1"})), f.of({"D2", "D4", "E1"}));
}

TEST(Action, InsertionAndRemoval) {
  Fixture f;
  f.table.add("A17", {}, {"D5"}, 10);
  f.table.add("A16", {"D4"}, {}, 10);
  const AdaptiveAction& insert = f.table.action(0);
  const AdaptiveAction& remove = f.table.action(1);

  EXPECT_TRUE(insert.applicable_to(f.of({"D4"})));
  EXPECT_FALSE(insert.applicable_to(f.of({"D4", "D5"})));
  EXPECT_EQ(insert.apply(f.of({"D4"})), f.of({"D4", "D5"}));

  EXPECT_TRUE(remove.applicable_to(f.of({"D4", "D5"})));
  EXPECT_FALSE(remove.applicable_to(f.of({"D5"})));
  EXPECT_EQ(remove.apply(f.of({"D4", "D5"})), f.of({"D5"}));
}

TEST(Action, AffectedProcesses) {
  Fixture f;
  f.table.add("A6", {"D1", "E1"}, {"D2", "E2"}, 100);
  const auto processes = f.table.action(0).affected_processes(f.registry, f.registry.size());
  EXPECT_EQ(processes, (std::vector<config::ProcessId>{0, 1}));  // server + hand-held
}

TEST(Action, OperationText) {
  Fixture f;
  f.table.add("A2", {"D1"}, {"D2"}, 10);
  f.table.add("A16", {"D4"}, {}, 10);
  f.table.add("A17", {}, {"D5"}, 10);
  EXPECT_EQ(f.table.action(0).operation_text(f.registry), "D1 -> D2");
  EXPECT_EQ(f.table.action(1).operation_text(f.registry), "-D4");
  EXPECT_EQ(f.table.action(2).operation_text(f.registry), "+D5");
}

// --- ActionTable ------------------------------------------------------------------

TEST(ActionTable, Validation) {
  Fixture f;
  EXPECT_THROW(f.table.add("X", {}, {}, 10), std::invalid_argument);       // no-op
  EXPECT_THROW(f.table.add("X", {"D1"}, {"D9"}, 10), std::out_of_range);   // unknown
  EXPECT_THROW(f.table.add("X", {"D1"}, {"D2"}, -1), std::invalid_argument);
  EXPECT_THROW(f.table.add("X", {"D1"}, {"D1"}, 10), std::invalid_argument);  // same comp
  f.table.add("A2", {"D1"}, {"D2"}, 10);
  EXPECT_THROW(f.table.add("A2", {"D2"}, {"D3"}, 10), std::invalid_argument);  // dup name
}

TEST(ActionTable, FindAndRequire) {
  Fixture f;
  f.table.add("A1", {"E1"}, {"E2"}, 10);
  EXPECT_EQ(f.table.find("A1"), std::optional<ActionId>(0));
  EXPECT_FALSE(f.table.find("A99").has_value());
  EXPECT_EQ(f.table.require("A1"), 0U);
  EXPECT_THROW(f.table.require("A99"), std::out_of_range);
}

// --- SafeAdaptationGraph ------------------------------------------------------------

TEST(Sag, NodesAreSafeConfigurations) {
  Fixture f;
  f.table.add("A2", {"D1"}, {"D2"}, 10);
  const auto safe = config::enumerate_safe_exhaustive(f.invariants);
  const SafeAdaptationGraph sag(f.table, safe);
  EXPECT_EQ(sag.node_count(), safe.size());
  for (const config::Configuration& config : safe) {
    EXPECT_TRUE(sag.node_of(config).has_value());
  }
  EXPECT_FALSE(sag.node_of(f.of({"D1", "D2"})).has_value());
}

TEST(Sag, EdgeRequiresSafeResult) {
  Fixture f;
  // A hypothetical action leading out of the safe set creates no edge:
  // removing D4 from {D4,D1,E1} violates E1's dependency.
  f.table.add("A16", {"D4"}, {}, 10);
  const auto safe = config::enumerate_safe_exhaustive(f.invariants);
  const SafeAdaptationGraph sag(f.table, safe);
  const auto from = sag.node_of(f.of({"D4", "D1", "E1"}));
  ASSERT_TRUE(from.has_value());
  EXPECT_TRUE(sag.graph().out_edges(*from).empty());
  // ...but removing D4 from {D5,D4,D2,E2} lands on safe {D5,D2,E2}.
  const auto from2 = sag.node_of(f.of({"D5", "D4", "D2", "E2"}));
  ASSERT_TRUE(from2.has_value());
  ASSERT_EQ(sag.graph().out_edges(*from2).size(), 1U);
  const graph::Edge& edge = sag.graph().edge(sag.graph().out_edges(*from2)[0]);
  EXPECT_EQ(sag.configuration(edge.to), f.of({"D5", "D2", "E2"}));
}

TEST(Sag, DeduplicatesInputConfigurations) {
  Fixture f;
  const auto one_config = f.of({"D4", "D1", "E1"});
  const SafeAdaptationGraph sag(f.table, {one_config, one_config, one_config});
  EXPECT_EQ(sag.node_count(), 1U);
}

TEST(Sag, ActionOfEdgeRoundTrips) {
  Fixture f;
  f.table.add("A2", {"D1"}, {"D2"}, 10);
  const auto safe = config::enumerate_safe_exhaustive(f.invariants);
  const SafeAdaptationGraph sag(f.table, safe);
  for (graph::EdgeId e = 0; e < sag.graph().edge_count(); ++e) {
    EXPECT_EQ(sag.action_of_edge(e).name, "A2");
  }
  EXPECT_GT(sag.edge_count(), 0U);
}

TEST(Sag, DescribeMentionsActionsAndConfigs) {
  Fixture f;
  f.table.add("A2", {"D1"}, {"D2"}, 10);
  const SafeAdaptationGraph sag(f.table, config::enumerate_safe_exhaustive(f.invariants));
  const std::string text = sag.describe();
  EXPECT_NE(text.find("A2"), std::string::npos);
  EXPECT_NE(text.find("D4,D1,E1"), std::string::npos);
}

}  // namespace
}  // namespace sa::actions
