#include <gtest/gtest.h>

#include <set>

#include "graph/digraph.hpp"
#include "graph/shortest_path.hpp"
#include "util/rng.hpp"

namespace sa::graph {
namespace {

// --- Digraph -----------------------------------------------------------------

TEST(Digraph, AddNodesAndEdges) {
  Digraph g(3);
  EXPECT_EQ(g.node_count(), 3U);
  const NodeId extra = g.add_nodes(2);
  EXPECT_EQ(extra, 3U);
  EXPECT_EQ(g.node_count(), 5U);
  const EdgeId e = g.add_edge(0, 4, 2.5, 42);
  EXPECT_EQ(g.edge(e).from, 0U);
  EXPECT_EQ(g.edge(e).to, 4U);
  EXPECT_EQ(g.edge(e).cost, 2.5);
  EXPECT_EQ(g.edge(e).label, 42);
}

TEST(Digraph, RejectsBadEdges) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Digraph, ParallelEdgesAllowed) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0, 1);
  g.add_edge(0, 1, 2.0, 2);
  EXPECT_EQ(g.out_edges(0).size(), 2U);
}

TEST(Digraph, SelfLoopAllowed) {
  Digraph g(1);
  g.add_edge(0, 0, 1.0);
  EXPECT_EQ(g.edge_count(), 1U);
}

// --- Dijkstra -----------------------------------------------------------------

TEST(Dijkstra, TrivialSourceEqualsTarget) {
  Digraph g(2);
  const auto path = dijkstra(g, 0, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->cost, 0.0);
  EXPECT_TRUE(path->edges.empty());
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0}));
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(dijkstra(g, 0, 2).has_value());
  EXPECT_FALSE(dijkstra(g, 2, 0).has_value());
}

TEST(Dijkstra, DirectionalityRespected) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(dijkstra(g, 0, 1).has_value());
  EXPECT_FALSE(dijkstra(g, 1, 0).has_value());
}

TEST(Dijkstra, PicksCheaperOfTwoRoutes) {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 5.0);
  const auto path = dijkstra(g, 0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->cost, 2.0);
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0, 1, 3}));
}

TEST(Dijkstra, PrefersCheapParallelEdge) {
  Digraph g(2);
  g.add_edge(0, 1, 9.0, 100);
  const EdgeId cheap = g.add_edge(0, 1, 2.0, 200);
  const auto path = dijkstra(g, 0, 1);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->edges.size(), 1U);
  EXPECT_EQ(path->edges[0], cheap);
}

TEST(Dijkstra, ZeroCostEdgesHandled) {
  Digraph g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 0.0);
  const auto path = dijkstra(g, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->cost, 0.0);
  EXPECT_EQ(path->nodes.size(), 3U);
}

TEST(Dijkstra, FilteredAvoidsBannedNodeAndEdge) {
  Digraph g(4);
  const EdgeId direct = g.add_edge(0, 3, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 3, 2.0);

  std::vector<bool> banned_edges(g.edge_count(), false);
  banned_edges[direct] = true;
  auto path = dijkstra_filtered(g, 0, 3, banned_edges, {});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->cost, 2.0);

  std::vector<bool> banned_nodes(g.node_count(), false);
  banned_nodes[1] = true;
  path = dijkstra_filtered(g, 0, 3, banned_edges, banned_nodes);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->cost, 4.0);
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0, 2, 3}));
}

// Property: Dijkstra agrees with Bellman-Ford on random graphs.
TEST(DijkstraProperty, MatchesBellmanFordOnRandomGraphs) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.next_below(12);
    Digraph g(n);
    const std::size_t m = rng.next_below(3 * n) + 1;
    for (std::size_t i = 0; i < m; ++i) {
      g.add_edge(static_cast<NodeId>(rng.next_below(n)), static_cast<NodeId>(rng.next_below(n)),
                 static_cast<double>(rng.next_below(20)), static_cast<std::int64_t>(i));
    }
    const NodeId s = static_cast<NodeId>(rng.next_below(n));
    const NodeId t = static_cast<NodeId>(rng.next_below(n));
    const auto a = dijkstra(g, s, t);
    const auto b = bellman_ford(g, s, t);
    ASSERT_EQ(a.has_value(), b.has_value()) << "trial " << trial;
    if (a) {
      EXPECT_DOUBLE_EQ(a->cost, b->cost) << "trial " << trial;
      // Both paths must be valid and consistent.
      double recomputed = 0;
      for (const EdgeId e : a->edges) recomputed += g.edge(e).cost;
      EXPECT_DOUBLE_EQ(recomputed, a->cost);
      EXPECT_EQ(a->nodes.front(), s);
      EXPECT_EQ(a->nodes.back(), t);
      for (std::size_t i = 0; i < a->edges.size(); ++i) {
        EXPECT_EQ(g.edge(a->edges[i]).from, a->nodes[i]);
        EXPECT_EQ(g.edge(a->edges[i]).to, a->nodes[i + 1]);
      }
    }
  }
}

// --- Yen's k shortest paths ------------------------------------------------------

TEST(KShortest, SimpleDiamondRanksPaths) {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);  // 0-1-3 cost 2
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 2.0);  // 0-2-3 cost 4
  g.add_edge(2, 3, 2.0);
  g.add_edge(0, 3, 10.0);  // direct cost 10

  const auto paths = k_shortest_paths(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3U);
  EXPECT_EQ(paths[0].cost, 2.0);
  EXPECT_EQ(paths[1].cost, 4.0);
  EXPECT_EQ(paths[2].cost, 10.0);
}

TEST(KShortest, KZeroReturnsEmpty) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(k_shortest_paths(g, 0, 1, 0).empty());
}

TEST(KShortest, UnreachableReturnsEmpty) {
  Digraph g(2);
  EXPECT_TRUE(k_shortest_paths(g, 0, 1, 3).empty());
}

TEST(KShortest, ParallelEdgesYieldDistinctPaths) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0, 1);
  g.add_edge(0, 1, 2.0, 2);
  const auto paths = k_shortest_paths(g, 0, 1, 5);
  ASSERT_EQ(paths.size(), 2U);
  EXPECT_EQ(paths[0].cost, 1.0);
  EXPECT_EQ(paths[1].cost, 2.0);
}

TEST(KShortest, FirstPathMatchesDijkstra) {
  Digraph g(5);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 4, 3.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto paths = k_shortest_paths(g, 0, 4, 1);
  const auto best = dijkstra(g, 0, 4);
  ASSERT_EQ(paths.size(), 1U);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(paths[0], *best);
}

// Properties on random graphs: nondecreasing costs, loopless, distinct, valid.
TEST(KShortestProperty, RandomGraphs) {
  util::Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 3 + rng.next_below(8);
    Digraph g(n);
    const std::size_t m = n + rng.next_below(2 * n);
    for (std::size_t i = 0; i < m; ++i) {
      NodeId a = static_cast<NodeId>(rng.next_below(n));
      NodeId b = static_cast<NodeId>(rng.next_below(n));
      if (a == b) continue;
      g.add_edge(a, b, 1.0 + static_cast<double>(rng.next_below(9)));
    }
    const auto paths = k_shortest_paths(g, 0, static_cast<NodeId>(n - 1), 6);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      // Valid endpoints and chaining.
      EXPECT_EQ(paths[i].nodes.front(), 0U);
      EXPECT_EQ(paths[i].nodes.back(), n - 1);
      double cost = 0;
      for (std::size_t j = 0; j < paths[i].edges.size(); ++j) {
        const Edge& e = g.edge(paths[i].edges[j]);
        EXPECT_EQ(e.from, paths[i].nodes[j]);
        EXPECT_EQ(e.to, paths[i].nodes[j + 1]);
        cost += e.cost;
      }
      EXPECT_DOUBLE_EQ(cost, paths[i].cost);
      // Loopless: nodes unique.
      std::set<NodeId> unique(paths[i].nodes.begin(), paths[i].nodes.end());
      EXPECT_EQ(unique.size(), paths[i].nodes.size());
      // Ordered and distinct.
      if (i > 0) {
        EXPECT_GE(paths[i].cost, paths[i - 1].cost);
        EXPECT_NE(paths[i], paths[i - 1]);
      }
    }
  }
}

}  // namespace
}  // namespace sa::graph
