// Cross-backend equivalence: the paper's §5 scenario must produce the SAME
// adaptation — same committed MAP actions, same final configuration, same
// outcome — whether it runs in-process on the deterministic SimRuntime or as
// four real OS processes over loopback sockets (sa_node under the
// supervisor). This is the distributed row of the conformance test matrix:
// the merged cross-process trace must also replay through the Figure 1/2
// automata with zero violations.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "core/paper_scenario.hpp"
#include "core/supervisor.hpp"
#include "core/system.hpp"
#include "proto/conformance.hpp"
#include "proto/manager.hpp"

namespace sa::core {
namespace {

struct StubProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

struct SimRun {
  proto::AdaptationOutcome outcome;
  std::uint64_t final_config_bits = 0;
  std::size_t steps_committed = 0;
  std::vector<std::string> committed_actions;
};

SimRun run_sim_paper() {
  SafeAdaptationSystem system;  // owns a deterministic SimRuntime
  configure_paper_system(system);
  StubProcess server, handheld, laptop;
  system.attach_process(kServerProcess, server, /*stage=*/0);
  system.attach_process(kHandheldProcess, handheld, /*stage=*/1);
  system.attach_process(kLaptopProcess, laptop, /*stage=*/1);
  system.finalize();
  system.set_current_configuration(paper_source(system.registry()));
  const auto result = system.adapt_and_wait(paper_target(system.registry()));

  SimRun run;
  run.outcome = result.outcome;
  run.final_config_bits = result.final_config.bits();
  run.steps_committed = result.steps_committed;
  for (const proto::StepRecord& record : system.manager().step_log()) {
    if (record.committed && !record.rolled_back) {
      run.committed_actions.push_back(record.action_name);
    }
  }
  return run;
}

std::string join(const std::vector<std::string>& parts) {
  return std::accumulate(parts.begin(), parts.end(), std::string(),
                         [](std::string acc, const std::string& p) {
                           return acc.empty() ? p : std::move(acc) + "; " + p;
                         });
}

TEST(SocketEquivalence, PaperScenarioMatchesSimBackend) {
  const SimRun sim = run_sim_paper();
  ASSERT_EQ(sim.outcome, proto::AdaptationOutcome::Success);
  ASSERT_EQ(sim.committed_actions,
            (std::vector<std::string>{"A2", "A17", "A1", "A16", "A4"}));

  DistributedOptions options;
  options.seed = 42;
  options.sa_node = SA_NODE_PATH;
  options.max_wait = runtime::seconds(30);
  const DistributedReport report = run_distributed_paper(options);

  ASSERT_TRUE(report.infra_ok) << join(report.infra_errors);
  EXPECT_EQ(report.outcome, "success");
  EXPECT_EQ(report.committed_actions, sim.committed_actions);
  EXPECT_EQ(report.final_config_bits, sim.final_config_bits);
  EXPECT_EQ(report.steps_committed, sim.steps_committed);

  // Every agent process ended in Running with no crash-recovery replays.
  ASSERT_EQ(report.agent_states.size(), 3u);
  for (const auto& [name, state] : report.agent_states) {
    EXPECT_EQ(state, "running") << name;
  }
  for (const auto& [name, recoveries] : report.agent_recoveries) {
    EXPECT_EQ(recoveries, 0u) << name;
  }
  EXPECT_EQ(report.kills, 0u);
  EXPECT_EQ(report.respawns, 0u);
}

TEST(SocketEquivalence, MergedDistributedTraceIsConformant) {
  DistributedOptions options;
  options.seed = 7;
  options.sa_node = SA_NODE_PATH;
  options.max_wait = runtime::seconds(30);
  const DistributedReport report = run_distributed_paper(options);
  ASSERT_TRUE(report.infra_ok) << join(report.infra_errors);
  ASSERT_EQ(report.outcome, "success");

  // The merged wall-clock trace covers the full adaptation: at minimum one
  // reset / adapt-done / resume round per committed step in each direction.
  ASSERT_GE(report.merged_trace.size(), 2 * report.steps_committed);

  const proto::ConformanceChecker checker{runtime::NodeId{0}};
  const auto violations = checker.check(report.merged_trace);
  for (const auto& violation : violations) {
    ADD_FAILURE() << "conformance: " << violation.description;
  }
}

}  // namespace
}  // namespace sa::core
