// Replay fidelity of the explorer's virtual world: driving the Model with the
// deterministic simulator's scheduling policy must reproduce, transition for
// transition, what the real SimRuntime drivers do on the same scenario — the
// model checker and the runtime are exploring the same protocol.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "check/model.hpp"
#include "check/scenario.hpp"
#include "core/paper_scenario.hpp"
#include "core/system.hpp"
#include "obs/event.hpp"
#include "obs/trace_recorder.hpp"
#include "proto/adaptable_process.hpp"

namespace sa::check {
namespace {

struct NullProcess : proto::AdaptableProcess {
  bool prepare(const proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const proto::LocalCommand&) override { return true; }
  bool undo(const proto::LocalCommand&) override { return true; }
  void resume() override {}
};

/// Runs the paper request on the real SimRuntime (zero jitter, so message
/// latency matches the model's fixed virtual latency) and extracts the
/// Fig. 1 / Fig. 2 transition sequence from the trace recorder.
std::vector<TransitionRec> sim_runtime_transitions() {
  core::SystemConfig config;
  config.control_channel.jitter = 0;
  core::SafeAdaptationSystem system(config);
  core::configure_paper_system(system);
  NullProcess server, handheld, laptop;
  system.attach_process(core::kServerProcess, server, /*stage=*/0);
  system.attach_process(core::kHandheldProcess, handheld, /*stage=*/1);
  system.attach_process(core::kLaptopProcess, laptop, /*stage=*/1);
  system.tracer().set_enabled(true);
  system.finalize();
  system.set_current_configuration(core::paper_source(system.registry()));

  const proto::AdaptationResult result =
      system.adapt_and_wait(core::paper_target(system.registry()));
  EXPECT_EQ(result.outcome, proto::AdaptationOutcome::Success);

  std::vector<TransitionRec> transitions;
  for (const obs::Event& event : system.tracer().events()) {
    if (event.kind == obs::EventKind::ManagerPhase) {
      transitions.push_back(TransitionRec{"manager", event.detail, event.name});
    } else if (event.kind == obs::EventKind::AgentState) {
      transitions.push_back(
          TransitionRec{"agent" + std::to_string(event.track), event.detail, event.name});
    }
  }
  return transitions;
}

/// Drains the model under the simulator policy (earliest due event first,
/// creation order on ties) and returns the schedule it took.
std::vector<Choice> drain_sim_policy(Model& model) {
  std::vector<Choice> schedule;
  while (const auto choice = model.sim_choice()) {
    EXPECT_TRUE(model.apply(*choice));
    schedule.push_back(*choice);
    EXPECT_LT(schedule.size(), 100'000U);
  }
  return schedule;
}

TEST(CheckReplay, SimPolicyMatchesSimRuntimeTransitions) {
  const Scenario scenario = make_paper_check_scenario();
  Model model = make_model(scenario, ExploreOptions{});
  drain_sim_policy(model);
  model.finalize();
  EXPECT_TRUE(model.violations().empty());
  ASSERT_TRUE(model.outcome().has_value());
  EXPECT_EQ(model.outcome()->outcome, proto::AdaptationOutcome::Success);

  const std::vector<TransitionRec> expected = sim_runtime_transitions();
  const std::vector<TransitionRec>& actual = model.transitions();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i])
        << "transition " << i << " diverged: model " << actual[i].entity << " "
        << actual[i].from << "->" << actual[i].to << ", runtime " << expected[i].entity << " "
        << expected[i].from << "->" << expected[i].to;
  }
}

TEST(CheckReplay, SimPolicyScheduleRoundTripsThroughJson) {
  const Scenario scenario = make_paper_check_scenario();
  Model model = make_model(scenario, ExploreOptions{});
  const std::vector<Choice> schedule = drain_sim_policy(model);
  model.finalize();

  ScheduleFile file;
  file.scenario = scenario.name;
  file.schedule = schedule;
  const ScheduleFile parsed = schedule_from_json(to_json(file));
  EXPECT_EQ(parsed.schedule, schedule);

  // Replaying the serialized schedule on a fresh model reproduces the exact
  // run: same outcome, same transition sequence, still violation-free.
  const Scenario fresh = make_scenario(parsed.scenario);
  const ReplayResult replayed = replay(fresh, parsed.options, parsed.schedule);
  EXPECT_TRUE(replayed.schedule_valid);
  EXPECT_TRUE(replayed.violations.empty());
  ASSERT_TRUE(replayed.outcome.has_value());
  EXPECT_EQ(replayed.outcome->outcome, proto::AdaptationOutcome::Success);
  EXPECT_EQ(replayed.transitions, model.transitions());
}

TEST(CheckReplay, StaleScheduleIsRejectedNotMisapplied) {
  const Scenario scenario = make_tiny_scenario();
  // A schedule referencing a seq that never existed must flag divergence.
  const ReplayResult replayed =
      replay(scenario, ExploreOptions{}, {Choice{Choice::Kind::Deliver, 999}});
  EXPECT_FALSE(replayed.schedule_valid);
}

}  // namespace
}  // namespace sa::check
