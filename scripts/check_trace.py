#!/usr/bin/env python3
"""Validate a JSONL protocol trace produced by `sa_run --trace-out`.

Stdlib-only; CI runs it against the paper scenario's trace and against the
fleet tree's region-tagged trace. All per-stream checks are scoped by the
optional `region` field (fleet traces concatenate one stream per region;
single-system traces have no region and form one stream):

  * meta lines (`"meta":"track_name"`) carry an integer `track` and a name,
    and precede every event of their stream
  * every event line is a JSON object with integer `seq`, `t`, and a known
    `kind`; `seq` is dense from 0 per stream
  * timestamps are non-negative and non-decreasing per stream (the
    simulator's virtual clock never runs backwards; the recorder merges by
    time)
  * message-level events carry distinct `from`/`to` endpoints and a `name`
  * timer events carry a label in `name`
  * `manager_phase` events chain (each `detail` equals the previous `name`)
    and only use transitions of the Fig. 2 manager automaton
  * `agent_state` events chain per track and only use transitions of the
    Fig. 1 process automaton
    (region streams interleave many clusters onto the same tracks, so for
    them only transition *legality* is checked, not the per-track chain)
  * `coordinator_phase` events carry a name and a coordinator track
  * epoch events carry an epoch number and never interleave per track:
    each coordinator goes opened -> sealed -> completed before opening the
    next epoch
  * `ticket_submitted`/`ticket_done` carry the ticket's span id
  * `flow_link` events carry distinct `span`/`parent` ids
  * `blocked_window` events carry a non-negative duration in `value`
  * every `parent` span referenced by an event resolves to some event's
    `span` within the same stream (causal edges never dangle)

Usage: check_trace.py TRACE.jsonl
"""

import json
import sys

KINDS = {
    "adaptation_requested", "plan_computed", "step_started", "step_committed",
    "step_rolled_back", "adaptation_finished", "manager_phase", "agent_state",
    "message_sent", "message_delivered", "message_dropped", "message_duplicated",
    "timer_armed", "timer_fired", "timer_cancelled",
    "coordinator_phase", "epoch_opened", "epoch_sealed", "epoch_completed",
    "ticket_submitted", "ticket_done", "flow_link", "blocked_window",
}
MESSAGE_KINDS = {"message_sent", "message_delivered", "message_dropped", "message_duplicated"}
TIMER_KINDS = {"timer_armed", "timer_fired", "timer_cancelled"}
EPOCH_KINDS = {"epoch_opened", "epoch_sealed", "epoch_completed"}

# Fig. 2: the adaptation manager's phases.
MANAGER_TRANSITIONS = {
    "running": {"preparing"},
    "preparing": {"adapting", "running"},
    "adapting": {"adapted", "rolling-back"},
    "adapted": {"resuming"},
    "resuming": {"resumed", "running"},
    "resumed": {"adapting", "running"},
    "rolling-back": {"running", "adapting"},
}

# Fig. 1: each adaptable process's states.
AGENT_TRANSITIONS = {
    "running": {"resetting"},
    "resetting": {"safe", "running"},
    "safe": {"adapted", "running"},
    "adapted": {"resuming"},
    "resuming": {"running"},
}


def fail(line_no, message):
    print(f"check_trace: line {line_no}: {message}", file=sys.stderr)
    sys.exit(1)


class Stream:
    """Per-region validation state (one instance for region-less traces)."""

    def __init__(self, scoped):
        # Region streams interleave every cluster of the region onto the same
        # manager/agent tracks, so per-track chains are only checkable on
        # single-system traces.
        self.chain_checks = not scoped
        self.next_seq = 0
        self.last_t = 0
        self.manager_phase = "running"
        self.agent_state = {}   # track -> state
        self.epoch_open = {}    # track -> (epoch, phase)
        self.spans = set()
        self.parents = []       # (line_no, parent span id)
        self.saw_event = False


def check_meta(line_no, event, stream):
    if event["meta"] != "track_name":
        fail(line_no, f"unknown meta kind {event['meta']!r}")
    if not isinstance(event.get("track"), int):
        fail(line_no, f"meta line with bad track {event.get('track')!r}")
    if not event.get("name"):
        fail(line_no, "track_name meta line without a name")
    if stream.saw_event:
        fail(line_no, "track_name meta line after the stream's events began")


def check_event(line_no, event, stream):
    stream.saw_event = True
    seq, t, kind = event.get("seq"), event.get("t"), event.get("kind")
    if seq != stream.next_seq:
        fail(line_no, f"seq {seq} is not dense (expected {stream.next_seq})")
    stream.next_seq += 1
    if not isinstance(t, int) or t < 0:
        fail(line_no, f"bad timestamp {t!r}")
    if t < stream.last_t:
        fail(line_no, f"timestamp went backwards ({t} < {stream.last_t})")
    stream.last_t = t
    if kind not in KINDS:
        fail(line_no, f"unknown kind {kind!r}")

    span, parent = event.get("span", 0), event.get("parent", 0)
    if span:
        stream.spans.add(span)
    if parent:
        stream.parents.append((line_no, parent))

    if kind in MESSAGE_KINDS:
        src, dst = event.get("from"), event.get("to")
        if not isinstance(src, int) or not isinstance(dst, int):
            fail(line_no, "message event without integer from/to")
        if src == dst:
            fail(line_no, f"message event with from == to == {src}")
        if not event.get("name"):
            fail(line_no, "message event without a message type name")

    if kind in TIMER_KINDS and not event.get("name"):
        fail(line_no, "timer event without a label")

    if kind == "manager_phase":
        prev, new = event.get("detail"), event.get("name")
        if stream.chain_checks and prev != stream.manager_phase:
            fail(line_no, f"manager phase chain broken: trace says "
                          f"{prev!r} -> {new!r} but current phase is "
                          f"{stream.manager_phase!r}")
        if new not in MANAGER_TRANSITIONS.get(prev, ()):
            fail(line_no, f"illegal Fig. 2 transition {prev!r} -> {new!r}")
        if stream.chain_checks:
            stream.manager_phase = new

    if kind == "agent_state":
        track = event.get("track")
        if not isinstance(track, int) or track < 0:
            fail(line_no, f"agent_state event with bad track {track!r}")
        prev, new = event.get("detail"), event.get("name")
        current = stream.agent_state.get(track, "running")
        if stream.chain_checks and prev != current:
            fail(line_no, f"agent {track} state chain broken: trace says "
                          f"{prev!r} -> {new!r} but current state is {current!r}")
        if new not in AGENT_TRANSITIONS.get(prev, ()):
            fail(line_no, f"illegal Fig. 1 transition {prev!r} -> {new!r}")
        if stream.chain_checks:
            stream.agent_state[track] = new

    if kind == "coordinator_phase":
        if not isinstance(event.get("track"), int):
            fail(line_no, "coordinator_phase event without a track")
        if not event.get("name"):
            fail(line_no, "coordinator_phase event without a phase name")

    if kind in EPOCH_KINDS:
        track, epoch = event.get("track"), event.get("epoch")
        if not isinstance(track, int):
            fail(line_no, f"{kind} event without a track")
        if not isinstance(epoch, int) or epoch < 1:
            fail(line_no, f"{kind} event with bad epoch {epoch!r}")
        open_state = stream.epoch_open.get(track)
        if kind == "epoch_opened":
            if open_state is not None:
                fail(line_no, f"epoch {epoch} opened on track {track} while "
                              f"epoch {open_state[0]} is still {open_state[1]} "
                              f"(epochs must not interleave per track)")
            stream.epoch_open[track] = (epoch, "opened")
        elif kind == "epoch_sealed":
            if open_state != (epoch, "opened"):
                fail(line_no, f"epoch {epoch} sealed on track {track} but its "
                              f"state is {open_state!r} (expected opened)")
            stream.epoch_open[track] = (epoch, "sealed")
        else:  # epoch_completed
            if open_state != (epoch, "sealed"):
                fail(line_no, f"epoch {epoch} completed on track {track} but "
                              f"its state is {open_state!r} (expected sealed)")
            del stream.epoch_open[track]

    if kind in ("ticket_submitted", "ticket_done") and not span:
        fail(line_no, f"{kind} event without the ticket's span id")

    if kind == "flow_link":
        if not span or not parent:
            fail(line_no, "flow_link event without span/parent ids")
        if span == parent:
            fail(line_no, f"flow_link event linking span {span} to itself")

    if kind == "blocked_window":
        value = event.get("value")
        if not isinstance(value, (int, float)) or value < 0:
            fail(line_no, f"blocked_window event with bad duration {value!r}")


def finish_stream(label, stream):
    for line_no, parent in stream.parents:
        if parent not in stream.spans:
            fail(line_no, f"dangling causal edge: parent span {parent} never "
                          f"appears as any event's span{label}")
    errors = []
    if stream.manager_phase != "running":
        errors.append(f"ends with manager phase {stream.manager_phase!r}, "
                      f"expected 'running'")
    for track, state in sorted(stream.agent_state.items()):
        if state != "running":
            errors.append(f"ends with agent {track} in state {state!r}, "
                          f"expected 'running'")
    for track, (epoch, phase) in sorted(stream.epoch_open.items()):
        errors.append(f"ends with epoch {epoch} on track {track} still {phase}")
    for error in errors:
        print(f"check_trace: trace{label} {error}", file=sys.stderr)
    return not errors


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    streams = {}  # region (None for single-system traces) -> Stream
    counts = {}
    events = 0

    with open(sys.argv[1], encoding="utf-8") as trace:
        line_no = 0
        for line_no, line in enumerate(trace, start=1):
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                fail(line_no, f"invalid JSON: {error}")
            if not isinstance(event, dict):
                fail(line_no, "event is not a JSON object")
            region = event.get("region")
            if region is not None and not isinstance(region, int):
                fail(line_no, f"bad region {region!r}")
            stream = streams.setdefault(region, Stream(scoped=region is not None))
            if "meta" in event:
                check_meta(line_no, event, stream)
                continue
            events += 1
            kind = event.get("kind")
            counts[kind] = counts.get(kind, 0) + 1
            check_event(line_no, event, stream)

    if events == 0:
        print("check_trace: empty trace", file=sys.stderr)
        return 1
    ok = True
    for region, stream in sorted(streams.items(), key=lambda kv: (kv[0] is not None, kv[0])):
        label = "" if region is None else f" (region {region})"
        ok = finish_stream(label, stream) and ok
    if not ok:
        return 1

    summary = ", ".join(f"{kind}={n}" for kind, n in sorted(counts.items()))
    scope = f"{len(streams)} region(s), " if None not in streams else ""
    print(f"check_trace: OK — {scope}{events} events ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
