#!/usr/bin/env python3
"""Validate a JSONL protocol trace produced by `sa_run --trace-out`.

Stdlib-only; CI runs it against the paper scenario's trace. Checks:

  * every line is a JSON object with integer `seq`, `t`, and a known `kind`
  * `seq` is dense from 0 in file order
  * timestamps are non-negative and non-decreasing (the simulator's virtual
    clock never runs backwards; the recorder appends in execution order)
  * message-level events carry distinct `from`/`to` endpoints and a `name`
  * timer events carry a label in `name`
  * `manager_phase` events chain (each `detail` equals the previous `name`)
    and only use transitions of the Fig. 2 manager automaton
  * `agent_state` events chain per track and only use transitions of the
    Fig. 1 process automaton

Usage: check_trace.py TRACE.jsonl
"""

import json
import sys

KINDS = {
    "adaptation_requested", "plan_computed", "step_started", "step_committed",
    "step_rolled_back", "adaptation_finished", "manager_phase", "agent_state",
    "message_sent", "message_delivered", "message_dropped", "message_duplicated",
    "timer_armed", "timer_fired", "timer_cancelled",
}
MESSAGE_KINDS = {"message_sent", "message_delivered", "message_dropped", "message_duplicated"}
TIMER_KINDS = {"timer_armed", "timer_fired", "timer_cancelled"}

# Fig. 2: the adaptation manager's phases.
MANAGER_TRANSITIONS = {
    "running": {"preparing"},
    "preparing": {"adapting", "running"},
    "adapting": {"adapted", "rolling-back"},
    "adapted": {"resuming"},
    "resuming": {"resumed", "running"},
    "resumed": {"adapting", "running"},
    "rolling-back": {"running", "adapting"},
}

# Fig. 1: each adaptable process's states.
AGENT_TRANSITIONS = {
    "running": {"resetting"},
    "resetting": {"safe", "running"},
    "safe": {"adapted", "running"},
    "adapted": {"resuming"},
    "resuming": {"running"},
}


def fail(line_no, message):
    print(f"check_trace: line {line_no}: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    manager_phase = "running"
    agent_state = {}  # track -> state
    last_t = 0
    counts = {}

    with open(sys.argv[1], encoding="utf-8") as trace:
        line_no = 0
        for line_no, line in enumerate(trace, start=1):
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                fail(line_no, f"invalid JSON: {error}")
            if not isinstance(event, dict):
                fail(line_no, "event is not a JSON object")

            seq, t, kind = event.get("seq"), event.get("t"), event.get("kind")
            if seq != line_no - 1:
                fail(line_no, f"seq {seq} is not dense (expected {line_no - 1})")
            if not isinstance(t, int) or t < 0:
                fail(line_no, f"bad timestamp {t!r}")
            if t < last_t:
                fail(line_no, f"timestamp went backwards ({t} < {last_t})")
            last_t = t
            if kind not in KINDS:
                fail(line_no, f"unknown kind {kind!r}")
            counts[kind] = counts.get(kind, 0) + 1

            if kind in MESSAGE_KINDS:
                src, dst = event.get("from"), event.get("to")
                if not isinstance(src, int) or not isinstance(dst, int):
                    fail(line_no, "message event without integer from/to")
                if src == dst:
                    fail(line_no, f"message event with from == to == {src}")
                if not event.get("name"):
                    fail(line_no, "message event without a message type name")

            if kind in TIMER_KINDS and not event.get("name"):
                fail(line_no, "timer event without a label")

            if kind == "manager_phase":
                prev, new = event.get("detail"), event.get("name")
                if prev != manager_phase:
                    fail(line_no, f"manager phase chain broken: trace says "
                                  f"{prev!r} -> {new!r} but current phase is "
                                  f"{manager_phase!r}")
                if new not in MANAGER_TRANSITIONS.get(prev, ()):
                    fail(line_no, f"illegal Fig. 2 transition {prev!r} -> {new!r}")
                manager_phase = new

            if kind == "agent_state":
                track = event.get("track")
                if not isinstance(track, int) or track < 0:
                    fail(line_no, f"agent_state event with bad track {track!r}")
                prev, new = event.get("detail"), event.get("name")
                current = agent_state.get(track, "running")
                if prev != current:
                    fail(line_no, f"agent {track} state chain broken: trace says "
                                  f"{prev!r} -> {new!r} but current state is {current!r}")
                if new not in AGENT_TRANSITIONS.get(prev, ()):
                    fail(line_no, f"illegal Fig. 1 transition {prev!r} -> {new!r}")
                agent_state[track] = new

    if line_no == 0:
        print("check_trace: empty trace", file=sys.stderr)
        return 1
    if manager_phase != "running":
        print(f"check_trace: trace ends with manager phase {manager_phase!r}, "
              f"expected 'running'", file=sys.stderr)
        return 1
    for track, state in sorted(agent_state.items()):
        if state != "running":
            print(f"check_trace: trace ends with agent {track} in state {state!r}, "
                  f"expected 'running'", file=sys.stderr)
            return 1

    summary = ", ".join(f"{kind}={n}" for kind, n in sorted(counts.items()))
    print(f"check_trace: OK — {line_no} events ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
