#!/usr/bin/env bash
# Layering check: everything above the simulator must program against the
# runtime interfaces (runtime/clock.hpp, runtime/transport.hpp, ...), never
# against the concrete simulator. The only non-sim code allowed to include
# sim/ headers directly is the SimRuntime adapter (src/runtime/sim_runtime.*).
#
# Tests, benches, examples, and tools may still include sim/ headers: they
# exercise the deterministic backend on purpose.
set -euo pipefail

cd "$(dirname "$0")/.."

layers=(src/proto src/components src/video src/core src/decision src/baselines
        src/crypto src/spec src/actions src/config src/expr src/graph src/util
        src/check src/inject)

status=0
for layer in "${layers[@]}"; do
  [ -d "$layer" ] || continue
  matches=$(grep -rn '#include "sim/' "$layer" || true)
  if [ -n "$matches" ]; then
    echo "ERROR: $layer includes sim/ headers directly (use the runtime interfaces):"
    echo "$matches"
    status=1
  fi
done

# The runtime interface headers themselves must not depend on the simulator;
# only the SimRuntime adapter translation units may.
matches=$(grep -rln '#include "sim/' src/runtime | grep -v 'sim_runtime' || true)
if [ -n "$matches" ]; then
  echo "ERROR: runtime interface files include sim/ headers:"
  echo "$matches"
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "include hygiene OK: no direct sim/ includes outside src/sim and the SimRuntime adapter"
fi
exit "$status"
