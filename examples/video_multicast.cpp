// The paper's case study end to end: a video server multicasting a DES-64
// encoded stream to a hand-held and a laptop client, hardened to DES-128 at
// run time by the safe adaptation protocol — while the stream keeps flowing.
//
// Build & run:  ./build/examples/video_multicast
#include <cstdio>
#include <optional>

#include "core/video_testbed.hpp"
#include "sim/network.hpp"

int main() {
  using namespace sa;

  core::VideoTestbed testbed;
  std::printf("initial composition: server=[E1] handheld=[D1] laptop=[D4]  (DES 64-bit)\n");

  testbed.start_stream();
  testbed.run_for(sim::ms(500));
  std::printf("after 500 ms of streaming: %llu intact packets delivered\n",
              static_cast<unsigned long long>(testbed.total_intact()));

  // Harden security: request the {D5, D3, E2} configuration (DES 128-bit).
  std::optional<proto::AdaptationResult> result;
  testbed.system().request_adaptation(
      testbed.target(), [&result](const proto::AdaptationResult& r) { result = r; });
  testbed.run_for(sim::seconds(5));

  if (!result) {
    std::printf("adaptation did not terminate!\n");
    return 1;
  }
  std::printf("\nadaptation finished: %s\n", std::string(proto::to_string(result->outcome)).c_str());
  std::printf("minimum adaptation path executed:\n");
  for (const auto& record : testbed.system().manager().step_log()) {
    std::printf("  %s  (%s, %.2f ms)\n", record.action_name.c_str(),
                record.committed ? "committed" : "rolled back",
                (record.finished - record.started) / 1000.0);
  }

  testbed.run_for(sim::seconds(1));
  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));

  std::printf("\nfinal composition: server=%s handheld=%s laptop=%s\n",
              testbed.server().chain().refract().at("filters").c_str(),
              testbed.handheld().chain().refract().at("filters").c_str(),
              testbed.laptop().chain().refract().at("filters").c_str());
  std::printf("stream integrity across the whole run:\n");
  std::printf("  intact:      %llu\n", static_cast<unsigned long long>(testbed.total_intact()));
  std::printf("  corrupted:   %llu\n", static_cast<unsigned long long>(testbed.total_corrupted()));
  std::printf("  undecodable: %llu\n",
              static_cast<unsigned long long>(testbed.total_undecodable()));
  std::printf("  max player gap: handheld %.1f ms, laptop %.1f ms\n",
              testbed.handheld().player_stats().max_interarrival_gap / 1000.0,
              testbed.laptop().player_stats().max_interarrival_gap / 1000.0);

  const bool clean = result->outcome == proto::AdaptationOutcome::Success &&
                     testbed.total_corrupted() == 0 && testbed.total_undecodable() == 0;
  std::printf("\n%s\n", clean ? "safe adaptation: the stream never glitched."
                              : "unexpected disruption detected!");
  return clean ? 0 : 1;
}
