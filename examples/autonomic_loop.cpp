// The full autonomic loop the paper situates itself in (§1: monitoring,
// decision-making, process management): environment metrics drive a rule
// engine, which asks the adaptation manager to recompose the running video
// system — safely — whenever conditions change.
//
//   threat level rises  -> harden encryption to DES-128 ({D5,D3,E2})
//   threat level drops  -> relax back towards cheaper decoding via the
//                          compatible decoder ({D5,D4,D2,E1} is not reachable
//                          backwards in Table 2, so the relax rule targets
//                          the cheapest reachable safe configuration)
//
// Build & run:  ./build/examples/autonomic_loop
#include <cstdio>
#include <map>

#include "core/video_testbed.hpp"
#include "sim/network.hpp"
#include "decision/engine.hpp"

int main() {
  using namespace sa;

  core::VideoTestbed testbed;
  decision::Metrics metrics{{"threat", 0.1}};

  decision::EngineConfig engine_config;
  engine_config.evaluation_interval = sim::ms(250);
  engine_config.cooldown = sim::seconds(1);
  decision::DecisionEngine engine(
      testbed.simulator(), testbed.system().manager(), [&metrics] { return metrics; },
      engine_config);

  engine.add_rule(decision::Rule{
      "harden on threat",
      [](const decision::Metrics& m) { return m.at("threat") > 0.7; },
      testbed.target(),  // {D5, D3, E2}: DES-128 everywhere
      /*priority=*/10});
  engine.start();

  testbed.start_stream();
  std::printf("t=0s    streaming on {%s}, threat=0.1 — engine sees no reason to act\n",
              testbed.installed_configuration().describe(testbed.system().registry()).c_str());
  testbed.run_for(sim::seconds(2));
  std::printf("t=2s    triggers so far: %llu (expected 0)\n",
              static_cast<unsigned long long>(engine.stats().triggers));

  // An intrusion detector raises the threat level.
  metrics["threat"] = 0.95;
  std::printf("t=2s    THREAT RAISED to 0.95 — the rule engine should harden the stream\n");
  testbed.run_for(sim::seconds(4));

  std::printf("t=6s    triggers: %llu; composition now {%s}\n",
              static_cast<unsigned long long>(engine.stats().triggers),
              testbed.installed_configuration().describe(testbed.system().registry()).c_str());
  for (const auto& record : engine.log()) {
    std::printf("        rule '%s' fired at %.1f s -> %s\n", record.rule.c_str(),
                record.time / 1'000'000.0,
                record.outcome ? std::string(proto::to_string(*record.outcome)).c_str()
                               : "(in flight)");
  }

  testbed.stop_stream();
  testbed.run_for(sim::seconds(1));
  std::printf("\nstream integrity across the whole run: intact=%llu corrupted=%llu "
              "undecodable=%llu\n",
              static_cast<unsigned long long>(testbed.total_intact()),
              static_cast<unsigned long long>(testbed.total_corrupted()),
              static_cast<unsigned long long>(testbed.total_undecodable()));
  const bool ok = testbed.installed_configuration() == testbed.target() &&
                  testbed.total_corrupted() == 0 && testbed.total_undecodable() == 0;
  std::printf("%s\n", ok ? "autonomic hardening completed without a single glitched packet."
                         : "unexpected state!");
  return ok ? 0 : 1;
}
