// Using the library on your own system (not the paper's case study):
// a three-tier service with a cache, two storage engines, and a replication
// component, showing richer dependency expressions, the safe-configuration
// set they induce, and cost-driven path planning between configurations.
//
// Build & run:  ./build/examples/custom_invariants
#include <cstdio>

#include "actions/planner.hpp"
#include "config/enumerate.hpp"
#include "core/system.hpp"
#include "proto/adaptable_process.hpp"

namespace {

struct SilentProcess : sa::proto::AdaptableProcess {
  bool prepare(const sa::proto::LocalCommand&) override { return true; }
  void reach_safe_state(bool, std::function<void()> reached) override { reached(); }
  void abort_safe_state() override {}
  bool apply(const sa::proto::LocalCommand&) override { return true; }
  bool undo(const sa::proto::LocalCommand&) override { return true; }
  void resume() override {}
};

}  // namespace

int main() {
  using namespace sa;

  core::SafeAdaptationSystem system;
  auto& registry = system.registry();
  registry.add("Cache", 0, "in-memory cache tier");
  registry.add("RowStore", 1, "row-oriented storage engine");
  registry.add("ColumnStore", 1, "column-oriented storage engine");
  registry.add("Replicator", 2, "asynchronous replication");
  registry.add("SyncReplicator", 2, "synchronous replication");

  // Dependency relationships in the paper's expression language:
  system.add_invariant("one storage engine", "one(RowStore, ColumnStore)");
  system.add_invariant("cache needs a store", "Cache -> RowStore | ColumnStore");
  system.add_invariant("at most one replicator", "!(Replicator & SyncReplicator)");
  system.add_invariant("sync replication needs the column store",
                       "SyncReplicator -> ColumnStore");

  system.add_action("drop-cache", {"Cache"}, {}, 5);
  system.add_action("add-cache", {}, {"Cache"}, 5);
  system.add_action("row-to-column", {"RowStore"}, {"ColumnStore"}, 40);
  system.add_action("column-to-row", {"ColumnStore"}, {"RowStore"}, 40);
  system.add_action("enable-sync", {"Replicator"}, {"SyncReplicator"}, 15);
  system.add_action("disable-sync", {"SyncReplicator"}, {"Replicator"}, 15);
  system.add_action("migrate-and-sync", {"RowStore", "Replicator"},
                    {"ColumnStore", "SyncReplicator"}, 80, "combined migration");

  SilentProcess cache_host, storage_host, replication_host;
  system.attach_process(0, cache_host, /*stage=*/0);
  system.attach_process(1, storage_host, /*stage=*/1);
  system.attach_process(2, replication_host, /*stage=*/2);
  system.finalize();

  std::printf("safe configurations induced by the invariants:\n");
  for (const auto& config : system.manager().safe_configurations()) {
    std::printf("  %s  {%s}\n", config.to_bit_string(registry.size()).c_str(),
                config.describe(registry).c_str());
  }

  const auto source =
      config::Configuration::of(registry, {"Cache", "RowStore", "Replicator"});
  const auto target =
      config::Configuration::of(registry, {"Cache", "ColumnStore", "SyncReplicator"});
  system.set_current_configuration(source);

  std::printf("\nplanning {%s} -> {%s}:\n", source.describe(registry).c_str(),
              target.describe(registry).c_str());
  const auto ranked = system.manager().planner().ranked_paths(source, target, 3);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    std::printf("  path #%zu (cost %.0f): %s\n", i + 1, ranked[i].total_cost,
                ranked[i].action_names(system.action_table()).c_str());
  }

  const auto result = system.adapt_and_wait(target);
  std::printf("\nexecuted: %s; now at {%s}\n",
              std::string(proto::to_string(result.outcome)).c_str(),
              system.current_configuration().describe(registry).c_str());
  return result.outcome == proto::AdaptationOutcome::Success ? 0 : 1;
}
