// Adaptation by component INSERTION (not just replacement): when the data
// channels turn lossy, insert an XOR-FEC encoder/decoder set into the running
// stream. The dependency invariant "the FEC encoder requires a decoder on
// every client" makes the manager install the decoders BEFORE the encoder —
// the same dependency-driven ordering that drives the paper's DES case study.
//
// Build & run:  ./build/examples/adaptive_fec
#include <cstdio>
#include <optional>

#include "components/fec.hpp"
#include "core/system.hpp"
#include "sim/network.hpp"
#include "video/client.hpp"
#include "video/server.hpp"

int main() {
  using namespace sa;

  core::SystemConfig sys_config;
  core::SafeAdaptationSystem system(sys_config);
  system.registry().add("FecE", 0, "XOR-FEC encoder (server)");
  system.registry().add("FecH", 1, "XOR-FEC decoder (hand-held)");
  system.registry().add("FecL", 2, "XOR-FEC decoder (laptop)");
  // Decoders bypass when no parity arrives, so they are safe alone; the
  // encoder must never run without both decoders.
  system.add_invariant("encoder needs decoders", "FecE -> FecH & FecL");
  system.add_action("addFecH", {}, {"FecH"}, 5, "insert hand-held FEC decoder");
  system.add_action("addFecL", {}, {"FecL"}, 5, "insert laptop FEC decoder");
  system.add_action("addFecE", {}, {"FecE"}, 5, "insert server FEC encoder");
  system.add_action("rmFecE", {"FecE"}, {}, 5, "remove server FEC encoder");
  system.add_action("rmFecH", {"FecH"}, {}, 5, "remove hand-held FEC decoder");
  system.add_action("rmFecL", {"FecL"}, {}, 5, "remove laptop FEC decoder");

  const proto::FilterFactory factory = [](const std::string& name) -> components::FilterPtr {
    if (name == "FecE") return std::make_shared<components::XorFecEncoderFilter>("FecE", 4);
    if (name == "FecH") return std::make_shared<components::XorFecDecoderFilter>("FecH");
    if (name == "FecL") return std::make_shared<components::XorFecDecoderFilter>("FecL");
    return nullptr;
  };

  // Assemble the streaming application on the system's network.
  sim::Network& net = system.network();
  const sim::NodeId server_data = net.add_node("server-data");
  const sim::NodeId handheld_data = net.add_node("handheld-data");
  const sim::NodeId laptop_data = net.add_node("laptop-data");
  sim::ChannelConfig lossy{sim::ms(5), sim::ms(2), 0.0, /*fifo=*/false};
  net.link(server_data, handheld_data, lossy);
  net.link(server_data, laptop_data, lossy);

  video::StreamConfig stream;
  stream.packets_per_frame = 8;  // 200 packets/s
  video::VideoServer server(system.simulator(), net, server_data, stream, factory);
  server.subscribe(handheld_data);
  server.subscribe(laptop_data);
  video::VideoClient handheld(system.simulator(), net, handheld_data, "handheld", factory);
  video::VideoClient laptop(system.simulator(), net, laptop_data, "laptop", factory);

  system.attach_process(0, server.process(), /*stage=*/0);
  system.attach_process(1, handheld.process(), /*stage=*/1);
  system.attach_process(2, laptop.process(), /*stage=*/1);
  system.finalize();
  system.set_current_configuration(config::Configuration{});  // no FEC installed

  server.start();
  system.simulator().run_until(sim::seconds(2));
  std::printf("clean channel, no FEC: emitted=%llu, handheld missing=%llu\n",
              static_cast<unsigned long long>(server.packets_emitted()),
              static_cast<unsigned long long>(
                  handheld.sink().missing(server.packets_emitted())));

  // The environment degrades: 8%% loss appears on both data channels.
  net.channel(server_data, handheld_data).set_loss_probability(0.08);
  net.channel(server_data, laptop_data).set_loss_probability(0.08);
  const std::uint64_t emitted_at_degrade = server.packets_emitted();
  system.simulator().run_until(sim::seconds(4));
  const std::uint64_t lost_unprotected =
      handheld.sink().missing(server.packets_emitted()) -
      handheld.sink().missing(emitted_at_degrade);
  std::printf("lossy channel, no FEC: %llu packets lost in 2s at the hand-held\n",
              static_cast<unsigned long long>(lost_unprotected));

  // Adapt: install the FEC set. Watch the plan order decoders before encoder.
  std::optional<proto::AdaptationResult> result;
  const auto with_fec = config::Configuration::of(system.registry(), {"FecE", "FecH", "FecL"});
  system.request_adaptation(with_fec,
                            [&result](const proto::AdaptationResult& r) { result = r; });
  while (!result && system.simulator().step()) {
  }
  std::printf("\nadaptation: %s via ", std::string(proto::to_string(result->outcome)).c_str());
  for (const auto& record : system.manager().step_log()) {
    std::printf("%s ", record.action_name.c_str());
  }
  std::printf("\n(the invariant forces the decoders in before the encoder)\n\n");

  const std::uint64_t emitted_at_fec = server.packets_emitted();
  const std::uint64_t missing_at_fec = handheld.sink().missing(emitted_at_fec);
  system.simulator().run_until(system.simulator().now() + sim::seconds(4));
  server.stop();
  system.simulator().run_until(system.simulator().now() + sim::seconds(1));

  const std::uint64_t lost_protected =
      handheld.sink().missing(server.packets_emitted()) - missing_at_fec;
  const auto handheld_fec = handheld.chain().has_filter("FecH")
                                ? handheld.chain().refract().at("filters")
                                : "(none)";
  std::printf("lossy channel with FEC: %llu packets lost in 4s at the hand-held\n",
              static_cast<unsigned long long>(lost_protected));
  std::printf("hand-held chain: [%s]; corrupted=%llu undecodable=%llu\n", handheld_fec.c_str(),
              static_cast<unsigned long long>(handheld.player_stats().corrupted),
              static_cast<unsigned long long>(handheld.player_stats().undecodable));
  std::printf("\nFEC recovers every single-loss group: loss rate drops by roughly "
              "the group-loss factor while the stream never glitched during insertion.\n");
  return result->outcome == proto::AdaptationOutcome::Success ? 0 : 1;
}
