// Quickstart: the smallest complete use of the safe-adaptation library.
//
// A single process runs one adaptable component; we declare the dependency
// invariant "exactly one codec is installed", register two adaptive actions,
// and ask the manager to swap the codec safely at run time.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/system.hpp"
#include "proto/adaptable_process.hpp"

namespace {

/// A toy adaptable process: it just logs what the agent asks it to do.
/// Real applications adapt a FilterChain (see the video_multicast example);
/// anything implementing AdaptableProcess can participate in the protocol.
class LoggingProcess : public sa::proto::AdaptableProcess {
 public:
  bool prepare(const sa::proto::LocalCommand& command) override {
    std::printf("  [process] pre-action: preparing %s\n", command.describe().c_str());
    return true;
  }
  void reach_safe_state(bool drain, std::function<void()> reached) override {
    std::printf("  [process] reached local safe state%s; blocking\n",
                drain ? " (drained)" : "");
    reached();
  }
  void abort_safe_state() override { std::printf("  [process] reset aborted\n"); }
  bool apply(const sa::proto::LocalCommand& command) override {
    std::printf("  [process] in-action: %s\n", command.describe().c_str());
    return true;
  }
  bool undo(const sa::proto::LocalCommand& command) override {
    std::printf("  [process] rollback: undoing %s\n", command.describe().c_str());
    return true;
  }
  void resume() override { std::printf("  [process] resumed full operation\n"); }
  void cleanup(const sa::proto::LocalCommand&) override {
    std::printf("  [process] post-action: old component destroyed\n");
  }
};

}  // namespace

int main() {
  using namespace sa;

  // --- Analysis phase (development time) -----------------------------------
  core::SafeAdaptationSystem system;
  system.registry().add("CodecV1", /*process=*/0, "legacy codec");
  system.registry().add("CodecV2", /*process=*/0, "hardened codec");

  // Dependency relationship: the system needs exactly one codec at all times.
  system.add_invariant("exactly one codec", "one(CodecV1, CodecV2)");

  // Adaptive actions with fixed costs (ms of expected packet delay).
  system.add_action("upgrade", {"CodecV1"}, {"CodecV2"}, 10, "swap in the hardened codec");
  system.add_action("downgrade", {"CodecV2"}, {"CodecV1"}, 10, "fall back to the legacy codec");

  LoggingProcess process;
  system.attach_process(0, process);
  system.finalize();

  // --- Detection & setup + realization phases (run time) -------------------
  const auto v1 = config::Configuration::of(system.registry(), {"CodecV1"});
  const auto v2 = config::Configuration::of(system.registry(), {"CodecV2"});
  system.set_current_configuration(v1);

  std::printf("safe configurations: %zu\n", system.manager().safe_configurations().size());
  std::printf("requesting adaptation CodecV1 -> CodecV2...\n");
  const auto result = system.adapt_and_wait(v2);

  std::printf("outcome: %s after %zu step(s), %.2f ms of virtual time\n",
              std::string(proto::to_string(result.outcome)).c_str(), result.steps_committed,
              (result.finished - result.started) / 1000.0);
  std::printf("system is now at: {%s}\n",
              system.current_configuration().describe(system.registry()).c_str());
  return result.outcome == proto::AdaptationOutcome::Success ? 0 : 1;
}
