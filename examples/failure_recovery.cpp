// Failure handling (§4.4) demonstrated: the hand-held client gets stuck in a
// long critical communication segment (fail-to-reset). Watch the manager time
// out, roll the step back, retry, and — once the process heals — complete the
// adaptation; then a second run where the process never heals, ending with
// the system parked at a safe configuration.
//
// Build & run:  ./build/examples/failure_recovery
#include <cstdio>
#include <optional>

#include "core/video_testbed.hpp"
#include "sim/network.hpp"
#include "util/log.hpp"

namespace {

void print_step_log(sa::core::VideoTestbed& testbed) {
  for (const auto& record : testbed.system().manager().step_log()) {
    std::printf("  step %u try %u: %-4s -> %s\n", record.ref.step_index, record.ref.attempt,
                record.action_name.c_str(), record.committed ? "committed" : "ROLLED BACK");
  }
}

}  // namespace

int main() {
  using namespace sa;

  std::printf("=== Run 1: transient fail-to-reset, healed after first rollback ===\n");
  {
    core::VideoTestbed testbed;
    testbed.start_stream();
    testbed.run_for(sim::ms(200));
    testbed.system().agent(core::kHandheldProcess).set_fail_to_reset(true);

    std::optional<proto::AdaptationResult> result;
    testbed.system().request_adaptation(
        testbed.target(), [&result](const proto::AdaptationResult& r) { result = r; });

    // Heal the process as soon as the manager has rolled the first step back.
    bool healed = false;
    while (!result && testbed.simulator().step()) {
      if (!healed && !testbed.system().manager().step_log().empty() &&
          testbed.system().manager().step_log().front().rolled_back) {
        std::printf("  (hand-held process recovered; manager retries per strategy 1)\n");
        testbed.system().agent(core::kHandheldProcess).set_fail_to_reset(false);
        healed = true;
      }
    }
    print_step_log(testbed);
    std::printf("outcome: %s, step failures: %zu\n",
                std::string(proto::to_string(result->outcome)).c_str(), result->step_failures);
    testbed.stop_stream();
    testbed.run_for(sim::seconds(1));
    std::printf("stream: intact=%llu corrupted=%llu undecodable=%llu\n\n",
                static_cast<unsigned long long>(testbed.total_intact()),
                static_cast<unsigned long long>(testbed.total_corrupted()),
                static_cast<unsigned long long>(testbed.total_undecodable()));
  }

  std::printf("=== Run 2: permanent fail-to-reset, strategy chain exhausted ===\n");
  {
    core::VideoTestbed testbed;
    testbed.start_stream();
    testbed.run_for(sim::ms(200));
    testbed.system().agent(core::kHandheldProcess).set_fail_to_reset(true);

    std::optional<proto::AdaptationResult> result;
    testbed.system().request_adaptation(
        testbed.target(), [&result](const proto::AdaptationResult& r) { result = r; });
    while (!result && testbed.simulator().step()) {
    }
    print_step_log(testbed);
    std::printf("outcome: %s\n", std::string(proto::to_string(result->outcome)).c_str());
    std::printf("parked at: {%s} — %s\n",
                testbed.installed_configuration().describe(testbed.system().registry()).c_str(),
                testbed.system().invariants().satisfied(testbed.installed_configuration())
                    ? "a SAFE configuration (invariants hold)"
                    : "UNSAFE (bug!)");
    testbed.stop_stream();
    testbed.run_for(sim::seconds(1));
    std::printf("stream: intact=%llu corrupted=%llu undecodable=%llu\n",
                static_cast<unsigned long long>(testbed.total_intact()),
                static_cast<unsigned long long>(testbed.total_corrupted()),
                static_cast<unsigned long long>(testbed.total_undecodable()));
  }
  return 0;
}
